"""Setuptools entry point.

Keeps ``pip install -e .`` working in offline environments whose
setuptools cannot perform PEP 660 editable installs (no ``wheel``
package available).  The project has no hard runtime dependencies; the
``vector`` extra pulls in numpy for the vectorized fleet dispatch
kernel (``repro.serve.vector``) — without it the pure-Python encoded
path serves as the always-on fallback::

    pip install '.[vector]'
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    install_requires=[],
    extras_require={
        # Soft dependency of the vectorized dispatch kernel; the import
        # guard lives in one place (src/repro/serve/vector.py).
        "vector": ["numpy"],
    },
)
