"""Legacy setuptools shim.

The project metadata lives in pyproject.toml; this file exists only so that
``pip install -e .`` works in offline environments whose setuptools cannot
perform PEP 660 editable installs (no ``wheel`` package available).
"""

from setuptools import setup

setup()
