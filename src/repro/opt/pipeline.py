"""The pass pipeline: ordered passes over the shared indexed IR.

Sits between model generation and every backend (paper: the DEPLOY line
of work on optimized code generation).  A :class:`PassPipeline` runs a
sequence of :class:`Pass` objects over an
:class:`~repro.opt.indexed.IndexedMachine` and produces a
:class:`PassReport` with one :class:`PassDelta` per pass (state,
transition and action-pool counts before/after, plus wall-clock) and the
composed ``state_map`` that differential harnesses use to compare
optimized traces against unoptimized replays.

Ordering rules (enforced by the standard levels, documented for custom
pipelines):

1. ``prune`` first — later passes assume every state matters; merging
   unreachable garbage wastes refinement work and in-degree estimates.
2. ``merge`` before ``dead-actions`` — merging orphans pool entries that
   compaction then collects.
3. ``renumber`` last — it fixes the final dense-array layout; any pass
   that adds or removes states after it would scramble the hot-first
   ordering it computed.

Optimization levels (``--opt N`` on the CLI):

===== =================================================================
``0``  no passes (the identity pipeline)
``1``  ``prune``
``2``  ``prune, merge, dead-actions``
``3``  ``prune, merge, dead-actions, renumber`` (the default "full")
===== =================================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Protocol, Union, runtime_checkable

from repro.core.machine import StateMachine
from repro.opt.indexed import IndexedMachine
from repro.opt.passes import (
    DeadActionEliminationPass,
    HotStateRenumberPass,
    MergeEquivalentPass,
    PruneUnreachablePass,
    StateMapping,
)


@runtime_checkable
class Pass(Protocol):
    """One optimization pass: a named pure IR -> (IR, state mapping) step."""

    name: str

    def run(self, im: IndexedMachine) -> tuple[IndexedMachine, StateMapping]:
        """Return the transformed IR and the old-id -> new-id mapping."""
        ...  # pragma: no cover - protocol definition


#: Registry of pass constructors, in canonical pipeline order.
PASSES: dict[str, type] = {
    "prune": PruneUnreachablePass,
    "merge": MergeEquivalentPass,
    "dead-actions": DeadActionEliminationPass,
    "renumber": HotStateRenumberPass,
}

#: Pass names per optimization level (level 3 is "full").
LEVELS: dict[int, tuple[str, ...]] = {
    0: (),
    1: ("prune",),
    2: ("prune", "merge", "dead-actions"),
    3: ("prune", "merge", "dead-actions", "renumber"),
}


@dataclass(frozen=True)
class PassDelta:
    """What one pass did to the IR: counts before/after and wall-clock."""

    name: str
    states_before: int
    states_after: int
    transitions_before: int
    transitions_after: int
    actions_before: int
    actions_after: int
    action_seqs_before: int
    action_seqs_after: int
    elapsed_s: float

    @property
    def states_removed(self) -> int:
        return self.states_before - self.states_after

    @property
    def changed(self) -> bool:
        """Whether the pass altered any counted quantity."""
        return (
            self.states_before != self.states_after
            or self.transitions_before != self.transitions_after
            or self.actions_before != self.actions_after
            or self.action_seqs_before != self.action_seqs_after
        )

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.states_before} -> {self.states_after} states, "
            f"{self.transitions_before} -> {self.transitions_after} transitions, "
            f"{self.action_seqs_before} -> {self.action_seqs_after} action seqs "
            f"({self.elapsed_s * 1000:.2f}ms)"
        )


@dataclass
class PassReport:
    """Everything one pipeline run did, with per-pass deltas.

    ``state_map`` maps every *original* state name to the name of the
    state that represents it in the optimized machine; names of pruned
    (unreachable) states are absent.  For pipelines that never merge,
    the map is the identity over surviving names.
    """

    machine_name: str
    deltas: list[PassDelta] = field(default_factory=list)
    state_map: dict[str, str] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Total optimization wall-clock time in seconds."""
        return sum(delta.elapsed_s for delta in self.deltas)

    @property
    def states_before(self) -> int:
        return self.deltas[0].states_before if self.deltas else 0

    @property
    def states_after(self) -> int:
        return self.deltas[-1].states_after if self.deltas else 0

    def delta(self, pass_name: str) -> Optional[PassDelta]:
        """The delta recorded for a named pass, if it ran."""
        for delta in self.deltas:
            if delta.name == pass_name:
                return delta
        return None

    @property
    def identity(self) -> bool:
        """Whether the whole run changed nothing (state names included)."""
        return all(not delta.changed for delta in self.deltas) and all(
            original == final for original, final in self.state_map.items()
        )

    def __str__(self) -> str:
        if not self.deltas:
            return f"{self.machine_name}: identity pipeline (no passes)"
        return (
            f"{self.machine_name}: {self.states_before} -> {self.states_after} "
            f"states over {len(self.deltas)} passes "
            f"({self.total_time * 1000:.2f}ms)"
        )


class PassPipeline:
    """An ordered sequence of passes, applied IR-in, IR-out."""

    def __init__(self, passes: tuple = (), name: str = "custom"):
        for p in passes:
            if not isinstance(p, Pass):
                raise TypeError(f"not an optimization pass: {p!r}")
        self.passes = tuple(passes)
        self.name = name

    def __len__(self) -> int:
        return len(self.passes)

    def pass_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    def run(self, im: IndexedMachine) -> tuple[IndexedMachine, PassReport]:
        """Apply every pass in order; return the final IR and the report."""
        report = PassReport(machine_name=im.name)
        original_names = im.state_names
        # Composed old-id -> current-id mapping over the original machine.
        composed: dict[int, Optional[int]] = {i: i for i in range(len(original_names))}
        for p in self.passes:
            started = time.perf_counter()
            after, mapping = p.run(im)
            elapsed = time.perf_counter() - started
            report.deltas.append(
                PassDelta(
                    name=p.name,
                    states_before=len(im.state_names),
                    states_after=len(after.state_names),
                    transitions_before=im.transition_count(),
                    transitions_after=after.transition_count(),
                    actions_before=len(im.actions),
                    actions_after=len(after.actions),
                    action_seqs_before=len(im.action_seqs),
                    action_seqs_after=len(after.action_seqs),
                    elapsed_s=elapsed,
                )
            )
            composed = {
                old: (mapping[current] if current is not None else None)
                for old, current in composed.items()
            }
            im = after
        report.state_map = {
            original_names[old]: im.state_names[current]
            for old, current in composed.items()
            if current is not None
        }
        return im, report

    def optimize_machine(
        self, machine: StateMachine
    ) -> tuple[StateMachine, PassReport]:
        """Convenience: machine -> IR -> passes -> machine."""
        optimized, report = self.run(IndexedMachine.from_machine(machine))
        return optimized.to_machine(), report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PassPipeline({self.name!r}, {list(self.pass_names())})"


def standard_pipeline(level: int = 3) -> PassPipeline:
    """The canonical pipeline for an optimization level (see module docs)."""
    if level not in LEVELS:
        raise ValueError(
            f"unknown optimization level {level}; choose from {sorted(LEVELS)}"
        )
    return PassPipeline(
        tuple(PASSES[name]() for name in LEVELS[level]), name=f"O{level}"
    )


def parse_opt_spec(spec: Union[str, int, None]) -> Optional[PassPipeline]:
    """Parse a ``--opt`` value: a level digit or a comma-separated pass list.

    ``None`` and ``"none"`` mean "no optimization" (``None`` is returned
    so callers can skip the IR round-trip entirely); ``"full"`` is level
    3; otherwise the value must be a level in ``0..3`` or pass names from
    :data:`PASSES` joined with commas, e.g. ``"prune,merge"``.
    """
    if spec is None:
        return None
    if isinstance(spec, int):
        return standard_pipeline(spec)
    text = spec.strip().lower()
    if text in ("", "none"):
        return None
    if text == "full":
        return standard_pipeline(3)
    if text.lstrip("-").isdigit():
        return standard_pipeline(int(text))
    names = [part.strip() for part in text.split(",") if part.strip()]
    unknown = [name for name in names if name not in PASSES]
    if unknown:
        raise ValueError(
            f"unknown optimization pass(es) {unknown}; "
            f"choose from {list(PASSES)} or a level in {sorted(LEVELS)}"
        )
    return PassPipeline(tuple(PASSES[name]() for name in names), name=",".join(names))


def as_pipeline(
    optimize: Union["PassPipeline", str, int, None],
) -> Optional[PassPipeline]:
    """Normalise an ``optimize=`` argument to a pipeline (or ``None``)."""
    if optimize is None or isinstance(optimize, PassPipeline):
        return optimize
    return parse_opt_spec(optimize)


def format_pass_table(report: PassReport) -> str:
    """Render a report's per-pass deltas as an aligned table."""
    header = (
        f"{'pass':<13} {'states':>13} {'transitions':>15} "
        f"{'actions':>11} {'action seqs':>12} {'ms':>8}"
    )
    lines = [header, "-" * len(header)]
    for d in report.deltas:
        lines.append(
            f"{d.name:<13} {d.states_before:>5d} > {d.states_after:<5d} "
            f"{d.transitions_before:>6d} > {d.transitions_after:<6d} "
            f"{d.actions_before:>4d} > {d.actions_after:<4d} "
            f"{d.action_seqs_before:>5d} > {d.action_seqs_after:<4d} "
            f"{d.elapsed_s * 1000:>8.2f}"
        )
    return "\n".join(lines)
