"""Optimization passes over the :class:`~repro.opt.indexed.IndexedMachine` IR.

Each pass is a pure function from one IR instance to a new one, paired
with a *state mapping* (old id -> new id, or ``None`` for a state the
pass removed).  The pipeline composes the mappings into a name-level
``state_map`` so differential harnesses can compare optimized traces
against unoptimized replays: action logs must match exactly, state names
modulo the map.

Shipped passes (see :data:`~repro.opt.pipeline.PASSES` for the registry):

* :class:`PruneUnreachablePass` — drop states unreachable from the start
  state.  The array form of the name-graph pruning that
  :meth:`~repro.core.machine.StateMachine.prune_unreachable` performs for
  the generation and flattening pipelines.
* :class:`MergeEquivalentPass` — partition-refinement (Hopcroft-style
  backwards splitting over predecessor sets) equivalent-state merging.
  This is the pass that claws back hierarchical-flattening blow-up:
  flattening copies inherited transitions into every leaf and routinely
  leaves behaviourally identical leaves behind.
* :class:`DeadActionEliminationPass` — compact the interned action and
  action-sequence pools: sequences no transition references (typically
  orphaned by pruning/merging) and duplicate sequences disappear.
* :class:`HotStateRenumberPass` — most-visited states get the lowest
  ids, so a dense-array dispatch loop touches the low, cache-warm end of
  the arrays for the bulk of its traffic.  "Most visited" comes from an
  observed visit-count profile when one is supplied, otherwise from a
  static in-degree estimate (start state counted as permanently hot).
"""

from __future__ import annotations

from typing import Optional

from repro.opt.indexed import IndexedMachine

#: Mapping produced by a pass: old state id -> new state id (None = removed).
StateMapping = dict[int, Optional[int]]


def _identity_mapping(im: IndexedMachine) -> StateMapping:
    return {i: i for i in range(len(im.state_names))}


def _rebuild(im: IndexedMachine, keep: list[int], target_of) -> IndexedMachine:
    """New IR keeping old state ids ``keep`` (in new-id order).

    ``target_of(old_target_id) -> new id`` rewrites transition targets;
    action pools are carried over untouched (compaction is its own pass).
    """
    width = len(im.messages)
    next_state: list[int] = []
    action_seq: list[int] = []
    transition_annotations: dict[int, tuple[str, ...]] = {}
    for new_id, old_id in enumerate(keep):
        row = old_id * width
        for col in range(width):
            target = im.next_state[row + col]
            if target < 0:
                next_state.append(-1)
                action_seq.append(-1)
            else:
                next_state.append(target_of(target))
                action_seq.append(im.action_seq[row + col])
                notes = im.transition_annotations.get(row + col)
                if notes:
                    transition_annotations[new_id * width + col] = notes
    finish = -1
    if im.finish >= 0:
        try:
            finish = target_of(im.finish)
        except KeyError:
            finish = -1  # the finish state itself was removed
    return IndexedMachine(
        name=im.name,
        parameters=im.parameters,
        messages=im.messages,
        state_names=tuple(im.state_names[i] for i in keep),
        next_state=tuple(next_state),
        action_seq=tuple(action_seq),
        action_seqs=im.action_seqs,
        actions=im.actions,
        start=target_of(im.start),
        finish=finish,
        final=tuple(im.final[i] for i in keep),
        state_annotations=tuple(im.state_annotations[i] for i in keep)
        if im.state_annotations
        else (),
        state_vectors=tuple(im.state_vectors[i] for i in keep)
        if im.state_vectors
        else (),
        state_merged=tuple(im.state_merged[i] for i in keep)
        if im.state_merged
        else (),
        transition_annotations=transition_annotations,
    )


class PruneUnreachablePass:
    """Drop every state unreachable from the start state."""

    name = "prune"

    def run(self, im: IndexedMachine) -> tuple[IndexedMachine, StateMapping]:
        reachable = im.reachable_ids()
        if len(reachable) == len(im.state_names):
            return im, _identity_mapping(im)
        keep = [i for i in range(len(im.state_names)) if i in reachable]
        new_id = {old: new for new, old in enumerate(keep)}
        mapping: StateMapping = {i: new_id.get(i) for i in range(len(im.state_names))}
        return _rebuild(im, keep, new_id.__getitem__), mapping


class MergeEquivalentPass:
    """Collapse behaviourally equivalent states via partition refinement.

    Two states are equivalent iff they agree on finality and, per
    message, either both lack a transition or both have transitions with
    the same interned action sequence into equivalent states — the same
    relation :func:`repro.core.minimize.equivalence_classes` computes on
    the name graph, evaluated here on int arrays.  Refinement runs to a
    fixpoint (the bisimulation quotient); classes keep the name of their
    lowest-id member, and the mapping records every member -> that
    representative.
    """

    name = "merge"

    def run(self, im: IndexedMachine) -> tuple[IndexedMachine, StateMapping]:
        n = len(im.state_names)
        width = len(im.messages)
        # Resolve sequence ids to action-name tuples so duplicate pool
        # entries (legal in hand-built IRs) still compare equal.
        seq_key = [tuple(im.actions[a] for a in seq) for seq in im.action_seqs]
        cls = [1 if f else 0 for f in im.final]
        while True:
            signatures: dict[tuple, int] = {}
            refined = [0] * n
            for i in range(n):
                row = i * width
                outgoing = []
                for col in range(width):
                    target = im.next_state[row + col]
                    if target >= 0:
                        outgoing.append(
                            (col, seq_key[im.action_seq[row + col]], cls[target])
                        )
                signature = (cls[i], tuple(outgoing))
                refined[i] = signatures.setdefault(signature, len(signatures))
            if refined == cls:
                break
            cls = refined

        # Representative of each class: its lowest member id; classes
        # ordered by representative so surviving states keep their
        # original relative order (and the start state stays first when
        # it was).
        members: dict[int, list[int]] = {}
        for i in range(n):
            members.setdefault(cls[i], []).append(i)
        groups = sorted(members.values(), key=lambda group: group[0])
        if len(groups) == n:
            return im, _identity_mapping(im)
        representative = {i: group[0] for group in groups for i in group}
        keep = [group[0] for group in groups]
        new_id = {old: new for new, old in enumerate(keep)}
        mapping: StateMapping = {i: new_id[representative[i]] for i in range(n)}

        merged = _rebuild(im, keep, lambda old: new_id[representative[old]])
        merged = _record_merges(merged, im, groups, new_id)
        return merged, mapping


def _record_merges(
    merged: IndexedMachine,
    original: IndexedMachine,
    groups: list[list[int]],
    new_id: dict[int, int],
) -> IndexedMachine:
    """Fold member names/annotations of multi-state classes into sidecars."""
    from dataclasses import replace

    state_merged = list(merged.state_merged) or [()] * len(merged.state_names)
    state_annotations = list(merged.state_annotations) or [()] * len(
        merged.state_names
    )
    for group in groups:
        if len(group) < 2:
            continue
        rep = new_id[group[0]]
        names: set[str] = set()
        for member in group:
            names.add(original.state_names[member])
            if original.state_merged:
                names.update(original.state_merged[member])
        state_merged[rep] = tuple(sorted(names))
        state_annotations[rep] = state_annotations[rep] + (
            f"Represents {len(group)} equivalent states: "
            + ", ".join(sorted(original.state_names[m] for m in group)),
        )
    return replace(
        merged,
        state_merged=tuple(state_merged),
        state_annotations=tuple(state_annotations),
    )


class DeadActionEliminationPass:
    """Compact the action pools: drop dead entries, fold duplicates.

    Pruning and merging remove transitions but leave the interned pools
    untouched, so sequences (and the action strings only they used) can
    become garbage; hand-built IRs may also carry duplicate sequence
    entries.  This pass rebuilds both pools from the live transitions.
    States are untouched — the mapping is always the identity.
    """

    name = "dead-actions"

    def run(self, im: IndexedMachine) -> tuple[IndexedMachine, StateMapping]:
        from dataclasses import replace

        seq_pool: dict[tuple[int, ...], int] = {(): 0}
        action_pool: dict[str, int] = {}
        new_seq_id: dict[int, int] = {}
        action_seq = list(im.action_seq)
        for offset, old_seq in enumerate(im.action_seq):
            if old_seq < 0:
                continue
            mapped = new_seq_id.get(old_seq)
            if mapped is None:
                names = tuple(im.actions[a] for a in im.action_seqs[old_seq])
                ids = tuple(action_pool.setdefault(a, len(action_pool)) for a in names)
                mapped = seq_pool.setdefault(ids, len(seq_pool))
                new_seq_id[old_seq] = mapped
            action_seq[offset] = mapped
        if len(seq_pool) == len(im.action_seqs) and len(action_pool) == len(im.actions):
            return im, _identity_mapping(im)
        compacted = replace(
            im,
            action_seq=tuple(action_seq),
            action_seqs=tuple(sorted(seq_pool, key=seq_pool.__getitem__)),
            actions=tuple(sorted(action_pool, key=action_pool.__getitem__)),
        )
        return compacted, _identity_mapping(im)


class HotStateRenumberPass:
    """Renumber states so the hottest ones get the lowest ids.

    ``profile`` maps state names to observed visit counts (e.g. from a
    fleet's traffic) and is trusted as given; without one the pass falls
    back to transition in-degree, with the start state pinned hottest
    (every instance is born there, and auto-recycling returns them to it
    — facts in-degree alone cannot see, but an observed profile already
    reflects).  Names, traces and behaviour are untouched — only the id
    order (and therefore the dense-array layout every downstream backend
    indexes) changes.
    """

    name = "renumber"

    def __init__(self, profile: Optional[dict[str, int]] = None):
        self._profile = dict(profile) if profile else None

    def run(self, im: IndexedMachine) -> tuple[IndexedMachine, StateMapping]:
        n = len(im.state_names)
        if self._profile is not None:
            score = [self._profile.get(name, 0) for name in im.state_names]
        else:
            score = [0] * n
            for target in im.next_state:
                if target >= 0:
                    score[target] += 1
            # Start is hottest by construction; ties keep id order.
            score[im.start] = max(score) + 1
        keep = sorted(range(n), key=lambda i: (-score[i], i))
        if keep == list(range(n)):
            return im, _identity_mapping(im)
        new_id = {old: new for new, old in enumerate(keep)}
        mapping: StateMapping = dict(new_id)
        return _rebuild(im, keep, new_id.__getitem__), mapping
