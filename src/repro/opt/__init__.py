"""Machine optimization: a pass pipeline over a shared indexed IR.

The implementation stage the paper's generative pipeline (design ->
implementation -> deployment) leaves implicit: between model generation
and every backend sits :class:`IndexedMachine` — states, messages and
actions interned to dense integer ids with flat transition arrays — and
a :class:`PassPipeline` of structural passes over it:

* ``prune``        — unreachable-state pruning;
* ``merge``        — equivalent-state merging (partition refinement),
  the pass that claws back hierarchical-flattening blow-up;
* ``dead-actions`` — dead/duplicate action-pool elimination;
* ``renumber``     — hot-state renumbering for dense-array dispatch.

Consumers share the IR: the fleet execution plane builds its dispatch
arrays from it, the source renderer can emit indexed-dispatch modules
from it, and ``generate_with_engine`` / ``HierarchicalModel.flatten``
accept an ``optimize=`` hook that runs a pipeline before handing the
machine on.  Optimized machines are trace-identical to their inputs up
to the report's ``state_map`` (merged states answer to their
representative's name); action logs match exactly.
"""

from repro.opt.indexed import IndexedMachine
from repro.opt.passes import (
    DeadActionEliminationPass,
    HotStateRenumberPass,
    MergeEquivalentPass,
    PruneUnreachablePass,
)
from repro.opt.pipeline import (
    LEVELS,
    PASSES,
    Pass,
    PassDelta,
    PassPipeline,
    PassReport,
    as_pipeline,
    format_pass_table,
    parse_opt_spec,
    standard_pipeline,
)

__all__ = [
    "DeadActionEliminationPass",
    "HotStateRenumberPass",
    "IndexedMachine",
    "LEVELS",
    "MergeEquivalentPass",
    "PASSES",
    "Pass",
    "PassDelta",
    "PassPipeline",
    "PassReport",
    "PruneUnreachablePass",
    "as_pipeline",
    "format_pass_table",
    "parse_opt_spec",
    "standard_pipeline",
]
