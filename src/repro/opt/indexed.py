"""The dense indexed IR shared by the optimization passes and the backends.

Every consumer of a generated :class:`~repro.core.machine.StateMachine`
used to rebuild its own view of the machine — the fleet engine flattened
a dispatch table, the source renderer walked states per message, the
flattening pipeline pruned by name.  :class:`IndexedMachine` is the one
shared form: states, messages and actions interned to contiguous integer
ids, transitions stored as flat row-major arrays of length
``len(states) * len(messages)``.

Layout (all offsets are ``state_id * width + message_id``):

* ``next_state[offset]`` — target state id, or ``-1`` when the message is
  inapplicable in that state (ignored, per protocol semantics);
* ``action_seq[offset]`` — index into ``action_seqs``, the pool of
  interned action-id tuples (``action_seqs[0]`` is always the empty
  tuple); ``-1`` mirrors an inapplicable ``next_state`` slot;
* ``actions[action_id]`` — the raw action string exactly as the abstract
  model recorded it (``->``-prefixed); executors strip the prefix.

Interning makes the structural passes cheap: equivalent-state merging
compares ``action_seq`` ids instead of string tuples, and dead/duplicate
action elimination is pool compaction.  Name sidecars (annotations,
vectors, merged-name sets) ride along untouched so :meth:`to_machine`
reconstructs a machine renderers can still document.

Instances are immutable by convention: passes build new ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import MachineStructureError
from repro.core.machine import FlatDispatchTable, StateMachine, strip_action_prefix
from repro.core.state import State, Transition


@dataclass(frozen=True)
class IndexedMachine:
    """A state machine interned to dense integer ids and flat arrays."""

    name: str
    parameters: dict
    messages: tuple[str, ...]
    state_names: tuple[str, ...]
    #: Flat row-major target ids; ``-1`` = message inapplicable.
    next_state: tuple[int, ...]
    #: Flat row-major indexes into ``action_seqs``; ``-1`` where ``next_state`` is.
    action_seq: tuple[int, ...]
    #: Pool of interned action-id tuples; entry 0 is always ``()``.
    action_seqs: tuple[tuple[int, ...], ...]
    #: Pool of interned raw action strings (``->``-prefixed).
    actions: tuple[str, ...]
    start: int
    #: Designated finish state id, or ``-1`` when the machine has none.
    finish: int
    final: tuple[bool, ...]
    #: Sidecars: documentation and provenance, indexed by state id.
    state_annotations: tuple[tuple[str, ...], ...] = ()
    state_vectors: tuple[Optional[tuple], ...] = ()
    state_merged: tuple[tuple[str, ...], ...] = ()
    #: Sparse transition annotations, keyed by flat offset.
    transition_annotations: dict[int, tuple[str, ...]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of message columns per state row."""
        return len(self.messages)

    @property
    def state_count(self) -> int:
        return len(self.state_names)

    def transition_count(self) -> int:
        """Number of populated transition slots."""
        return sum(1 for target in self.next_state if target >= 0)

    def state_index(self) -> dict[str, int]:
        """Name -> id map (computed; hot paths use the arrays directly)."""
        return {name: i for i, name in enumerate(self.state_names)}

    def message_index(self) -> dict[str, int]:
        """Message -> column map (computed)."""
        return {message: i for i, message in enumerate(self.messages)}

    def transition(self, state_id: int, message_id: int):
        """``(target id, action-id tuple)`` or ``None`` when inapplicable."""
        offset = state_id * len(self.messages) + message_id
        target = self.next_state[offset]
        if target < 0:
            return None
        return target, self.action_seqs[self.action_seq[offset]]

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------

    @classmethod
    def from_machine(cls, machine: StateMachine) -> "IndexedMachine":
        """Intern a :class:`StateMachine` (insertion order becomes id order)."""
        machine.check_integrity()
        state_names = machine.state_names()
        state_index = {name: i for i, name in enumerate(state_names)}
        messages = machine.messages
        message_index = {message: i for i, message in enumerate(messages)}
        width = len(messages)
        size = len(state_names) * width

        next_state = [-1] * size
        action_seq = [-1] * size
        action_pool: dict[str, int] = {}
        seq_pool: dict[tuple[int, ...], int] = {(): 0}
        transition_annotations: dict[int, tuple[str, ...]] = {}

        for state in machine.states:
            row = state_index[state.name] * width
            for t in state.transitions:
                offset = row + message_index[t.message]
                next_state[offset] = state_index[t.target_name]
                ids = tuple(
                    action_pool.setdefault(a, len(action_pool)) for a in t.actions
                )
                action_seq[offset] = seq_pool.setdefault(ids, len(seq_pool))
                if t.annotations:
                    transition_annotations[offset] = t.annotations

        finish = machine.finish_state
        return cls(
            name=machine.name,
            parameters=machine.parameters,
            messages=messages,
            state_names=state_names,
            next_state=tuple(next_state),
            action_seq=tuple(action_seq),
            action_seqs=tuple(sorted(seq_pool, key=seq_pool.__getitem__)),
            actions=tuple(sorted(action_pool, key=action_pool.__getitem__)),
            start=state_index[machine.start_state.name],
            finish=state_index[finish.name] if finish is not None else -1,
            final=tuple(state.final for state in machine.states),
            state_annotations=tuple(state.annotations for state in machine.states),
            state_vectors=tuple(state.vector for state in machine.states),
            state_merged=tuple(state.merged_names for state in machine.states),
            transition_annotations=transition_annotations,
        )

    def to_machine(self) -> StateMachine:
        """Rebuild a :class:`StateMachine` (id order becomes insertion order).

        Transition insertion order is normalised to alphabet order, which
        is behaviourally irrelevant (lookups are by message) but fixes
        renderer output for machines whose transitions were recorded in a
        different order.
        """
        machine = StateMachine(
            self.messages, name=self.name, parameters=self.parameters
        )
        width = len(self.messages)
        for i, name in enumerate(self.state_names):
            state = State(
                name,
                vector=self.state_vectors[i] if self.state_vectors else None,
                annotations=self.state_annotations[i] if self.state_annotations else (),
                final=self.final[i],
            )
            if self.state_merged and self.state_merged[i]:
                state.set_merged_names(self.state_merged[i])
            machine.add_state(state)
        for i, name in enumerate(self.state_names):
            state = machine.get_state(name)
            row = i * width
            for col, message in enumerate(self.messages):
                target = self.next_state[row + col]
                if target < 0:
                    continue
                seq = self.action_seqs[self.action_seq[row + col]]
                actions = tuple(self.actions[a] for a in seq)
                state.record_transition(
                    Transition(
                        message,
                        self.state_names[target],
                        actions,
                        self.transition_annotations.get(row + col, ()),
                    )
                )
        machine.set_start(self.state_names[self.start])
        if self.finish >= 0:
            machine.set_finish(self.state_names[self.finish])
        machine.check_integrity()
        return machine

    def jump_arrays(self, auto_recycle: bool = False) -> tuple[list[int], list]:
        """Specialise the IR into the serve plane's two hot-loop arrays.

        ``jump[offset]`` is the next state premultiplied by the alphabet
        width (``-1``: message inapplicable), so the dispatch loop is
        ``offset = premultiplied_state + column; next = jump[offset]``.
        ``acts[offset]`` is the transition's stripped action-name tuple.
        Under ``auto_recycle`` a protocol-completing transition instead
        jumps straight to the premultiplied start state and carries the
        ``None`` sentinel in ``acts`` (its actions would be wiped by the
        immediate ``reset()`` anyway, exactly as in a standalone replay).
        """
        width = len(self.messages)
        start = self.start * width
        final = self.final
        stripped = tuple(strip_action_prefix(a) for a in self.actions)
        seq_names = tuple(tuple(stripped[a] for a in seq) for seq in self.action_seqs)
        jump: list[int] = []
        acts: list = []
        for offset, target in enumerate(self.next_state):
            if target < 0:
                jump.append(-1)
                acts.append(())
            elif auto_recycle and final[target]:
                jump.append(start)
                acts.append(None)
            else:
                jump.append(target * width)
                acts.append(seq_names[self.action_seq[offset]])
        return jump, acts

    def dispatch_table(self) -> FlatDispatchTable:
        """Export the IR as the fleet plane's :class:`FlatDispatchTable`.

        Identical to ``to_machine().dispatch_table()`` but built straight
        from the arrays: action ids resolve through the pools once, with
        the ``->`` prefix stripped exactly as the table contract requires.
        """
        stripped = tuple(strip_action_prefix(a) for a in self.actions)
        seq_names = tuple(tuple(stripped[a] for a in seq) for seq in self.action_seqs)
        entries: list[Optional[tuple[int, tuple[str, ...]]]] = []
        for offset, target in enumerate(self.next_state):
            if target < 0:
                entries.append(None)
            else:
                entries.append((target, seq_names[self.action_seq[offset]]))
        return FlatDispatchTable(
            state_names=self.state_names,
            messages=self.messages,
            state_index=self.state_index(),
            message_index=self.message_index(),
            entries=tuple(entries),
            start_index=self.start,
            final=self.final,
        )

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------

    def check_integrity(self) -> None:
        """Raise :class:`MachineStructureError` on malformed arrays."""
        size = len(self.state_names) * len(self.messages)
        if len(self.next_state) != size or len(self.action_seq) != size:
            raise MachineStructureError(
                f"indexed machine {self.name!r}: array length "
                f"{len(self.next_state)}/{len(self.action_seq)} != "
                f"{len(self.state_names)} states x {len(self.messages)} messages"
            )
        for offset, target in enumerate(self.next_state):
            if target >= len(self.state_names):
                raise MachineStructureError(
                    f"indexed machine {self.name!r}: offset {offset} targets "
                    f"unknown state id {target}"
                )
            if (target < 0) != (self.action_seq[offset] < 0):
                raise MachineStructureError(
                    f"indexed machine {self.name!r}: offset {offset} has "
                    f"mismatched next_state/action_seq sentinels"
                )
            if target >= 0 and self.final[offset // len(self.messages)]:
                raise MachineStructureError(
                    f"indexed machine {self.name!r}: final state "
                    f"{self.state_names[offset // len(self.messages)]!r} has an "
                    f"outgoing transition"
                )
            if self.action_seq[offset] >= len(self.action_seqs):
                raise MachineStructureError(
                    f"indexed machine {self.name!r}: offset {offset} references "
                    f"unknown action sequence {self.action_seq[offset]}"
                )
        if not (0 <= self.start < len(self.state_names)):
            raise MachineStructureError(
                f"indexed machine {self.name!r}: start id {self.start} out of range"
            )

    def reachable_ids(self) -> set[int]:
        """State ids reachable from the start state (array BFS)."""
        width = len(self.messages)
        seen = {self.start}
        frontier = [self.start]
        while frontier:
            row = frontier.pop() * width
            for target in self.next_state[row : row + width]:
                if target >= 0 and target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndexedMachine({self.name!r}, {len(self.state_names)} states, "
            f"{self.transition_count()} transitions, "
            f"{len(self.actions)} actions/{len(self.action_seqs)} sequences)"
        )
