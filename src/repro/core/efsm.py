"""Extended finite state machines (paper §3.2, §5.3).

An EFSM sits between the original algorithm (one state, many variables) and
the FSM family (many states, no variables) on the paper's spectrum:
transitions and actions may depend on internal variables as well as states.
For the commit protocol, mapping the two message counters to EFSM variables
coalesces every below-threshold counting state, leaving 9 states whose
transitions all correspond to phase transitions of the FSM family — and the
EFSM is *generic* in the replication factor, which enters only through
guard thresholds evaluated at run time.

This module provides the EFSM representation (:class:`Efsm`,
:class:`EfsmState`, :class:`EfsmTransition`, :class:`EfsmVariable`) and an
executor (:class:`EfsmExecutor`) that runs an EFSM for concrete parameter
values.  Guards and updates are callables over the variable environment
plus parameters, each paired with a textual form used by renderers and
documentation.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Optional

from repro.core.errors import MachineStructureError

#: Guard signature: (variables, parameters) -> bool.
GuardFn = Callable[[Mapping[str, int], Mapping[str, int]], bool]
#: Update signature: (mutable variables, parameters) -> None.
UpdateFn = Callable[[dict[str, int], Mapping[str, int]], None]


#: Builtins available to guard/update code strings (kept minimal: the code
#: is authored by model definitions, not end users, but hygiene is cheap).
_CODE_BUILTINS = {"bool": bool, "min": min, "max": max, "abs": abs, "len": len}


def _compile_guard(code: str) -> GuardFn:
    """Compile a guard expression string into a callable."""
    try:
        return eval(  # noqa: S307 - code authored by model definitions
            f"lambda v, p: bool({code})", {"__builtins__": _CODE_BUILTINS}, {}
        )
    except SyntaxError as exc:
        raise MachineStructureError(f"bad guard code {code!r}: {exc}") from exc


def _compile_update(code: str) -> UpdateFn:
    """Compile an update statement string into a callable."""
    try:
        compiled = compile(code, "<efsm update>", "exec")
    except SyntaxError as exc:
        raise MachineStructureError(f"bad update code {code!r}: {exc}") from exc

    def update(v: dict[str, int], p: Mapping[str, int]) -> None:
        exec(compiled, {"__builtins__": _CODE_BUILTINS}, {"v": v, "p": p})  # noqa: S102

    return update


class EfsmVariable:
    """An internal EFSM variable (e.g. ``votes_received``)."""

    __slots__ = ("_name", "_initial")

    def __init__(self, name: str, initial: int = 0):
        self._name = name
        self._initial = initial

    @property
    def name(self) -> str:
        """Variable name."""
        return self._name

    @property
    def initial(self) -> int:
        """Initial value on machine creation."""
        return self._initial

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EfsmVariable({self._name!r}, initial={self._initial})"


class EfsmTransition:
    """A guarded transition: message + guard -> updates, actions, target.

    Guards and updates may be supplied as Python callables, as *code
    strings*, or both.  Code strings are expressions/statements over the
    names ``v`` (the variable dict) and ``p`` (the parameter dict) — e.g.
    ``guard_code="v['votes_received'] + 1 >= 2*((p['replication_factor']-1)//3)+1"``
    and ``update_code="v['votes_received'] += 1"``.  When only code is
    given, the transition compiles it on demand; code strings are also
    what the EFSM source renderer embeds into generated modules, making
    EFSMs first-class generation artefacts (paper abstract, §5.3).
    """

    __slots__ = (
        "_message",
        "_target",
        "_guard",
        "_guard_text",
        "_guard_code",
        "_update",
        "_update_text",
        "_update_code",
        "_actions",
    )

    def __init__(
        self,
        message: str,
        target: str,
        guard: Optional[GuardFn] = None,
        guard_text: str = "",
        guard_code: Optional[str] = None,
        update: Optional[UpdateFn] = None,
        update_text: str = "",
        update_code: Optional[str] = None,
        actions: Sequence[str] = (),
    ):
        self._message = message
        self._target = target
        self._guard = guard
        self._guard_code = guard_code
        if guard is None and guard_code is not None:
            self._guard = _compile_guard(guard_code)
        self._guard_text = guard_text or guard_code or (
            "always" if self._guard is None else "?"
        )
        self._update = update
        self._update_code = update_code
        if update is None and update_code is not None:
            self._update = _compile_update(update_code)
        self._update_text = update_text or update_code or ""
        self._actions = tuple(actions)

    @property
    def message(self) -> str:
        """Triggering message."""
        return self._message

    @property
    def target(self) -> str:
        """Name of the resultant state."""
        return self._target

    @property
    def guard_text(self) -> str:
        """Human-readable guard condition."""
        return self._guard_text

    @property
    def guard_code(self) -> Optional[str]:
        """Executable guard expression over ``v``/``p``, if declared."""
        return self._guard_code

    @property
    def update_text(self) -> str:
        """Human-readable variable update."""
        return self._update_text

    @property
    def update_code(self) -> Optional[str]:
        """Executable update statement over ``v``/``p``, if declared."""
        return self._update_code

    @property
    def has_guard(self) -> bool:
        """Whether this transition is guarded at all."""
        return self._guard is not None

    @property
    def has_update(self) -> bool:
        """Whether this transition updates variables."""
        return self._update is not None

    @property
    def actions(self) -> tuple[str, ...]:
        """Actions performed when the transition fires."""
        return self._actions

    def enabled(
        self, variables: Mapping[str, int], parameters: Mapping[str, int]
    ) -> bool:
        """Whether the guard holds in the given environment."""
        if self._guard is None:
            return True
        return bool(self._guard(variables, parameters))

    def apply(self, variables: dict[str, int], parameters: Mapping[str, int]) -> None:
        """Apply the variable update in place."""
        if self._update is not None:
            self._update(variables, parameters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EfsmTransition({self._message} [{self._guard_text}] -> {self._target})"
        )


class EfsmState:
    """An EFSM state holding an ordered list of guarded transitions.

    Transition order matters: on a message, the executor fires the first
    transition whose guard is satisfied (guards for one message should be
    mutually exclusive; order resolves any overlap deterministically).
    """

    __slots__ = ("_name", "_transitions", "_final", "_annotations")

    def __init__(self, name: str, final: bool = False, annotations: Sequence[str] = ()):
        self._name = name
        self._transitions: list[EfsmTransition] = []
        self._final = final
        self._annotations = tuple(annotations)

    @property
    def name(self) -> str:
        """State name (for the commit EFSM, the flag combination)."""
        return self._name

    @property
    def final(self) -> bool:
        """Whether this is a terminal state."""
        return self._final

    @property
    def annotations(self) -> tuple[str, ...]:
        """Documentation lines."""
        return self._annotations

    @property
    def transitions(self) -> tuple[EfsmTransition, ...]:
        """Guarded transitions in declaration (priority) order."""
        return tuple(self._transitions)

    def add(self, transition: EfsmTransition) -> "EfsmState":
        """Append a guarded transition."""
        if self._final:
            raise MachineStructureError(
                f"final EFSM state {self._name!r} cannot have transitions"
            )
        self._transitions.append(transition)
        return self

    def transitions_for(self, message: str) -> list[EfsmTransition]:
        """Transitions triggered by ``message``, in priority order."""
        return [t for t in self._transitions if t.message == message]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EfsmState({self._name!r}, {len(self._transitions)} transitions)"


class Efsm:
    """An extended finite state machine definition."""

    def __init__(
        self,
        name: str,
        messages: Sequence[str],
        variables: Sequence[EfsmVariable],
        parameters: Sequence[str] = (),
    ):
        self._name = name
        self._messages = tuple(messages)
        self._variables = tuple(variables)
        self._parameters = tuple(parameters)
        self._states: dict[str, EfsmState] = {}
        self._start: Optional[str] = None

    @property
    def name(self) -> str:
        """Machine name."""
        return self._name

    @property
    def messages(self) -> tuple[str, ...]:
        """Message alphabet."""
        return self._messages

    @property
    def variables(self) -> tuple[EfsmVariable, ...]:
        """Declared internal variables."""
        return self._variables

    @property
    def parameter_names(self) -> tuple[str, ...]:
        """Names of runtime parameters guards may reference."""
        return self._parameters

    @property
    def states(self) -> tuple[EfsmState, ...]:
        """All states in insertion order."""
        return tuple(self._states.values())

    def __len__(self) -> int:
        return len(self._states)

    def add_state(self, state: EfsmState) -> EfsmState:
        """Register a state; names must be unique."""
        if state.name in self._states:
            raise MachineStructureError(f"duplicate EFSM state {state.name!r}")
        self._states[state.name] = state
        return state

    def get_state(self, name: str) -> EfsmState:
        """Look up a state by name."""
        try:
            return self._states[name]
        except KeyError:
            raise MachineStructureError(f"unknown EFSM state {name!r}") from None

    @property
    def start_state(self) -> EfsmState:
        """The designated start state."""
        if self._start is None:
            raise MachineStructureError("EFSM start state has not been set")
        return self._states[self._start]

    def set_start(self, name: str) -> None:
        """Designate the start state."""
        if name not in self._states:
            raise MachineStructureError(f"cannot start at unknown EFSM state {name!r}")
        self._start = name

    def check_integrity(self) -> None:
        """Raise if any transition targets an unknown state or message."""
        for state in self._states.values():
            for transition in state.transitions:
                if transition.target not in self._states:
                    raise MachineStructureError(
                        f"EFSM transition from {state.name!r} targets unknown "
                        f"state {transition.target!r}"
                    )
                if transition.message not in self._messages:
                    raise MachineStructureError(
                        f"EFSM transition on undeclared message {transition.message!r}"
                    )
        if self._start is None:
            raise MachineStructureError("EFSM has no start state")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Efsm({self._name!r}, {len(self._states)} states)"


class EfsmExecutor:
    """Run an EFSM with concrete parameter values.

    Exposes the same driving protocol as the generated FSM classes and
    :class:`~repro.runtime.interp.MachineInterpreter` — ``receive``,
    ``get_state``, ``is_finished``, ``sent`` — so the two formulations can
    be differentially tested on identical message traces (§5.3).
    """

    def __init__(
        self,
        efsm: Efsm,
        parameters: Mapping[str, int],
        sink: Optional[Callable[[str], None]] = None,
    ):
        efsm.check_integrity()
        missing = [p for p in efsm.parameter_names if p not in parameters]
        if missing:
            raise MachineStructureError(f"missing EFSM parameters: {missing}")
        self._efsm = efsm
        self._parameters = dict(parameters)
        self._state = efsm.start_state
        self._variables = {v.name: v.initial for v in efsm.variables}
        self._sink = sink
        self.sent: list[str] = []

    @property
    def variables(self) -> dict[str, int]:
        """Current variable values (copy)."""
        return dict(self._variables)

    @property
    def parameters(self) -> dict[str, int]:
        """Runtime parameters (copy)."""
        return dict(self._parameters)

    def get_state(self) -> str:
        """Current state name."""
        return self._state.name

    def is_finished(self) -> bool:
        """Whether a final state has been reached."""
        return self._state.final

    def receive(self, message: str) -> bool:
        """Process a message; returns ``True`` if a transition fired."""
        if message not in self._efsm.messages:
            raise MachineStructureError(f"unknown message {message!r}")
        for transition in self._state.transitions_for(message):
            if not transition.enabled(self._variables, self._parameters):
                continue
            transition.apply(self._variables, self._parameters)
            for action in transition.actions:
                name = action[2:] if action.startswith("->") else action
                self.sent.append(name)
                if self._sink is not None:
                    self._sink(name)
            self._state = self._efsm.get_state(transition.target)
            return True
        return False

    def run(self, messages: Sequence[str]) -> list[str]:
        """Feed a message sequence; returns the actions performed by it."""
        before = len(self.sent)
        for message in messages:
            self.receive(message)
        return self.sent[before:]
