"""The generic abstract model: the heart of the generative approach.

An :class:`AbstractModel` captures the structure common to a whole family of
finite state machines (paper §3.3–3.4).  Executing it with concrete
parameter values generates one family member as a
:class:`~repro.core.machine.StateMachine`:

1. generate all possible states from the component ranges,
2. for each state, generate the transitions resulting from each message,
3. prune states unreachable from the start state,
4. combine equivalent states.

Subclasses supply the problem-specific parts: the component/message
declaration (:meth:`AbstractModel.configure`, mirroring the paper's
Fig 20 ``initAbstractModel``) and the per-message transition logic
(:meth:`AbstractModel.generate_transition`, mirroring Fig 10's
``generateTransitionOnVote``).  Everything else — enumeration, pruning,
merging, rendering — is inherited, so "it is possible to apply the
methodology to new algorithms without writing any new generative code"
(paper §5.1).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any, Optional

from repro.core.components import StateComponent, StateSpace
from repro.core.errors import InvalidStateError, ModelDefinitionError
from repro.core.machine import StateMachine


class StateView:
    """Read-only view of a state vector with access by component name.

    Passed to model hooks (:meth:`AbstractModel.is_final`,
    :meth:`AbstractModel.describe_state`) so they can inspect component
    values without knowing vector positions.
    """

    __slots__ = ("_space", "_vector")

    def __init__(self, space: StateSpace, vector: tuple):
        self._space = space
        self._vector = vector

    @property
    def space(self) -> StateSpace:
        """The state space the vector belongs to."""
        return self._space

    @property
    def vector(self) -> tuple:
        """The underlying immutable state vector."""
        return self._vector

    @property
    def name(self) -> str:
        """Encoded state name (``T/2/F/0/F/F/F`` style)."""
        return self._space.vector_name(self._vector)

    def get(self, component: str) -> Any:
        """Value of the named component."""
        return self._space.get(self._vector, component)

    def __getitem__(self, component: str) -> Any:
        return self.get(component)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateView({self.name})"


class TransitionBuilder(StateView):
    """Mutable elaboration of one transition's consequences (paper Fig 10).

    The paper's abstract model applies a series of ``targetOnX()`` utility
    methods to a state variable ``s1``, accumulating outgoing messages in an
    ``actions`` list and commentary in annotations.  This class plays the
    role of ``s1 + actions``: handlers call :meth:`set`, :meth:`increment`
    and :meth:`send` and the builder tracks the resulting state vector, the
    ordered action list, and the recorded annotations.

    Any attempt to move a component outside its legal range raises
    :class:`~repro.core.errors.InvalidStateError`, which the pipeline treats
    as "message not applicable in this state".
    """

    __slots__ = ("_source", "_actions", "_annotations")

    def __init__(self, space: StateSpace, vector: tuple):
        super().__init__(space, vector)
        self._source = vector
        self._actions: list[str] = []
        self._annotations: list[str] = []

    # ------------------------------------------------------------------
    # state updates
    # ------------------------------------------------------------------

    def set(self, component: str, value: Any, because: Optional[str] = None) -> None:
        """Assign ``value`` to a component; optionally record the rationale."""
        try:
            self._vector = self._space.replace(self._vector, component, value)
        except Exception as exc:
            raise InvalidStateError(
                f"cannot set {component}={value!r} in state "
                f"{self._space.vector_name(self._source)}: {exc}"
            ) from exc
        if because:
            self._annotations.append(because)

    def increment(self, component: str, because: Optional[str] = None) -> None:
        """Add one to a counter component.

        Raises :class:`InvalidStateError` when the counter is already at its
        maximum — e.g. a vote arriving when ``votes_received`` is ``r-1``.
        """
        self.set(component, self.get(component) + 1, because=because)

    def send(self, message: str, because: Optional[str] = None) -> None:
        """Record an outgoing message as a transition action (``->message``)."""
        self._actions.append(f"->{message}")
        if because:
            self._annotations.append(because)

    def act(self, action: str, because: Optional[str] = None) -> None:
        """Record an arbitrary non-message action string."""
        self._actions.append(action)
        if because:
            self._annotations.append(because)

    def annotate(self, *lines: str) -> None:
        """Record documentation lines without changing state or actions."""
        self._annotations.extend(lines)

    def invalid(self, reason: str) -> None:
        """Declare the message inapplicable in the source state."""
        raise InvalidStateError(reason)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    @property
    def source_vector(self) -> tuple:
        """The state vector the transition starts from."""
        return self._source

    @property
    def actions(self) -> tuple[str, ...]:
        """Ordered actions accumulated so far."""
        return tuple(self._actions)

    @property
    def recorded_annotations(self) -> tuple[str, ...]:
        """Annotation lines accumulated so far."""
        return tuple(self._annotations)

    @property
    def changed(self) -> bool:
        """Whether the state vector differs from the source vector."""
        return self._vector != self._source

    def is_effective(self) -> bool:
        """Whether this elaboration produced any observable effect.

        Transitions that neither change state nor perform actions are not
        recorded in the generated machine (the paper's Fig 14 lists no
        UPDATE row for a state that has already received its update).
        """
        return self.changed or bool(self._actions)


class AbstractModel:
    """Base class for problem-specific abstract models.

    Parameters are supplied at construction (e.g.
    ``CommitModel(replication_factor=4)``); :meth:`configure` maps them to
    the component and message declarations.  The paper's
    ``generateStateMachine(int replication_factor)`` corresponds to
    constructing a model and calling :meth:`generate_state_machine`.
    """

    def __init__(self, **parameters: Any):
        self._parameters = dict(parameters)
        declared = self.configure(**parameters)
        try:
            components, messages = declared
        except (TypeError, ValueError):
            raise ModelDefinitionError(
                "configure() must return (components, messages)"
            ) from None
        if not messages:
            raise ModelDefinitionError("a model must declare at least one message")
        self._space = StateSpace(list(components))
        self._messages = tuple(messages)

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------

    def configure(
        self, **parameters: Any
    ) -> tuple[Sequence[StateComponent], Sequence[str]]:
        """Declare state components and messages for the given parameters.

        Mirrors the paper's Fig 20 initialisation of the generic abstract
        model.  Must be overridden.
        """
        raise NotImplementedError

    def generate_transition(self, message: str, builder: TransitionBuilder) -> None:
        """Elaborate the effect of receiving ``message`` (paper Fig 10).

        Implementations mutate ``builder``; raising
        :class:`InvalidStateError` (or calling ``builder.invalid``) means
        the message is not applicable in the source state.  Must be
        overridden.
        """
        raise NotImplementedError

    def is_final(self, view: StateView) -> bool:
        """Whether ``view`` is a terminal state (no outgoing transitions).

        Final states are where the algorithm has completed; the generation
        pipeline produces no transitions from them and step 4 merges all
        reachable final states into the machine's single finish state.
        """
        return False

    def start_vector(self) -> tuple:
        """The state vector of the start state (default: all initial values)."""
        return self._space.initial_vector()

    def describe_state(self, view: StateView) -> list[str]:
        """Documentation lines for a state (Fig 14 commentary).

        The default lists each component value; models override this to
        produce algorithm-level commentary.
        """
        return self._space.describe_vector(view.vector)

    def machine_name(self) -> str:
        """Name given to generated machines."""
        args = ",".join(f"{k}={v}" for k, v in sorted(self._parameters.items()))
        base = type(self).__name__
        return f"{base}[{args}]" if args else base

    # ------------------------------------------------------------------
    # successor enumeration (shared by the eager and lazy engines)
    # ------------------------------------------------------------------

    def successors(self, vector: tuple):
        """Yield ``(message, builder)`` for each effective message in ``vector``.

        One elaborated :class:`TransitionBuilder` per message that is both
        applicable (no :class:`InvalidStateError`) and effective (changes
        state or performs actions).  The eager pipeline calls this for every
        state of the product space; the lazy engine
        (:func:`repro.core.lazy.generate_lazy`) calls it on demand for
        frontier states only, which is what makes on-the-fly reachable-set
        construction possible without any model changes.
        """
        for message in self._messages:
            builder = TransitionBuilder(self._space, vector)
            try:
                self.generate_transition(message, builder)
            except InvalidStateError:
                continue  # message not applicable in this state (Fig 10)
            if not builder.is_effective():
                continue  # no state change and no actions: not recorded
            yield message, builder

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def space(self) -> StateSpace:
        """The declared state space."""
        return self._space

    @property
    def messages(self) -> tuple[str, ...]:
        """The declared message alphabet."""
        return self._messages

    @property
    def parameters(self) -> dict:
        """Constructor parameters."""
        return dict(self._parameters)

    # ------------------------------------------------------------------
    # generation (delegates to the pipeline; imported lazily to avoid a
    # circular dependency between model and pipeline modules)
    # ------------------------------------------------------------------

    def generate_state_machine(
        self, *, prune: bool = True, merge: bool = True, engine: str = "eager"
    ) -> StateMachine:
        """Run the generation process and return the machine.

        ``engine`` selects between the eager four-step pipeline
        (:func:`repro.core.pipeline.generate`) and the lazy frontier-based
        engine (:func:`repro.core.lazy.generate_lazy`); both produce
        isomorphic machines.  ``prune=False`` (inspecting the unpruned
        product space) requires the eager engine and raises ``ValueError``
        with the lazy one.
        """
        from repro.core.pipeline import generate_with_engine

        machine, _ = generate_with_engine(self, engine, prune=prune, merge=merge)
        return machine

    def generate_with_report(
        self, *, prune: bool = True, merge: bool = True, engine: str = "eager"
    ):
        """As :meth:`generate_state_machine`, also returning the step report."""
        from repro.core.pipeline import generate_with_engine

        return generate_with_engine(self, engine, prune=prune, merge=merge)
