"""State and transition value objects for generated machines.

These mirror the paper's Fig 5 Java classes::

    class State      { String state_name; Transition[] transitions; String[] annotations; }
    class Transition { State resultant_state; String[] actions; String[] annotations; }

A :class:`State` owns its outgoing transitions keyed by message name.  Both
states and transitions carry free-form annotation strings which renderers
turn into the automatically generated commentary of Fig 14.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any, Optional

from repro.core.errors import MachineStructureError


class Transition:
    """A single outgoing transition: message -> actions + resultant state.

    ``actions`` are ordered action names (e.g. ``"->vote"``) accumulated
    while the abstract model elaborated the consequences of receiving the
    message (paper Fig 10).  ``annotations`` document why the transition
    does what it does.
    """

    __slots__ = ("_message", "_actions", "_target_name", "_annotations")

    def __init__(
        self,
        message: str,
        target_name: str,
        actions: Sequence[str] = (),
        annotations: Sequence[str] = (),
    ):
        self._message = message
        self._target_name = target_name
        self._actions = tuple(actions)
        self._annotations = tuple(annotations)

    @property
    def message(self) -> str:
        """Message whose receipt triggers this transition."""
        return self._message

    @property
    def target_name(self) -> str:
        """Name of the resultant state."""
        return self._target_name

    @property
    def actions(self) -> tuple[str, ...]:
        """Ordered external actions performed by this transition."""
        return self._actions

    @property
    def annotations(self) -> tuple[str, ...]:
        """Documentation strings recorded during generation."""
        return self._annotations

    def is_phase_transition(self) -> bool:
        """Whether this transition performs actions (paper §3.3).

        Simple transitions only move between states; *phase* transitions
        additionally send messages — the thick arrows of Fig 8.
        """
        return bool(self._actions)

    def retarget(self, new_target: str) -> "Transition":
        """Copy of this transition pointing at ``new_target`` (used by merging)."""
        return Transition(self._message, new_target, self._actions, self._annotations)

    def signature(self) -> tuple:
        """(message, actions, target) triple used for equivalence checks."""
        return (self._message, self._actions, self._target_name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Transition) and self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        arrow = ", ".join(self._actions) or "-"
        return f"Transition({self._message} [{arrow}] -> {self._target_name})"


class State:
    """A named state with outgoing transitions and documentation.

    ``vector`` retains the underlying component values for states produced
    from a :class:`~repro.core.components.StateSpace`; merged states keep
    the vector of their representative.  ``merged_names`` lists the names
    of all original states combined into this one (empty before step 4).
    """

    __slots__ = (
        "_name",
        "_vector",
        "_transitions",
        "_annotations",
        "_final",
        "_merged_names",
    )

    def __init__(
        self,
        name: str,
        vector: Optional[tuple] = None,
        annotations: Sequence[str] = (),
        final: bool = False,
    ):
        self._name = name
        self._vector = vector
        self._transitions: dict[str, Transition] = {}
        self._annotations = list(annotations)
        self._final = final
        self._merged_names: tuple[str, ...] = ()

    @property
    def name(self) -> str:
        """Encoded state name, e.g. ``T/2/F/0/F/F/F``."""
        return self._name

    @property
    def vector(self) -> Optional[tuple]:
        """Underlying component values, if this state came from a space."""
        return self._vector

    @property
    def final(self) -> bool:
        """Whether this is a terminal (finished) state."""
        return self._final

    @property
    def annotations(self) -> tuple[str, ...]:
        """Documentation lines describing this state (Fig 14 commentary)."""
        return tuple(self._annotations)

    @property
    def merged_names(self) -> tuple[str, ...]:
        """Original state names combined into this state by step 4."""
        return self._merged_names

    def annotate(self, *lines: str) -> None:
        """Append documentation lines."""
        self._annotations.extend(lines)

    def set_merged_names(self, names: Iterable[str]) -> None:
        """Record the set of original states this state represents."""
        self._merged_names = tuple(names)

    @property
    def transitions(self) -> tuple[Transition, ...]:
        """Outgoing transitions in message-declaration order of insertion."""
        return tuple(self._transitions.values())

    def messages(self) -> tuple[str, ...]:
        """Messages for which this state has a transition."""
        return tuple(self._transitions.keys())

    def record_transition(self, transition: Transition) -> None:
        """Attach an outgoing transition (paper: ``recordTransition``).

        A state machine is deterministic: at most one transition per
        message.  Re-recording a message is a structural error.
        """
        if self._final:
            raise MachineStructureError(
                f"final state {self._name!r} cannot have outgoing transitions"
            )
        if transition.message in self._transitions:
            raise MachineStructureError(
                f"state {self._name!r} already has a transition on {transition.message!r}"
            )
        self._transitions[transition.message] = transition

    def get_transition(self, message: str) -> Optional[Transition]:
        """The transition triggered by ``message``, or ``None`` if inapplicable."""
        return self._transitions.get(message)

    def replace_transitions(self, transitions: Iterable[Transition]) -> None:
        """Replace all outgoing transitions (used when rewriting targets)."""
        self._transitions = {}
        for t in transitions:
            if t.message in self._transitions:
                raise MachineStructureError(
                    f"duplicate transition on {t.message!r} for state {self._name!r}"
                )
            self._transitions[t.message] = t

    def transition_signature(self) -> tuple:
        """Canonical signature of outgoing behaviour, for equivalence merging."""
        return tuple(sorted(t.signature() for t in self._transitions.values()))

    def component(self, space: Any, name: str) -> Any:
        """Convenience accessor: value of a named component of this state."""
        if self._vector is None:
            raise MachineStructureError(f"state {self._name!r} has no component vector")
        return space.get(self._vector, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "final " if self._final else ""
        return f"State({kind}{self._name!r}, {len(self._transitions)} transitions)"
