"""State components: the typed building blocks of an abstract state space.

The paper's generic abstract model (Fig 20) is initialised with an array of
``StateComponent`` objects — ``IntComponent("votes_received", r - 1)``,
``BooleanComponent("vote_sent")`` and so on — whose value ranges define the
space of possible states.  This module provides those component classes plus
a :class:`StateSpace` that owns an ordered set of components and can
enumerate, encode and decode complete state vectors.

Component values are plain Python objects (``bool`` / ``int`` / enumeration
members as ``str``).  A *state vector* is a tuple holding one value per
component, in declaration order; vectors are immutable and hashable so they
can serve as dictionary keys during generation.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence
from typing import Any

from repro.core.errors import ComponentError


class StateComponent:
    """One named dimension of an abstract state space.

    Subclasses define the set of legal values.  Components are immutable
    value objects: equality and hashing are based on the declaration, not
    identity, so two models declaring the same components compare equal.
    """

    def __init__(self, name: str):
        if not name or not name.replace("_", "").isalnum():
            raise ComponentError(
                f"component name must be an identifier-like string, got {name!r}"
            )
        self._name = name

    @property
    def name(self) -> str:
        """Declared component name, e.g. ``"votes_received"``."""
        return self._name

    def values(self) -> Sequence[Any]:
        """All legal values for this component, in canonical order."""
        raise NotImplementedError

    def initial_value(self) -> Any:
        """The value this component takes in a freshly created machine."""
        return self.values()[0]

    def contains(self, value: Any) -> bool:
        """Whether ``value`` is legal for this component."""
        return value in self.values()

    def encode(self, value: Any) -> str:
        """Short printable encoding used in state names (``T``/``F``/digits)."""
        raise NotImplementedError

    def describe(self, value: Any) -> str:
        """Human-readable description of ``value`` for documentation."""
        return f"{self._name} = {self.encode(value)}"

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self._key() == other._key()  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        return (self._name,)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self._name!r})"


class BooleanComponent(StateComponent):
    """A flag component; values are ``False`` then ``True``.

    Mirrors ``BooleanComponent`` in the paper's Fig 20.
    """

    _VALUES = (False, True)

    def values(self) -> Sequence[bool]:
        return self._VALUES

    def contains(self, value: Any) -> bool:
        return value is True or value is False

    def encode(self, value: Any) -> str:
        return "T" if value else "F"


class IntComponent(StateComponent):
    """A bounded counter component with values ``0 .. maximum`` inclusive.

    Mirrors ``IntComponent`` in the paper's Fig 20, where the maximum for
    the message counts is ``replication_factor - 1``.
    """

    def __init__(self, name: str, maximum: int):
        super().__init__(name)
        if maximum < 0:
            raise ComponentError(f"maximum for {name!r} must be >= 0, got {maximum}")
        self._maximum = maximum

    @property
    def maximum(self) -> int:
        """Largest legal value."""
        return self._maximum

    def values(self) -> Sequence[int]:
        return range(self._maximum + 1)

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and 0 <= value <= self._maximum
        )

    def encode(self, value: Any) -> str:
        return str(value)

    def _key(self) -> tuple:
        return (self._name, self._maximum)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntComponent({self._name!r}, {self._maximum})"


class EnumComponent(StateComponent):
    """A component ranging over a fixed set of symbolic values.

    Not used by the paper's commit model but useful for other
    message-counting algorithms (e.g. a round phase in Chandra–Toueg style
    consensus).  Values are strings; the first declared value is initial.
    """

    def __init__(self, name: str, values: Sequence[str]):
        super().__init__(name)
        if not values:
            raise ComponentError(f"enum component {name!r} needs at least one value")
        if len(set(values)) != len(values):
            raise ComponentError(f"enum component {name!r} has duplicate values")
        self._values = tuple(values)

    def values(self) -> Sequence[str]:
        return self._values

    def encode(self, value: Any) -> str:
        return str(value)

    def _key(self) -> tuple:
        return (self._name, self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EnumComponent({self._name!r}, {list(self._values)!r})"


class StateSpace:
    """An ordered collection of components defining a product state space.

    The space provides vector-level operations used by the generation
    pipeline: enumeration of all possible vectors (step 1 of the paper's
    process), component lookup by name, and single-component updates that
    return new immutable vectors.
    """

    SEPARATOR = "/"

    def __init__(self, components: Sequence[StateComponent]):
        if not components:
            raise ComponentError("a state space needs at least one component")
        names = [c.name for c in components]
        if len(set(names)) != len(names):
            raise ComponentError(f"duplicate component names: {names}")
        self._components = tuple(components)
        self._index = {c.name: i for i, c in enumerate(self._components)}
        self._interned: dict[tuple, tuple] = {}

    @property
    def components(self) -> tuple[StateComponent, ...]:
        """Components in declaration order."""
        return self._components

    @property
    def names(self) -> tuple[str, ...]:
        """Component names in declaration order."""
        return tuple(c.name for c in self._components)

    def __len__(self) -> int:
        return len(self._components)

    def size(self) -> int:
        """Number of vectors in the full product space (paper: ``2^5 r^2``)."""
        total = 1
        for c in self._components:
            total *= len(c.values())
        return total

    def index_of(self, name: str) -> int:
        """Position of the named component."""
        try:
            return self._index[name]
        except KeyError:
            raise ComponentError(
                f"unknown component {name!r}; have {list(self._index)}"
            ) from None

    def component(self, name: str) -> StateComponent:
        """The named component object."""
        return self._components[self.index_of(name)]

    def enumerate_vectors(self) -> Iterator[tuple]:
        """Yield every possible state vector (generation step 1)."""
        yield from itertools.product(*(c.values() for c in self._components))

    def initial_vector(self) -> tuple:
        """Vector of initial values (all flags clear, all counters zero)."""
        return tuple(c.initial_value() for c in self._components)

    def intern(self, vector: Sequence[Any]) -> tuple:
        """Canonical shared tuple for ``vector``.

        The lazy generation engine discovers the same state vector many
        times (once per incoming transition); interning gives every
        discovery the *same* tuple object, so frontier/seen-set membership
        checks short-circuit on identity and the engine's bookkeeping
        references one copy per reachable state.  The cache lives on the
        space and holds one entry per vector ever interned — for the lazy
        engine that is exactly the reachable set, the vectors the generated
        states retain anyway.
        """
        key = tuple(vector)
        return self._interned.setdefault(key, key)

    def validate_vector(self, vector: Sequence[Any]) -> tuple:
        """Check ``vector`` against the component ranges; return it as a tuple."""
        if len(vector) != len(self._components):
            raise ComponentError(
                f"vector has {len(vector)} values but space has {len(self._components)} components"
            )
        for component, value in zip(self._components, vector):
            if not component.contains(value):
                raise ComponentError(
                    f"value {value!r} is illegal for component {component.name!r}"
                )
        return tuple(vector)

    def get(self, vector: Sequence[Any], name: str) -> Any:
        """Value of the named component within ``vector``."""
        return vector[self.index_of(name)]

    def replace(self, vector: Sequence[Any], name: str, value: Any) -> tuple:
        """New vector with the named component set to ``value``."""
        i = self.index_of(name)
        if not self._components[i].contains(value):
            raise ComponentError(f"value {value!r} is illegal for component {name!r}")
        out = list(vector)
        out[i] = value
        return tuple(out)

    def vector_name(self, vector: Sequence[Any]) -> str:
        """Encode a vector as a state name, e.g. ``T/2/F/0/F/F/F`` (Fig 14)."""
        return self.SEPARATOR.join(
            c.encode(v) for c, v in zip(self._components, vector)
        )

    def parse_name(self, name: str) -> tuple:
        """Inverse of :meth:`vector_name`; raises on malformed names."""
        parts = name.split(self.SEPARATOR)
        if len(parts) != len(self._components):
            raise ComponentError(
                f"state name {name!r} has {len(parts)} fields, expected {len(self._components)}"
            )
        values = []
        for component, text in zip(self._components, parts):
            values.append(_decode(component, text))
        return self.validate_vector(values)

    def describe_vector(self, vector: Sequence[Any]) -> list[str]:
        """One human-readable line per component, for documentation output."""
        return [c.describe(v) for c, v in zip(self._components, vector)]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StateSpace) and self._components == other._components

    def __hash__(self) -> int:
        return hash(self._components)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateSpace({list(self._components)!r})"


def _decode(component: StateComponent, text: str) -> Any:
    """Decode one encoded field back into a component value."""
    if isinstance(component, BooleanComponent):
        if text == "T":
            return True
        if text == "F":
            return False
        raise ComponentError(f"cannot decode {text!r} as boolean {component.name!r}")
    if isinstance(component, IntComponent):
        try:
            value = int(text)
        except ValueError:
            raise ComponentError(
                f"cannot decode {text!r} as int {component.name!r}"
            ) from None
        return value
    if isinstance(component, EnumComponent):
        if text in component.values():
            return text
        raise ComponentError(f"cannot decode {text!r} as enum {component.name!r}")
    raise ComponentError(f"no decoder for component type {type(component).__name__}")
