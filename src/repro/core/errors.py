"""Exception hierarchy for the generative state-machine toolchain.

The paper's Java implementation uses a single ``InvalidStateException`` to
signal that a message is not applicable in a given state (Fig 10).  We keep
that exception and add a small hierarchy so that callers can distinguish
configuration errors from generation-time and rendering-time failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidStateError(ReproError):
    """A message is not applicable in the current state.

    Raised by abstract-model transition builders when applying a message
    would push a state component outside its legal range (for example,
    receiving a vote when ``votes_received`` is already at its maximum).
    The generation pipeline catches this and simply records no transition,
    mirroring the ``catch (InvalidStateException)`` in the paper's Fig 10.
    """


class ComponentError(ReproError):
    """A state component was declared or used inconsistently."""


class ModelDefinitionError(ReproError):
    """An abstract model is mis-configured (no components, bad parameter)."""


class MachineStructureError(ReproError):
    """A generated state machine violates a structural requirement."""


class RenderError(ReproError):
    """An artefact renderer could not produce output."""


class DeploymentError(ReproError):
    """Generated source could not be compiled, loaded or bound."""


class SimulationError(ReproError):
    """The discrete-event simulation substrate detected an inconsistency."""
