"""Execution traces: recording, replay and exhaustive enumeration.

Complements the runtime with tooling for *conformance work*:

* :class:`TraceRecorder` wraps any machine-driving object and records the
  (message, fired, actions, state) tuple per step, yielding a replayable
  :class:`Trace`;
* :func:`replay` drives another implementation with a recorded trace and
  verifies it behaves identically — the mechanism behind the differential
  tests between the generic algorithm, interpreted FSM, compiled FSM and
  EFSM;
* :func:`enumerate_traces` walks the machine graph itself, producing every
  distinguishable message sequence up to a depth bound.  Unlike random
  testing this is *exhaustive*: two implementations that agree on all
  enumerated traces of length ``k`` agree on every message sequence of
  length ``k`` (the machine is deterministic, so traces cover all
  behaviours).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.machine import StateMachine


@dataclass(frozen=True)
class TraceStep:
    """One step of a recorded execution."""

    message: str
    fired: bool
    actions: tuple[str, ...]
    state_after: str


@dataclass
class Trace:
    """A replayable execution record."""

    steps: list[TraceStep] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def messages(self) -> list[str]:
        """The message sequence of this trace."""
        return [step.message for step in self.steps]

    @property
    def actions(self) -> list[str]:
        """All actions performed, in order."""
        out: list[str] = []
        for step in self.steps:
            out.extend(step.actions)
        return out

    def final_state(self) -> str | None:
        """State name after the last step (None for the empty trace)."""
        return self.steps[-1].state_after if self.steps else None


class TraceRecorder:
    """Wrap a machine-driving object and record each receive call.

    The wrapped object must expose ``receive(message) -> bool``,
    ``get_state() -> str`` and a ``sent`` list (all implementations in
    this library do).
    """

    def __init__(self, target: Any):
        self._target = target
        self.trace = Trace()

    def receive(self, message: str) -> bool:
        before = len(self._target.sent)
        fired = self._target.receive(message)
        actions = tuple(self._target.sent[before:])
        self.trace.steps.append(
            TraceStep(
                message=message,
                fired=fired,
                actions=actions,
                state_after=self._target.get_state(),
            )
        )
        return fired

    def run(self, messages: Sequence[str]) -> Trace:
        """Record a whole message sequence; returns the trace so far."""
        for message in messages:
            self.receive(message)
        return self.trace

    def __getattr__(self, name: str) -> Any:
        return getattr(self._target, name)


@dataclass
class ReplayMismatch:
    """A divergence found while replaying a trace."""

    step_index: int
    field_name: str
    expected: Any
    actual: Any

    def __str__(self) -> str:
        return (
            f"step {self.step_index}: {self.field_name} expected "
            f"{self.expected!r}, got {self.actual!r}"
        )


def replay(
    trace: Trace, target: Any, compare_states: bool = True
) -> list[ReplayMismatch]:
    """Drive ``target`` with a recorded trace; return all divergences.

    ``compare_states`` is disabled when replaying against an
    implementation with a different state naming (e.g. an EFSM whose
    states are phases, not full vectors) — actions and firing still must
    match.
    """
    mismatches: list[ReplayMismatch] = []
    for index, step in enumerate(trace.steps):
        before = len(target.sent)
        fired = target.receive(step.message)
        actions = tuple(target.sent[before:])
        if fired != step.fired:
            mismatches.append(ReplayMismatch(index, "fired", step.fired, fired))
        if actions != step.actions:
            mismatches.append(ReplayMismatch(index, "actions", step.actions, actions))
        if compare_states and target.get_state() != step.state_after:
            mismatches.append(
                ReplayMismatch(index, "state", step.state_after, target.get_state())
            )
    return mismatches


def enumerate_traces(
    machine: StateMachine,
    max_depth: int,
    include_inapplicable: bool = False,
) -> Iterator[list[str]]:
    """Yield every distinguishable message sequence up to ``max_depth``.

    Walks the machine graph depth-first from the start state.  By default
    only *applicable* messages are explored at each state (an inapplicable
    message never changes behaviour, so appending it to a trace cannot
    distinguish implementations); ``include_inapplicable=True`` adds one
    no-op probe per state for implementations whose ignore-behaviour is
    itself under test.
    """
    machine.check_integrity()

    def walk(state_name: str, prefix: list[str], depth: int) -> Iterator[list[str]]:
        if prefix:
            yield list(prefix)
        if depth == max_depth:
            return
        state = machine.get_state(state_name)
        probed_noop = False
        for message in machine.messages:
            transition = state.get_transition(message)
            if transition is None:
                if include_inapplicable and not probed_noop:
                    probed_noop = True
                    yield from walk(state_name, prefix + [message], max_depth)
                continue
            yield from walk(transition.target_name, prefix + [message], depth + 1)

    yield from walk(machine.start_state.name, [], 0)


def count_reachable_traces(machine: StateMachine, max_depth: int) -> int:
    """Number of distinguishable traces up to a depth (for reporting)."""
    return sum(1 for _ in enumerate_traces(machine, max_depth))
