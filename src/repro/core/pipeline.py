"""The four-step state machine generation pipeline (paper §3.4).

``generate(model)`` executes:

1. **Generate possible states** — enumerate the full component product
   space (``2^5 r^2`` = 512 states for the commit model at r=4, Fig 7).
2. **Generate transitions** — run the model's per-message transition logic
   from every non-final state, recording actions and annotations (Fig 11).
3. **Prune unreachable states** — keep only states reachable from the start
   state (512 → 48 for r=4, Fig 12).
4. **Combine equivalent states** — bisimulation quotient (48 → 33, Fig 13).

The returned :class:`GenerationReport` records the state counts after each
step together with wall-clock timings, which is exactly the data behind the
paper's Table 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.machine import StateMachine
from repro.core.minimize import merge_equivalent
from repro.core.model import AbstractModel, StateView
from repro.core.state import State, Transition

#: The generation engines selectable via ``engine=`` / ``--engine``.
ENGINES = ("eager", "lazy")


@dataclass
class GenerationReport:
    """Counts and timings from one run of the generation pipeline.

    ``initial_states`` / ``reachable_states`` / ``merged_states`` correspond
    to the "initial states" and "final states" columns of the paper's
    Table 1 (with the intermediate post-pruning count of Fig 12).
    """

    model_name: str
    parameters: dict
    initial_states: int = 0
    transition_count: int = 0
    reachable_states: int = 0
    merged_states: int = 0
    timings: dict[str, float] = field(default_factory=dict)
    #: Which engine produced the machine: ``"eager"`` (four-step pipeline)
    #: or ``"lazy"`` (frontier-based on-the-fly construction).
    engine: str = "eager"
    #: Largest worklist size observed by the lazy engine (0 for eager runs);
    #: with the seen-set, this bounds the engine's peak working memory.
    frontier_peak: int = 0
    #: :class:`repro.opt.PassReport` when generation ran an ``optimize=``
    #: pipeline (``None`` otherwise); its ``state_map`` relates optimized
    #: state names back to the generated ones.
    opt_report: object = None

    @property
    def total_time(self) -> float:
        """Total generation wall-clock time in seconds (Table 1, last column)."""
        return sum(self.timings.values())

    def table1_row(self) -> dict:
        """The paper's Table 1 row for this generation run."""
        return {
            "parameters": dict(self.parameters),
            "initial_states": self.initial_states,
            "final_states": self.merged_states or self.reachable_states,
            "generation_time_s": round(self.total_time, 4),
        }

    def __str__(self) -> str:
        return (
            f"{self.model_name} [{self.engine}]: {self.initial_states} initial -> "
            f"{self.reachable_states} reachable -> {self.merged_states} merged "
            f"({self.total_time:.3f}s)"
        )


def generate(
    model: AbstractModel, *, prune: bool = True, merge: bool = True
) -> tuple[StateMachine, GenerationReport]:
    """Run the pipeline for ``model``; return the machine and its report.

    ``prune`` / ``merge`` switch steps 3 / 4 off for inspection of the
    intermediate data structures (Figs 7–13).
    """
    report = GenerationReport(model.machine_name(), model.parameters)
    space = model.space

    # ------------------------------------------------------------- step 1
    started = time.perf_counter()
    machine = StateMachine(
        model.messages,
        space=space,
        name=model.machine_name(),
        parameters=model.parameters,
    )
    vectors: list[tuple] = []
    for vector in space.enumerate_vectors():
        vectors.append(vector)
        final = model.is_final(StateView(space, vector))
        machine.add_state(State(space.vector_name(vector), vector=vector, final=final))
    report.initial_states = len(machine)
    report.timings["enumerate"] = time.perf_counter() - started

    # ------------------------------------------------------------- step 2
    started = time.perf_counter()
    for vector in vectors:
        state = machine.get_state(space.vector_name(vector))
        if state.final:
            continue
        for message, builder in model.successors(vector):
            state.record_transition(
                Transition(
                    message,
                    space.vector_name(builder.vector),
                    builder.actions,
                    builder.recorded_annotations,
                )
            )
    start_name = space.vector_name(model.start_vector())
    machine.set_start(start_name)
    report.transition_count = machine.transition_count()
    report.timings["transitions"] = time.perf_counter() - started

    # ------------------------------------------------------------- step 3
    if prune:
        started = time.perf_counter()
        machine.prune_unreachable()
        report.timings["prune"] = time.perf_counter() - started
    report.reachable_states = len(machine)

    _designate_finish(machine)
    _annotate_states(model, machine)

    # ------------------------------------------------------------- step 4
    if merge:
        started = time.perf_counter()
        machine = merge_equivalent(machine)
        report.timings["merge"] = time.perf_counter() - started
    report.merged_states = len(machine)

    machine.check_integrity()
    return machine, report


def generate_with_engine(
    model: AbstractModel,
    engine: str = "eager",
    *,
    prune: bool = True,
    merge: bool = True,
    optimize=None,
) -> tuple[StateMachine, GenerationReport]:
    """Dispatch generation to the named engine.

    ``"eager"`` runs the four-step pipeline above; ``"lazy"`` runs the
    frontier-based engine of :mod:`repro.core.lazy`, which never
    materialises the product space — requesting ``prune=False`` from it is
    a contradiction and raises :class:`ValueError` rather than silently
    returning a pruned machine.  Both engines return isomorphic machines
    with identical merged state counts.

    ``optimize`` optionally runs a :class:`repro.opt.PassPipeline` (or a
    level / pass-list spec accepted by :func:`repro.opt.parse_opt_spec`)
    over the generated machine; the pass deltas land in the report's
    ``opt_report`` and the time in ``timings["optimize"]``.
    """
    if engine == "eager":
        machine, report = generate(model, prune=prune, merge=merge)
    elif engine == "lazy":
        if not prune:
            raise ValueError(
                "prune=False requires the eager engine: the lazy engine never "
                "materialises unreachable states, so there is nothing to keep"
            )
        from repro.core.lazy import generate_lazy

        machine, report = generate_lazy(model, merge=merge)
    else:
        raise ValueError(f"unknown generation engine {engine!r}; choose from {ENGINES}")
    if optimize is not None:
        machine, report.opt_report = _run_optimizer(machine, optimize)
        if report.opt_report is not None:
            report.timings["optimize"] = report.opt_report.total_time
    return machine, report


def _run_optimizer(machine: StateMachine, optimize):
    """Run an ``optimize=`` hook (pipeline or spec) over a machine.

    Imported lazily: :mod:`repro.opt` sits above the core package, so the
    hook is the only place the core reaches up into it.
    """
    from repro.opt import as_pipeline

    pipeline = as_pipeline(optimize)
    if pipeline is None:
        return machine, None
    return pipeline.optimize_machine(machine)


def _designate_finish(machine: StateMachine) -> None:
    """Set the machine's finish state when it is unambiguous.

    Before merging there may be many final states; the single finish state
    of the paper's Fig 5 only exists once step 4 has collapsed them.
    """
    finals = machine.final_states()
    if len(finals) == 1:
        machine.set_finish(finals[0].name)
    else:
        machine.set_finish(None)


def _annotate_states(model: AbstractModel, machine: StateMachine) -> None:
    """Attach model commentary to the states that survived pruning.

    Annotation is deferred until after step 3 so that enumerating very
    large spaces (67,712 states at r=46) does not pay for documenting
    states that will immediately be discarded.
    """
    space = model.space
    for state in machine.states:
        if state.vector is None:
            continue
        lines = model.describe_state(StateView(space, state.vector))
        if lines:
            state.annotate(*lines)
