"""Structural validation of generated machines.

The generation pipeline guarantees basic integrity; this module adds deeper
checks used by tests and by users developing new abstract models:
reachability of every state, coverage of the message alphabet, absence of
dead non-final states, and action consistency.  :func:`validate_machine`
returns a list of human-readable issues (empty when the machine is clean)
so callers can choose between asserting and reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.machine import StateMachine


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_machine`."""

    issues: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether no issues were found."""
        return not self.issues

    def __str__(self) -> str:
        if self.ok:
            return "machine valid"
        return "machine issues:\n" + "\n".join(f"- {issue}" for issue in self.issues)


def validate_machine(machine: StateMachine) -> ValidationReport:
    """Run all structural checks on ``machine``."""
    report = ValidationReport()
    machine.check_integrity()

    reachable = machine.reachable_names()
    for state in machine.states:
        if state.name not in reachable:
            report.issues.append(f"state {state.name!r} unreachable from start")

    used_messages = {t.message for _, t in machine.transitions()}
    for message in machine.messages:
        if message not in used_messages:
            report.issues.append(f"message {message!r} triggers no transition")

    for state in machine.states:
        if not state.final and not state.transitions:
            report.issues.append(
                f"non-final state {state.name!r} has no outgoing transitions (dead end)"
            )

    for state in machine.states:
        for transition in state.transitions:
            for action in transition.actions:
                if not action:
                    report.issues.append(
                        f"empty action on {state.name!r} --{transition.message}-->"
                    )

    finals = machine.final_states()
    if finals and machine.finish_state is None and len(finals) > 1:
        report.issues.append(
            f"{len(finals)} final states but no designated finish state "
            "(run equivalence merging)"
        )
    return report


def assert_valid(machine: StateMachine) -> None:
    """Raise ``AssertionError`` with the full issue list if checks fail."""
    report = validate_machine(machine)
    assert report.ok, str(report)
