"""The ``StateMachine`` container: the output of abstract-model execution.

Mirrors the paper's Fig 5::

    class StateMachine {
        String[] messages;
        State[] states;
        State start_state;
        State finish_state;
    }

A machine knows its message alphabet, holds states by name, and designates a
start state and (optionally) a finish state.  It is the single currency
between the abstract model (producer) and the renderers / runtime
(consumers).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Optional

from repro.core.components import StateSpace
from repro.core.errors import MachineStructureError
from repro.core.state import State, Transition


def strip_action_prefix(action: str) -> str:
    """Action name without the ``->`` send marker — the dispatch-table
    form.  The one strip implementation shared by every table builder
    (:meth:`StateMachine.dispatch_table` and
    :meth:`repro.opt.IndexedMachine.dispatch_table`)."""
    return action[2:] if action.startswith("->") else action


@dataclass(frozen=True)
class FlatDispatchTable:
    """A machine flattened to index arithmetic for batched execution.

    States and messages are assigned dense integer indices; ``entries`` is a
    flat row-major list of length ``len(state_names) * len(messages)`` where
    slot ``state_index * len(messages) + message_index`` holds either
    ``None`` (message not applicable in that state — ignored, per protocol
    semantics) or a ``(next_state_index, actions)`` pair with actions
    already stripped of their ``->`` prefix.  This is the representation
    the fleet execution plane (:mod:`repro.serve`) drains mailboxes
    against: one list lookup and one tuple unpack per event instead of a
    per-event interpreter walk.
    """

    state_names: tuple[str, ...]
    messages: tuple[str, ...]
    state_index: dict[str, int]
    message_index: dict[str, int]
    entries: tuple[Optional[tuple[int, tuple[str, ...]]], ...]
    start_index: int
    final: tuple[bool, ...]

    @property
    def width(self) -> int:
        """Number of message columns per state row."""
        return len(self.messages)

    def lookup(self, state_name: str, message: str):
        """Convenience name-based lookup (hot paths use index arithmetic).

        Raises :class:`MachineStructureError` for a state the table does
        not contain or a message outside the machine's alphabet; final
        states yield ``None`` for every message (they absorb silently).
        """
        try:
            row = self.state_index[state_name]
        except KeyError:
            raise MachineStructureError(f"unknown state {state_name!r}") from None
        try:
            col = self.message_index[message]
        except KeyError:
            raise MachineStructureError(
                f"message {message!r} is not in the alphabet {self.messages}"
            ) from None
        return self.entries[row * len(self.messages) + col]


class StateMachine:
    """A concrete finite state machine generated from an abstract model."""

    def __init__(
        self,
        messages: Sequence[str],
        space: Optional[StateSpace] = None,
        name: str = "machine",
        parameters: Optional[dict] = None,
    ):
        if not messages:
            raise MachineStructureError("a state machine needs at least one message")
        if len(set(messages)) != len(messages):
            raise MachineStructureError(f"duplicate messages: {list(messages)}")
        self._name = name
        self._messages = tuple(messages)
        self._space = space
        self._parameters = dict(parameters or {})
        self._states: dict[str, State] = {}
        self._start_name: Optional[str] = None
        self._finish_name: Optional[str] = None

    # ------------------------------------------------------------------
    # identity / metadata
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable machine name (e.g. ``commit[r=4]``)."""
        return self._name

    @property
    def messages(self) -> tuple[str, ...]:
        """The message alphabet, in declaration order."""
        return self._messages

    @property
    def space(self) -> Optional[StateSpace]:
        """The state space this machine was generated from, if any."""
        return self._space

    @property
    def parameters(self) -> dict:
        """Generation parameters (e.g. ``{"replication_factor": 4}``)."""
        return dict(self._parameters)

    # ------------------------------------------------------------------
    # states
    # ------------------------------------------------------------------

    @property
    def states(self) -> tuple[State, ...]:
        """All states, in insertion order."""
        return tuple(self._states.values())

    def state_names(self) -> tuple[str, ...]:
        """All state names, in insertion order."""
        return tuple(self._states.keys())

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, name: str) -> bool:
        return name in self._states

    def add_state(self, state: State) -> State:
        """Register a state; names must be unique."""
        if state.name in self._states:
            raise MachineStructureError(f"duplicate state name {state.name!r}")
        self._states[state.name] = state
        return state

    def get_state(self, name: str) -> State:
        """Look up a state by name."""
        try:
            return self._states[name]
        except KeyError:
            raise MachineStructureError(f"unknown state {name!r}") from None

    def remove_states(self, names: Iterable[str]) -> None:
        """Drop states (used by the pruning step)."""
        for name in names:
            self._states.pop(name, None)
        if self._start_name is not None and self._start_name not in self._states:
            raise MachineStructureError("pruning removed the start state")
        if self._finish_name is not None and self._finish_name not in self._states:
            self._finish_name = None

    # ------------------------------------------------------------------
    # start / finish
    # ------------------------------------------------------------------

    @property
    def start_state(self) -> State:
        """The designated start state."""
        if self._start_name is None:
            raise MachineStructureError("start state has not been set")
        return self._states[self._start_name]

    def set_start(self, name: str) -> None:
        """Designate the start state by name."""
        if name not in self._states:
            raise MachineStructureError(f"cannot start at unknown state {name!r}")
        self._start_name = name

    @property
    def finish_state(self) -> Optional[State]:
        """The designated finish state, or ``None`` if the machine has none."""
        if self._finish_name is None:
            return None
        return self._states[self._finish_name]

    def set_finish(self, name: Optional[str]) -> None:
        """Designate (or clear) the finish state by name."""
        if name is not None and name not in self._states:
            raise MachineStructureError(f"cannot finish at unknown state {name!r}")
        self._finish_name = name

    def final_states(self) -> tuple[State, ...]:
        """All terminal states (no outgoing transitions allowed)."""
        return tuple(s for s in self._states.values() if s.final)

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------

    def transitions(self) -> Iterable[tuple[State, Transition]]:
        """Yield every (source state, transition) pair."""
        for state in self._states.values():
            for transition in state.transitions:
                yield state, transition

    def transition_count(self) -> int:
        """Total number of transitions in the machine."""
        return sum(len(s.transitions) for s in self._states.values())

    def phase_transition_count(self) -> int:
        """Number of transitions that perform actions (paper §3.3)."""
        return sum(
            1 for _, t in self.transitions() if t.is_phase_transition()
        )

    def reachable_names(self, start: Optional[str] = None) -> set[str]:
        """Names of states reachable from ``start`` (default: start state)."""
        if start is None:
            start = self.start_state.name
        seen = {start}
        frontier = [start]
        while frontier:
            state = self._states[frontier.pop()]
            for transition in state.transitions:
                target = transition.target_name
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def prune_unreachable(self) -> int:
        """Remove every state unreachable from the start state.

        The one name-graph pruning implementation: step 3 of the eager
        generation pipeline and the eager flattening engine both call it
        (the array form for already-indexed machines is
        :class:`repro.opt.passes.PruneUnreachablePass`).  Returns the
        number of states removed.
        """
        reachable = self.reachable_names()
        doomed = [name for name in self._states if name not in reachable]
        self.remove_states(doomed)
        return len(doomed)

    def dispatch_table(self) -> FlatDispatchTable:
        """Export the machine as a :class:`FlatDispatchTable`.

        The flat form is behaviour-preserving: an event sequence replayed
        through the table visits exactly the states and performs exactly
        the actions of :class:`~repro.runtime.interp.MachineInterpreter`
        on the same machine (asserted by the fleet differential tests).
        """
        self.check_integrity()
        state_names = tuple(self._states.keys())
        state_index = {name: i for i, name in enumerate(state_names)}
        message_index = {message: i for i, message in enumerate(self._messages)}
        width = len(self._messages)
        entries: list[Optional[tuple[int, tuple[str, ...]]]] = [None] * (
            len(state_names) * width
        )
        for state in self._states.values():
            row = state_index[state.name] * width
            for transition in state.transitions:
                actions = tuple(strip_action_prefix(a) for a in transition.actions)
                entries[row + message_index[transition.message]] = (
                    state_index[transition.target_name],
                    actions,
                )
        return FlatDispatchTable(
            state_names=state_names,
            messages=self._messages,
            state_index=state_index,
            message_index=message_index,
            entries=tuple(entries),
            start_index=state_index[self.start_state.name],
            final=tuple(state.final for state in self._states.values()),
        )

    def check_integrity(self) -> None:
        """Raise if any transition dangles or a final state has outgoing edges."""
        for state in self._states.values():
            for transition in state.transitions:
                if transition.target_name not in self._states:
                    raise MachineStructureError(
                        f"transition {transition!r} from {state.name!r} targets "
                        f"unknown state {transition.target_name!r}"
                    )
                if transition.message not in self._messages:
                    raise MachineStructureError(
                        f"transition on undeclared message {transition.message!r}"
                    )
            if state.final and state.transitions:
                raise MachineStructureError(
                    f"final state {state.name!r} has outgoing transitions"
                )
        if self._start_name is None:
            raise MachineStructureError("machine has no start state")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StateMachine({self._name!r}, {len(self._states)} states, "
            f"{self.transition_count()} transitions)"
        )
