"""Core generative state-machine framework (paper §3, §5.1).

Public surface:

* :class:`~repro.core.components.StateSpace` and the component classes
  (``BooleanComponent``, ``IntComponent``, ``EnumComponent``) declare an
  abstract state space;
* :class:`~repro.core.model.AbstractModel` is subclassed per algorithm and
  executed to generate machines;
* :class:`~repro.core.machine.StateMachine`, :class:`~repro.core.state.State`
  and :class:`~repro.core.state.Transition` form the generated
  representation handed to renderers and the runtime;
* :func:`~repro.core.pipeline.generate` runs the four-step pipeline and
  reports per-step counts and timings;
* :func:`~repro.core.lazy.generate_lazy` is the frontier-based engine that
  builds the reachable set on the fly instead of enumerating the product
  space (select per call with :func:`~repro.core.pipeline.generate_with_engine`);
* :mod:`~repro.core.efsm` provides the extended-FSM representation of §5.3;
* :mod:`~repro.core.hsm` provides hierarchical machines
  (:class:`~repro.core.hsm.CompositeState` trees owned by a
  :class:`~repro.core.hsm.HierarchicalModel`) and the flattening
  pipeline that expands them into plain :class:`StateMachine` objects.
"""

from repro.core.components import (
    BooleanComponent,
    EnumComponent,
    IntComponent,
    StateComponent,
    StateSpace,
)
from repro.core.errors import (
    ComponentError,
    DeploymentError,
    InvalidStateError,
    MachineStructureError,
    ModelDefinitionError,
    RenderError,
    ReproError,
    SimulationError,
)
from repro.core.hsm import (
    CompositeState,
    FlattenReport,
    HierarchicalModel,
    HierarchicalSimulator,
    HsmTransition,
    LeafState,
)
from repro.core.lazy import generate_lazy
from repro.core.machine import StateMachine
from repro.core.minimize import (
    FINISH_NAME,
    equivalence_classes,
    merge_equivalent,
    one_shot_merge,
)
from repro.core.model import AbstractModel, StateView, TransitionBuilder
from repro.core.pipeline import (
    ENGINES,
    GenerationReport,
    generate,
    generate_with_engine,
)
from repro.core.state import State, Transition
from repro.core.trace import (
    Trace,
    TraceRecorder,
    TraceStep,
    enumerate_traces,
    replay,
)

__all__ = [
    "AbstractModel",
    "BooleanComponent",
    "ComponentError",
    "CompositeState",
    "DeploymentError",
    "ENGINES",
    "EnumComponent",
    "FINISH_NAME",
    "FlattenReport",
    "GenerationReport",
    "HierarchicalModel",
    "HierarchicalSimulator",
    "HsmTransition",
    "LeafState",
    "IntComponent",
    "InvalidStateError",
    "MachineStructureError",
    "ModelDefinitionError",
    "RenderError",
    "ReproError",
    "SimulationError",
    "State",
    "StateComponent",
    "StateMachine",
    "StateSpace",
    "StateView",
    "Trace",
    "TraceRecorder",
    "TraceStep",
    "Transition",
    "TransitionBuilder",
    "equivalence_classes",
    "enumerate_traces",
    "generate",
    "generate_lazy",
    "generate_with_engine",
    "replay",
    "merge_equivalent",
    "one_shot_merge",
]
