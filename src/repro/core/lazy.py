"""Lazy frontier-based generation engine: on-the-fly reachable-set construction.

The eager pipeline (:mod:`repro.core.pipeline`) follows the paper's §3.4
literally: enumerate the full component product space (``2^5 r^2`` states
for the commit model), attach transitions everywhere, then prune the vast
unreachable majority.  That is faithful but asymptotically wasteful — at
r=4 only 48 of 512 states survive pruning, and the ratio worsens
quadratically with the replication factor, capping the parameter range
that can be explored.

``generate_lazy(model)`` instead starts from the model's start state and
expands **only reachable states** via a BFS worklist:

1. seed the frontier with the start vector;
2. pop a vector, elaborate its successors on demand
   (:meth:`~repro.core.model.AbstractModel.successors` — the same
   per-message transition logic the eager engine uses, so the two engines
   cannot diverge semantically);
3. intern each target vector on the model's state space
   (:meth:`~repro.core.components.StateSpace.intern`) so every state is
   discovered exactly once regardless of fan-in, and push unseen targets;
4. when the frontier drains, every state in the machine is reachable by
   construction — the pipeline's ``initial -> reachable`` pruning step
   disappears entirely — and the standard bisimulation quotient
   (:func:`~repro.core.minimize.merge_equivalent`) finishes the job.

Work and memory are proportional to the *reachable* state count (roughly
linear in ``r`` for the commit family) instead of the product-space size
(quadratic in ``r``), which opens replication factors far beyond what the
eager engine can touch.  The returned machine is isomorphic to the eager
result with identical merged state counts; the
:class:`~repro.core.pipeline.GenerationReport` records ``engine="lazy"``
and the peak frontier size actually observed.
"""

from __future__ import annotations

import time
from collections import deque

from repro.core.machine import StateMachine
from repro.core.minimize import merge_equivalent
from repro.core.model import AbstractModel, StateView
from repro.core.pipeline import GenerationReport, _annotate_states, _designate_finish
from repro.core.state import State, Transition


def generate_lazy(
    model: AbstractModel, *, merge: bool = True
) -> tuple[StateMachine, GenerationReport]:
    """Generate ``model``'s machine by frontier expansion from the start state.

    Drop-in replacement for :func:`repro.core.pipeline.generate`: returns
    the same ``(StateMachine, GenerationReport)`` pair, with the report's
    ``initial_states`` computed arithmetically (the product space is never
    materialised), ``engine`` set to ``"lazy"`` and ``frontier_peak``
    recording the worklist's high-water mark.  ``merge`` switches the
    bisimulation quotient off for inspection of the raw reachable machine.
    """
    report = GenerationReport(model.machine_name(), model.parameters, engine="lazy")
    space = model.space
    report.initial_states = space.size()

    started = time.perf_counter()
    machine = StateMachine(
        model.messages,
        space=space,
        name=model.machine_name(),
        parameters=model.parameters,
    )

    def discover(vector: tuple) -> State:
        final = model.is_final(StateView(space, vector))
        return machine.add_state(
            State(space.vector_name(vector), vector=vector, final=final)
        )

    start_vector = space.intern(model.start_vector())
    discover(start_vector)
    machine.set_start(space.vector_name(start_vector))

    frontier: deque[tuple] = deque([start_vector])
    seen: set[tuple] = {start_vector}
    frontier_peak = 1

    while frontier:
        if len(frontier) > frontier_peak:
            frontier_peak = len(frontier)
        vector = frontier.popleft()
        state = machine.get_state(space.vector_name(vector))
        if state.final:
            continue  # terminal: the algorithm has completed here
        for message, builder in model.successors(vector):
            target = space.intern(builder.vector)
            if target not in seen:
                seen.add(target)
                discover(target)
                frontier.append(target)
            state.record_transition(
                Transition(
                    message,
                    space.vector_name(target),
                    builder.actions,
                    builder.recorded_annotations,
                )
            )

    report.reachable_states = len(machine)
    report.transition_count = machine.transition_count()
    report.frontier_peak = frontier_peak
    report.timings["explore"] = time.perf_counter() - started

    _designate_finish(machine)
    _annotate_states(model, machine)

    if merge:
        started = time.perf_counter()
        machine = merge_equivalent(machine)
        report.timings["merge"] = time.perf_counter() - started
    report.merged_states = len(machine)

    machine.check_integrity()
    return machine, report
