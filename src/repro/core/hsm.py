"""Hierarchical state machines and the flattening pipeline.

The generative pipeline of the paper produces *flat* machines, but real
protocol designs are hierarchical: a "Connected" super-state with nested
authentication and activity regions, a retry loop wrapped around a whole
connection attempt, an "abort from anywhere inside the protocol" escape
hatch.  Following the standard bridge surveyed by Devroey et al. (*State
Machine Flattening: Mapping Study and Assessment*), this module adds a
structure-first authoring layer — :class:`CompositeState` trees owned by a
:class:`HierarchicalModel` — and a ``flatten()`` pipeline that expands the
hierarchy into a plain :class:`~repro.core.machine.StateMachine`.  The
flat result passes ``check_integrity()`` and runs unchanged on every
downstream subsystem: the interpreter, the compiled backend, and the
fleet execution plane.

Semantics (UML-style, external transitions, deterministic):

* A model is a tree of uniquely named nodes: :class:`CompositeState`
  groups with a designated initial child, and :class:`LeafState` atoms.
  The *flat name* of a leaf is its dot-joined path below the root, e.g.
  ``Connected.Auth.AwaitChallenge``.
* Transitions may be declared on leaves **and** on composites.  A
  transition on a composite is *inherited* by every descendant leaf;
  resolution is inner-first, so a deeper state handling the same message
  overrides its ancestors.
* Targeting a composite performs *entry dispatch*: the configuration
  descends through initial children to a leaf.
* Every transition is *external*.  Firing a transition owned by node
  ``S`` from current leaf ``L`` to target ``T`` exits from ``L`` up to
  (exclusive) the least common proper ancestor of ``S`` and ``T``
  (performing exit actions innermost-first), then performs the
  transition's own actions, then enters down to the initial leaf of
  ``T`` (entry actions outermost-first).  A self-transition on a
  composite therefore exits and re-enters it — the canonical "retry the
  whole region" idiom.
* A ``final`` leaf absorbs every message (flat final states have no
  outgoing transitions), and startup enters the initial configuration
  without performing entry actions — both mirror flat-machine semantics
  so that direct hierarchical execution and the flattened machine are
  trace-identical.

Two flattening engines mirror the generation engines of
:mod:`repro.core.pipeline`: ``eager`` materialises every leaf and then
prunes the unreachable ones; ``lazy`` expands only leaves reachable from
the initial configuration via a BFS frontier.  Both produce machines
with identical reachable behaviour.

:class:`HierarchicalSimulator` executes the hierarchy *directly* —
same ``receive``/``get_state``/``is_finished``/``sent``/``reset``
protocol as :class:`~repro.runtime.interp.MachineInterpreter` — and is
the oracle the differential tests replay against flattened machines on
both backends, both flatten engines, and both fleet dispatch modes.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import (
    DeploymentError,
    MachineStructureError,
    ModelDefinitionError,
)
from repro.core.machine import StateMachine
from repro.core.pipeline import ENGINES
from repro.core.state import State, Transition

#: Separator between path segments in flattened state names.  Chosen to be
#: distinct from the ``/`` used inside generated commit-state names so the
#: embedded hierarchical commit model keeps its native leaf names readable.
PATH_SEPARATOR = "."


class HsmTransition:
    """A transition declared on a hierarchy node.

    ``target`` names any node in the tree (leaf or composite); ``actions``
    keep the raw ``->``-prefixed form used throughout the toolchain.
    """

    __slots__ = ("message", "target", "actions", "annotations")

    def __init__(
        self,
        message: str,
        target: str,
        actions: Sequence[str] = (),
        annotations: Sequence[str] = (),
    ):
        self.message = message
        self.target = target
        self.actions = tuple(actions)
        self.annotations = tuple(annotations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        arrow = ", ".join(self.actions) or "-"
        return f"HsmTransition({self.message} [{arrow}] -> {self.target})"


class _Node:
    """Shared behaviour of hierarchy nodes (composite groups and leaves)."""

    def __init__(
        self,
        name: str,
        parent: Optional["CompositeState"],
        entry: Sequence[str] = (),
        exit: Sequence[str] = (),
        annotations: Sequence[str] = (),
    ):
        if not name:
            raise ModelDefinitionError("hierarchy nodes need a non-empty name")
        if PATH_SEPARATOR in name:
            raise ModelDefinitionError(
                f"node name {name!r} may not contain the path separator "
                f"{PATH_SEPARATOR!r}"
            )
        self.name = name
        self.parent = parent
        self.entry_actions = tuple(entry)
        self.exit_actions = tuple(exit)
        self.annotations = tuple(annotations)
        self.transitions: dict[str, HsmTransition] = {}

    def on(
        self,
        message: str,
        target: str,
        actions: Sequence[str] = (),
        annotations: Sequence[str] = (),
    ) -> HsmTransition:
        """Declare a transition on this node; at most one per message."""
        if message in self.transitions:
            raise ModelDefinitionError(
                f"node {self.name!r} already handles message {message!r}"
            )
        transition = HsmTransition(message, target, actions, annotations)
        self.transitions[message] = transition
        return transition

    def path(self) -> list["_Node"]:
        """Nodes from the root down to (and including) this node."""
        chain: list[_Node] = []
        node: Optional[_Node] = self
        while node is not None:
            chain.append(node)
            node = node.parent
        chain.reverse()
        return chain

    def flat_name(self) -> str:
        """Dot-joined path below the root: the flattened state name."""
        return PATH_SEPARATOR.join(node.name for node in self.path()[1:])

    def depth(self) -> int:
        """Nesting depth below the root (root children are at depth 1)."""
        return len(self.path()) - 1


class LeafState(_Node):
    """An atomic state of the hierarchy.

    ``final`` leaves terminate the machine: they declare no transitions
    and absorb every message, exactly like a flat final state.
    """

    def __init__(
        self,
        name: str,
        parent: Optional["CompositeState"],
        final: bool = False,
        entry: Sequence[str] = (),
        exit: Sequence[str] = (),
        annotations: Sequence[str] = (),
    ):
        super().__init__(name, parent, entry=entry, exit=exit, annotations=annotations)
        self.final = final

    def on(self, message, target, actions=(), annotations=()):
        if self.final:
            raise ModelDefinitionError(
                f"final leaf {self.name!r} cannot declare transitions"
            )
        return super().on(message, target, actions, annotations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "final " if self.final else ""
        return f"LeafState({kind}{self.name!r})"


class CompositeState(_Node):
    """A named region containing child states (leaves or nested regions).

    Children are kept in declaration order; the *initial* child — the
    entry-dispatch target when the composite itself is entered — defaults
    to the first child and can be overridden with ``initial=True``.
    """

    def __init__(
        self,
        name: str,
        parent: Optional["CompositeState"] = None,
        entry: Sequence[str] = (),
        exit: Sequence[str] = (),
        annotations: Sequence[str] = (),
    ):
        super().__init__(name, parent, entry=entry, exit=exit, annotations=annotations)
        self.children: dict[str, _Node] = {}
        self._initial_name: Optional[str] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _adopt(self, child: _Node, initial: bool) -> _Node:
        if child.name in self.children:
            raise ModelDefinitionError(
                f"composite {self.name!r} already has a child {child.name!r}"
            )
        self.children[child.name] = child
        if initial:
            if self._initial_name is not None:
                raise ModelDefinitionError(
                    f"composite {self.name!r} already has initial child "
                    f"{self._initial_name!r}"
                )
            self._initial_name = child.name
        return child

    def leaf(
        self,
        name: str,
        *,
        initial: bool = False,
        final: bool = False,
        entry: Sequence[str] = (),
        exit: Sequence[str] = (),
        annotations: Sequence[str] = (),
    ) -> LeafState:
        """Add (and return) a leaf child."""
        return self._adopt(
            LeafState(
                name, self, final=final, entry=entry, exit=exit, annotations=annotations
            ),
            initial,
        )

    def composite(
        self,
        name: str,
        *,
        initial: bool = False,
        entry: Sequence[str] = (),
        exit: Sequence[str] = (),
        annotations: Sequence[str] = (),
    ) -> "CompositeState":
        """Add (and return) a nested composite child."""
        return self._adopt(
            CompositeState(name, self, entry=entry, exit=exit, annotations=annotations),
            initial,
        )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    @property
    def initial_child(self) -> _Node:
        """The entry-dispatch child (explicitly marked, or the first one)."""
        if not self.children:
            raise ModelDefinitionError(f"composite {self.name!r} has no children")
        if self._initial_name is not None:
            return self.children[self._initial_name]
        return next(iter(self.children.values()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompositeState({self.name!r}, {len(self.children)} children)"


@dataclass
class FlattenReport:
    """Counts and timings from one run of the flattening pipeline.

    The blow-up factors quantify what the mapping-study literature calls
    the *cost of flattening*: an inherited transition declared once on a
    composite is copied into every descendant leaf, so
    ``transition_blowup`` is typically well above 1; state counts can
    only shrink (pruning), so ``state_blowup`` is at most 1 relative to
    the leaf population.
    """

    model_name: str
    engine: str
    composite_count: int = 0
    leaf_count: int = 0
    max_depth: int = 0
    declared_transitions: int = 0
    expanded_states: int = 0
    expanded_transitions: int = 0
    inherited_expansions: int = 0
    flat_states: int = 0
    flat_transitions: int = 0
    timings: dict[str, float] = field(default_factory=dict)
    #: Post-flatten optimization results (``flatten(optimize=...)``):
    #: state/transition counts after the pipeline ran, and the
    #: :class:`repro.opt.PassReport` with the per-pass deltas.  Zero /
    #: ``None`` when no pipeline ran.
    opt_states: int = 0
    opt_transitions: int = 0
    opt_report: object = None

    @property
    def total_time(self) -> float:
        """Total flattening wall-clock time in seconds."""
        return sum(self.timings.values())

    @property
    def state_blowup(self) -> float:
        """Flat states per declared leaf (pruning makes this <= 1)."""
        return self.flat_states / self.leaf_count if self.leaf_count else 0.0

    @property
    def transition_blowup(self) -> float:
        """Flat transitions per declared transition (inheritance copies)."""
        if not self.declared_transitions:
            return 0.0
        return self.flat_transitions / self.declared_transitions

    @property
    def recovered_states(self) -> int:
        """States the post-flatten optimizer clawed back (0 when it didn't run)."""
        if self.opt_report is None:
            return 0
        return self.flat_states - self.opt_states

    def __str__(self) -> str:
        return (
            f"{self.model_name} [{self.engine}]: {self.composite_count} groups + "
            f"{self.leaf_count} leaves (depth {self.max_depth}), "
            f"{self.declared_transitions} declared transitions -> "
            f"{self.flat_states} states / {self.flat_transitions} transitions "
            f"(x{self.transition_blowup:.2f} transition blow-up, "
            f"{self.total_time * 1000:.1f}ms)"
        )


class HierarchicalModel:
    """A hierarchical state-machine design that flattens into a
    :class:`~repro.core.machine.StateMachine`.

    ``messages`` fixes the alphabet (and its declaration order); when
    omitted, the alphabet is collected from the tree in declaration
    order.  ``parameters`` travel onto the flattened machine, so the
    compiled-backend cache and reporting see hierarchical machines
    exactly like generated ones.
    """

    def __init__(
        self,
        name: str,
        messages: Optional[Sequence[str]] = None,
        parameters: Optional[dict] = None,
    ):
        self.name = name
        self.root = CompositeState(name)
        self._messages = tuple(messages) if messages is not None else None
        self.parameters = dict(parameters or {})
        self._finish_name: Optional[str] = None
        # Name -> node lookup cache, built by validate().  Nodes are only
        # ever added (no removal/rename API), so a cached entry can never
        # go stale; find() falls back to a tree walk for names added
        # after the last validation.
        self._index: Optional[dict[str, _Node]] = None

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------

    def nodes(self) -> list[_Node]:
        """Every node in declaration (depth-first) order, root first."""
        ordered: list[_Node] = []
        stack: list[_Node] = [self.root]
        while stack:
            node = stack.pop()
            ordered.append(node)
            if isinstance(node, CompositeState):
                stack.extend(reversed(list(node.children.values())))
        return ordered

    def leaves(self) -> list[LeafState]:
        """Every leaf in declaration order."""
        return [node for node in self.nodes() if isinstance(node, LeafState)]

    def find(self, name: str) -> _Node:
        """Look up a node by its (tree-unique) name."""
        if self._index is not None:
            node = self._index.get(name)
            if node is not None:
                return node
        for node in self.nodes():
            if node.name == name:
                return node
        raise ModelDefinitionError(f"unknown hierarchy node {name!r}")

    def set_finish(self, name: str) -> None:
        """Designate the finish leaf of the flattened machine."""
        self._finish_name = name

    @property
    def finish_name(self) -> Optional[str]:
        """The designated finish leaf's name, if any."""
        return self._finish_name

    def messages(self) -> tuple[str, ...]:
        """The message alphabet, explicit or collected in declaration order."""
        if self._messages is not None:
            return self._messages
        collected: list[str] = []
        for node in self.nodes():
            for message in node.transitions:
                if message not in collected:
                    collected.append(message)
        return tuple(collected)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ModelDefinitionError` on structural problems."""
        nodes = self.nodes()
        names: dict[str, _Node] = {}
        for node in nodes:
            if node.name in names:
                raise ModelDefinitionError(
                    f"duplicate node name {node.name!r} in hierarchy {self.name!r}"
                )
            names[node.name] = node
        if not self.root.children:
            raise ModelDefinitionError(f"hierarchy {self.name!r} has no states")
        alphabet = self.messages()
        if len(set(alphabet)) != len(alphabet):
            raise ModelDefinitionError(f"duplicate messages: {list(alphabet)}")
        for node in nodes:
            if isinstance(node, CompositeState) and node is not self.root:
                if not node.children:
                    raise ModelDefinitionError(
                        f"composite {node.name!r} has no children"
                    )
            for message, transition in node.transitions.items():
                if message not in alphabet:
                    raise ModelDefinitionError(
                        f"transition on undeclared message {message!r} "
                        f"(node {node.name!r})"
                    )
                if transition.target not in names:
                    raise ModelDefinitionError(
                        f"transition {message!r} on node {node.name!r} targets "
                        f"unknown node {transition.target!r}"
                    )
        if self._finish_name is not None:
            finish = names.get(self._finish_name)
            if not isinstance(finish, LeafState) or not finish.final:
                raise ModelDefinitionError(
                    f"finish node {self._finish_name!r} must be a final leaf"
                )
        self._index = names

    # ------------------------------------------------------------------
    # shared semantics (used by flatten() and the simulator)
    # ------------------------------------------------------------------

    def initial_leaf(self, node: Optional[_Node] = None) -> LeafState:
        """Entry-dispatch: descend through initial children to a leaf."""
        current = node if node is not None else self.root
        while isinstance(current, CompositeState):
            current = current.initial_child
        assert isinstance(current, LeafState)
        return current

    def effective_transitions(
        self, leaf: LeafState
    ) -> dict[str, tuple[_Node, HsmTransition]]:
        """The leaf's handler map: message -> (owning node, transition).

        Resolution is inner-first — the leaf's own transitions override
        its parent's, which override the grandparent's, and so on up to
        the root.  Final leaves handle nothing.  The map iterates in
        alphabet order, which fixes the flat machine's transition order.
        """
        if leaf.final:
            return {}
        handlers: dict[str, tuple[_Node, HsmTransition]] = {}
        node: Optional[_Node] = leaf
        while node is not None:
            for message, transition in node.transitions.items():
                if message not in handlers:
                    handlers[message] = (node, transition)
            node = node.parent
        return {
            message: handlers[message]
            for message in self.messages()
            if message in handlers
        }

    def fire(
        self, source_leaf: LeafState, owner: _Node, transition: HsmTransition
    ) -> tuple[LeafState, tuple[str, ...]]:
        """Resolve one transition firing: target leaf and full action list.

        The action list is exit actions (from ``source_leaf`` up to, but
        not including, the least common proper ancestor of ``owner`` and
        the target — innermost first), then the transition's own actions,
        then entry actions (down to the target's initial leaf — outermost
        first).  Raw ``->`` prefixes are preserved; executors strip them.
        """
        target_node = self.find(transition.target)
        boundary = _least_common_proper_ancestor(owner, target_node)
        actions: list[str] = []
        node: Optional[_Node] = source_leaf
        while node is not None and node is not boundary:
            actions.extend(node.exit_actions)
            node = node.parent
        actions.extend(transition.actions)
        entry_chain = target_node.path()
        if boundary is not None:
            entry_chain = entry_chain[entry_chain.index(boundary) + 1 :]
        for node in entry_chain:
            actions.extend(node.entry_actions)
        entry_leaf = self.initial_leaf(target_node)
        for node in entry_leaf.path()[len(target_node.path()) :]:
            actions.extend(node.entry_actions)
        return entry_leaf, tuple(actions)

    # ------------------------------------------------------------------
    # flattening
    # ------------------------------------------------------------------

    def flatten(self, engine: str = "eager", optimize=None) -> StateMachine:
        """Expand the hierarchy into a flat machine (see module docs).

        ``optimize`` optionally runs a :class:`repro.opt.PassPipeline`
        (or a level / pass-list spec) over the flattened machine — the
        hook that recovers the state blow-up flattening produces.
        """
        machine, _ = self.flatten_with_report(engine, optimize=optimize)
        return machine

    def flatten_with_report(
        self, engine: str = "eager", optimize=None
    ) -> tuple[StateMachine, FlattenReport]:
        """Flatten and report blow-up statistics for the chosen engine."""
        if engine not in ENGINES:
            raise ModelDefinitionError(
                f"unknown flatten engine {engine!r}; choose from {ENGINES}"
            )
        self.validate()
        leaves = self.leaves()
        composites = [n for n in self.nodes() if isinstance(n, CompositeState)]
        report = FlattenReport(
            model_name=self.name,
            engine=engine,
            composite_count=len(composites),
            leaf_count=len(leaves),
            max_depth=max(leaf.depth() for leaf in leaves),
            declared_transitions=sum(len(n.transitions) for n in self.nodes()),
        )
        machine = StateMachine(
            self.messages(),
            name=self.name,
            parameters=dict(self.parameters),
        )
        if engine == "eager":
            self._flatten_eager(machine, leaves, report)
        else:
            self._flatten_lazy(machine, report)
        report.flat_states = len(machine)
        report.flat_transitions = machine.transition_count()
        finish = self._finish_flat_name(machine)
        if finish is not None:
            machine.set_finish(finish)
        machine.check_integrity()
        if optimize is not None:
            from repro.core.pipeline import _run_optimizer

            machine, report.opt_report = _run_optimizer(machine, optimize)
            if report.opt_report is not None:
                report.opt_states = len(machine)
                report.opt_transitions = machine.transition_count()
                report.timings["optimize"] = report.opt_report.total_time
        return machine, report

    def _add_flat_state(self, machine: StateMachine, leaf: LeafState) -> State:
        """Materialise one leaf as a flat state, with hierarchy commentary."""
        path = " > ".join(node.name for node in leaf.path()[1:])
        annotations = [f"Hierarchical leaf: {path}."]
        annotations.extend(leaf.annotations)
        return machine.add_state(
            State(leaf.flat_name(), annotations=annotations, final=leaf.final)
        )

    def _flat_transitions_of(
        self, leaf: LeafState
    ) -> list[tuple[str, LeafState, tuple[str, ...], tuple[str, ...], bool]]:
        """Every flat transition out of a leaf, in alphabet order.

        Yields ``(message, target leaf, actions, annotations, inherited)``.
        """
        rows = []
        for message, (owner, transition) in self.effective_transitions(leaf).items():
            target_leaf, actions = self.fire(leaf, owner, transition)
            annotations = list(transition.annotations)
            inherited = owner is not leaf
            if inherited:
                annotations.append(f"Inherited from enclosing state {owner.name!r}.")
            rows.append((message, target_leaf, actions, tuple(annotations), inherited))
        return rows

    def _flatten_eager(self, machine, leaves, report) -> None:
        """Materialise every leaf, then prune the unreachable ones."""
        started = time.perf_counter()
        for leaf in leaves:
            self._add_flat_state(machine, leaf)
        inherited_count = 0
        for leaf in leaves:
            state = machine.get_state(leaf.flat_name())
            for message, target, actions, annotations, inherited in (
                self._flat_transitions_of(leaf)
            ):
                state.record_transition(
                    Transition(message, target.flat_name(), actions, annotations)
                )
                inherited_count += inherited
        machine.set_start(self.initial_leaf().flat_name())
        report.expanded_states = len(machine)
        report.expanded_transitions = machine.transition_count()
        report.inherited_expansions = inherited_count
        report.timings["expand"] = time.perf_counter() - started

        started = time.perf_counter()
        machine.prune_unreachable()
        report.timings["prune"] = time.perf_counter() - started

    def _flatten_lazy(self, machine, report) -> None:
        """Expand only leaves reachable from the initial configuration."""
        started = time.perf_counter()
        start_leaf = self.initial_leaf()
        self._add_flat_state(machine, start_leaf)
        machine.set_start(start_leaf.flat_name())
        frontier: deque[LeafState] = deque([start_leaf])
        seen = {start_leaf.flat_name()}
        inherited_count = 0
        frontier_peak = 1
        while frontier:
            frontier_peak = max(frontier_peak, len(frontier))
            leaf = frontier.popleft()
            state = machine.get_state(leaf.flat_name())
            for message, target, actions, annotations, inherited in (
                self._flat_transitions_of(leaf)
            ):
                flat_target = target.flat_name()
                if flat_target not in seen:
                    seen.add(flat_target)
                    self._add_flat_state(machine, target)
                    frontier.append(target)
                state.record_transition(
                    Transition(message, flat_target, actions, annotations)
                )
                inherited_count += inherited
        report.expanded_states = len(machine)
        report.expanded_transitions = machine.transition_count()
        report.inherited_expansions = inherited_count
        report.timings["expand"] = time.perf_counter() - started

    def _finish_flat_name(self, machine: StateMachine) -> Optional[str]:
        """The finish state of the flat machine, when unambiguous."""
        if self._finish_name is not None:
            flat = self.find(self._finish_name).flat_name()
            return flat if flat in machine else None
        finals = machine.final_states()
        if len(finals) == 1:
            return finals[0].name
        return None

    # ------------------------------------------------------------------
    # direct execution
    # ------------------------------------------------------------------

    def simulator(
        self,
        sink: Optional[Callable[[str], None]] = None,
        validate: bool = True,
    ) -> "HierarchicalSimulator":
        """A :class:`HierarchicalSimulator` over this (validated) model.

        ``validate=False`` skips the structural walk — for callers that
        spawn many simulators over one already-validated model, exactly
        like ``MachineInterpreter(machine, validate=False)``.
        """
        return HierarchicalSimulator(self, sink=sink, validate=validate)


def _least_common_proper_ancestor(a: _Node, b: _Node) -> Optional[_Node]:
    """Deepest node that strictly contains both ``a`` and ``b``.

    ``None`` when no proper common ancestor exists (one of the nodes is
    the root, or a self-transition on a root child): the firing then
    exits and re-enters the whole tree, root entry/exit actions included.
    """
    ancestors_a = a.path()[:-1]
    ancestors_b = set(id(node) for node in b.path()[:-1])
    for node in reversed(ancestors_a):
        if id(node) in ancestors_b:
            return node
    return None


class HierarchicalSimulator:
    """Execute a hierarchical model directly, without flattening.

    Exposes the common executor protocol (``receive`` / ``get_state`` /
    ``set_state`` / ``is_finished`` / ``sent`` / ``reset`` / ``run``), so
    it can stand wherever a :class:`~repro.runtime.interp.MachineInterpreter`
    does.  ``get_state`` reports the *flat* name of the current leaf,
    which is what makes traces directly comparable against flattened
    machines.
    """

    def __init__(
        self,
        model: HierarchicalModel,
        sink: Optional[Callable[[str], None]] = None,
        validate: bool = True,
    ):
        """``validate=False`` skips the structural walk — for callers
        that spawn many simulators over one already-validated model."""
        if validate:
            model.validate()
        self._model = model
        self._alphabet = frozenset(model.messages())
        self._leaf = model.initial_leaf()
        self._handlers: dict[str, dict[str, tuple[_Node, HsmTransition]]] = {}
        self._sink = sink
        self.sent: list[str] = []

    @property
    def model(self) -> HierarchicalModel:
        """The hierarchical model being executed."""
        return self._model

    def get_state(self) -> str:
        """Flat name of the current leaf."""
        return self._leaf.flat_name()

    def set_state(self, flat_name: str) -> None:
        """Force the configuration to a named leaf (no entry actions)."""
        for leaf in self._model.leaves():
            if leaf.flat_name() == flat_name:
                self._leaf = leaf
                return
        raise MachineStructureError(f"unknown state {flat_name!r}")

    def is_finished(self) -> bool:
        """Whether the configuration rests in a final leaf."""
        return self._leaf.final

    def receive(self, message: str) -> bool:
        """Process one message; returns whether a transition fired.

        Messages with no handler in the current configuration (or any
        message in a final leaf) are ignored, mirroring flat semantics.
        """
        if message not in self._alphabet:
            raise DeploymentError(f"unknown message {message!r}")
        leaf = self._leaf
        handlers = self._handlers.get(leaf.name)
        if handlers is None:
            handlers = self._model.effective_transitions(leaf)
            self._handlers[leaf.name] = handlers
        resolved = handlers.get(message)
        if resolved is None:
            return False
        owner, transition = resolved
        target_leaf, actions = self._model.fire(leaf, owner, transition)
        for action in actions:
            name = action[2:] if action.startswith("->") else action
            self.sent.append(name)
            if self._sink is not None:
                self._sink(name)
        self._leaf = target_leaf
        return True

    def run(self, messages: Sequence[str]) -> list[str]:
        """Feed a message sequence; returns the actions it performed."""
        before = len(self.sent)
        for message in messages:
            self.receive(message)
        return self.sent[before:]

    def reset(self) -> None:
        """Return to the initial configuration and clear the action log."""
        self._leaf = self._model.initial_leaf()
        self.sent.clear()
