"""Step 4 of the generation process: combining equivalent states.

The paper (§3.4, Fig 13) merges sets of states that are equivalent "in the
sense that the outgoing transitions from each perform the same actions and
lead to the same destination state".  Applied once, that collapses only
states with literally identical successors; applied to a fixpoint it
computes the bisimulation quotient of the machine.  We implement both:

* :func:`one_shot_merge` — the literal single pass, kept for ablation;
* :func:`equivalence_classes` / :func:`merge_equivalent` — Moore-style
  partition refinement, which is the fixpoint of the single pass and is the
  variant whose output matches the paper's published Table 1 counts.

Merged states keep the name of a canonical representative (the first member
in the original machine's insertion order); all reachable final states merge
into a single state named :data:`FINISH_NAME`, which becomes the machine's
``finish_state`` (paper Fig 5).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.machine import StateMachine
from repro.core.state import State, Transition

#: Name given to the merged terminal state (the machine's finish state).
FINISH_NAME = "FINISHED"


def equivalence_classes(machine: StateMachine) -> list[list[State]]:
    """Partition the machine's states into behavioural equivalence classes.

    Two states are equivalent iff they agree on finality and, for every
    message, either both lack a transition or both have transitions with
    identical action sequences leading to equivalent states.  Computed by
    iterated partition refinement (Moore's algorithm).
    """
    states = list(machine.states)
    cls: dict[str, int] = {s.name: (1 if s.final else 0) for s in states}

    while True:
        signatures: dict[str, tuple] = {}
        for state in states:
            outgoing = tuple(
                (message, t.actions, cls[t.target_name])
                for message in machine.messages
                if (t := state.get_transition(message)) is not None
            )
            signatures[state.name] = (cls[state.name], outgoing)

        renumber: dict[tuple, int] = {}
        refined: dict[str, int] = {}
        for state in states:
            signature = signatures[state.name]
            if signature not in renumber:
                renumber[signature] = len(renumber)
            refined[state.name] = renumber[signature]

        if refined == cls:
            break
        cls = refined

    groups: dict[int, list[State]] = {}
    for state in states:
        groups.setdefault(cls[state.name], []).append(state)
    return list(groups.values())


def merge_equivalent(machine: StateMachine) -> StateMachine:
    """Return a new machine with each equivalence class collapsed to one state."""
    classes = equivalence_classes(machine)
    return _quotient(machine, classes)


def one_shot_merge(machine: StateMachine) -> StateMachine:
    """A single merging pass, as the paper's prose literally describes.

    States are combined only when their outgoing transitions have identical
    (message, actions, destination *name*) signatures.  One pass may leave
    further merges possible; iterating this operation until it stabilises
    yields the same machine as :func:`merge_equivalent`.
    """
    groups: dict[tuple, list[State]] = {}
    for state in machine.states:
        key = (state.final, state.transition_signature())
        groups.setdefault(key, []).append(state)
    return _quotient(machine, list(groups.values()))


def _quotient(machine: StateMachine, classes: Iterable[list[State]]) -> StateMachine:
    """Build the quotient machine for a given partition of states."""
    class_list = [list(group) for group in classes]

    representative: dict[str, str] = {}
    for group in class_list:
        name = _class_name(group)
        for member in group:
            representative[member.name] = name

    merged = StateMachine(
        machine.messages,
        space=machine.space,
        name=machine.name,
        parameters=machine.parameters,
    )

    # Preserve the original insertion order of representatives.
    seen: set[str] = set()
    ordered_groups: list[list[State]] = []
    rep_of_group = {id(group): _class_name(group) for group in class_list}
    by_rep = {rep_of_group[id(group)]: group for group in class_list}
    for state in machine.states:
        rep = representative[state.name]
        if rep not in seen:
            seen.add(rep)
            ordered_groups.append(by_rep[rep])

    finish_name: str | None = None
    for group in ordered_groups:
        leader = group[0]
        name = representative[leader.name]
        new_state = State(
            name,
            vector=leader.vector,
            annotations=leader.annotations,
            final=leader.final,
        )
        new_state.set_merged_names(sorted(member.name for member in group))
        if len(group) > 1:
            new_state.annotate(
                f"Represents {len(group)} equivalent states: "
                + ", ".join(sorted(member.name for member in group))
            )
        merged.add_state(new_state)
        if leader.final and finish_name is None:
            finish_name = name

    for group in ordered_groups:
        leader = group[0]
        target_state = merged.get_state(representative[leader.name])
        if leader.final:
            continue
        rewritten = []
        for transition in leader.transitions:
            rewritten.append(
                Transition(
                    transition.message,
                    representative[transition.target_name],
                    transition.actions,
                    transition.annotations,
                )
            )
        target_state.replace_transitions(rewritten)

    merged.set_start(representative[machine.start_state.name])
    if finish_name is not None:
        merged.set_finish(finish_name)
    merged.check_integrity()
    return merged


def _class_name(group: list[State]) -> str:
    """Name for a merged class: FINISHED for final classes, else the leader."""
    if len(group) > 1 and all(member.final for member in group):
        return FINISH_NAME
    return group[0].name
