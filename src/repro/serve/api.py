"""The unified fleet surface: one protocol, one factory, two engines.

PRs 2–7 grew the serve plane around one concrete class —
:class:`~repro.serve.fleet.FleetEngine` — and its accreted method
surface (``run``/``run_encoded``/``run_encoded_flat``, ad-hoc snapshot
types).  A second engine cannot sanely implement that surface, so this
module is the redesign that makes the process-parallel fleet
(:mod:`repro.serve.mpfleet`) possible:

* :class:`Fleet` — the structural protocol both engines satisfy.
  Everything layered on the serve plane (the differential harness, the
  scenario engine, the load generators, the gateway, the CLI) targets
  this protocol, never a concrete class.
* :func:`make_fleet` — the one keyword surface that builds either
  implementation: ``workers=None`` (default) yields the in-process
  :class:`~repro.serve.fleet.FleetEngine`; ``workers=N`` yields a
  :class:`~repro.serve.mpfleet.MultiprocessFleet` with ``N`` worker
  processes.

The protocol's guarantees (what a caller may rely on from *any* fleet):

* **One dispatch entry point.**  ``run(events, encoding=...)`` accepts
  ``(key, message)`` string batches (``"events"``), pre-interned
  schedules from ``encode`` (``"pairs"``), flat int buffers from
  ``encode_flat`` (``"flat"``), or sniffs the batch (``"auto"``).
  Encoded schedules are fleet-specific — encode against the fleet that
  will run the schedule.
* **One error shape.**  Unknown instances and messages raise
  :class:`~repro.core.errors.DeploymentError` with the same message
  text whichever implementation — and whichever side of a process
  boundary — rejected them.
* **Portable snapshots.**  ``snapshot()`` returns a
  :class:`~repro.serve.fleet.FleetSnapshot` that any fleet of the same
  machine can ``restore()``, whatever its worker/shard layout.
* **Mergeable observability.**  ``metrics`` is a single
  :class:`~repro.serve.metrics.FleetMetrics` view of the whole fleet;
  ``telemetry_registry()`` returns one merged
  :class:`~repro.obs.metrics.MetricsRegistry` (or ``None`` when
  uninstrumented).
* **Explicit shutdown.**  ``close()`` releases whatever the fleet owns
  (worker processes, pipes); every fleet is also a context manager.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from repro.core.machine import StateMachine
from repro.serve.fleet import ENCODINGS, FleetEngine, FleetSnapshot
from repro.serve.metrics import FleetMetrics
from repro.serve.store import InstanceSnapshot

__all__ = ["ENCODINGS", "Fleet", "MODEL_FACTORIES", "fleet_machine", "make_fleet"]


@runtime_checkable
class Fleet(Protocol):
    """Structural protocol every fleet implementation satisfies.

    See the module docstring for the behavioural guarantees.  The
    protocol is ``runtime_checkable`` so conformance tests can assert
    ``isinstance(fleet, Fleet)``; static checkers verify the full
    signatures.
    """

    # -- identity / configuration --------------------------------------
    @property
    def machine(self) -> StateMachine: ...

    @property
    def mode(self) -> str: ...

    @property
    def backend(self) -> str: ...

    @property
    def log_policy(self) -> str: ...

    @property
    def auto_recycle(self) -> bool: ...

    @property
    def state_map(self) -> Optional[dict]: ...

    # -- instance lifecycle --------------------------------------------
    def spawn(self, key: str) -> int: ...

    def spawn_many(self, count: int, prefix: str = "session") -> list[str]: ...

    def despawn(self, key: str) -> None: ...

    def recycle(self, key: str) -> None: ...

    def __len__(self) -> int: ...

    def __contains__(self, key: str) -> bool: ...

    # -- per-instance observation --------------------------------------
    def state_name(self, key: str) -> str: ...

    def action_count(self, key: str) -> int: ...

    def actions_since(self, key: str, start: int = 0) -> tuple[str, ...]: ...

    def trace(self, key: str) -> InstanceSnapshot: ...

    def is_finished(self, key: str) -> bool: ...

    # -- event intake and dispatch -------------------------------------
    def encode(self, events): ...

    def encode_flat(self, events): ...

    def post(
        self,
        key: str,
        message: str,
        source: Optional[str] = None,
        trace_id: Optional[int] = None,
    ) -> bool: ...

    def deliver(self, key: str, message: str) -> bool: ...

    def drain_all(self) -> int: ...

    def run(self, events, encoding: str = "auto") -> FleetMetrics: ...

    # -- snapshot / restore --------------------------------------------
    def snapshot(self, allow_partial: bool = False) -> FleetSnapshot: ...

    def restore(
        self, snapshot: FleetSnapshot, allow_partial: bool = False
    ) -> None: ...

    # -- observability / shutdown --------------------------------------
    @property
    def metrics(self) -> FleetMetrics: ...

    def telemetry_registry(self): ...

    def close(self) -> None: ...


def _model_factories() -> dict:
    """Bundled model factories by short name (imported lazily: the serve
    plane must not pay for the model zoo unless a name is actually
    resolved)."""
    from repro.models.chandra_toueg import CoordinatorRoundModel
    from repro.models.commit import CommitModel
    from repro.models.termination import TerminationModel
    from repro.models.threshold_sig import ThresholdSignatureModel

    return {
        "commit": lambda: CommitModel(replication_factor=4),
        "chandra-toueg": lambda: CoordinatorRoundModel(processes=5),
        "termination": lambda: TerminationModel(max_tasks=3),
        "threshold-sig": lambda: ThresholdSignatureModel(signers=4, threshold=3),
    }


#: Short model names :func:`make_fleet` resolves (canonical parameters).
MODEL_FACTORIES = ("commit", "chandra-toueg", "termination", "threshold-sig")

_MACHINE_CACHE: dict = {}


def fleet_machine(model: str, engine: str = "eager") -> StateMachine:
    """A cached generated machine for a bundled model name.

    Generation is the expensive step; callers building many fleets over
    the same model (tests, benchmarks, the CLI) share one machine per
    ``(model, engine)``.
    """
    factories = _model_factories()
    if model not in factories:
        from repro.core.errors import DeploymentError

        raise DeploymentError(
            f"unknown bundled model {model!r}; "
            f"choose from {MODEL_FACTORIES}"
        )
    cache_key = (model, engine)
    if cache_key not in _MACHINE_CACHE:
        _MACHINE_CACHE[cache_key] = factories[model]().generate_state_machine(
            engine=engine
        )
    return _MACHINE_CACHE[cache_key]


def make_fleet(
    model="commit",
    *,
    mode: str = "batched",
    backend: str = "interp",
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    log_policy: str = "full",
    optimize=None,
    telemetry=None,
    auto_recycle: bool = False,
    engine: str = "eager",
    **kwargs,
) -> Fleet:
    """Build any :class:`Fleet` implementation from one keyword surface.

    ``model`` is a bundled model name (one of :data:`MODEL_FACTORIES`),
    an already-generated :class:`~repro.core.machine.StateMachine`, or a
    model object with a ``generate_state_machine`` method; ``engine``
    selects the generation engine when generation happens here.

    ``workers=None`` (the default) builds the in-process
    :class:`~repro.serve.fleet.FleetEngine`.  ``workers=N`` builds a
    :class:`~repro.serve.mpfleet.MultiprocessFleet` with ``N`` worker
    processes — including ``N=1``, which pays the full IPC path and is
    the honest single-worker baseline for scaling measurements.

    ``telemetry=True`` is the portable "instrument this fleet" spelling:
    in-process it becomes a fresh
    :class:`~repro.obs.telemetry.FleetTelemetry`, multiprocess it
    enables the per-worker instruments.  Passing an instance still works
    for the in-process engine.

    Remaining keyword arguments pass through to the chosen constructor
    (``mailbox_capacity=``/``overflow=``/``cache=`` are in-process
    only; ``start_method=``, and the supervision knobs ``journal=``,
    ``checkpoint_every=``, ``recovery=`` and ``join_timeout=``, are
    multiprocess only).
    """
    if isinstance(model, str):
        machine = fleet_machine(model, engine)
    elif isinstance(model, StateMachine):
        machine = model
    else:
        machine = model.generate_state_machine(engine=engine)
    if telemetry is True and workers is None:
        from repro.obs.telemetry import FleetTelemetry

        telemetry = FleetTelemetry()
    common = dict(
        mode=mode,
        backend=backend,
        log_policy=log_policy,
        optimize=optimize,
        auto_recycle=auto_recycle,
        **kwargs,
    )
    if workers is None:
        return FleetEngine(
            machine,
            telemetry=telemetry,
            **({"shards": shards} if shards is not None else {}),
            **common,
        )
    from repro.serve.mpfleet import MultiprocessFleet

    return MultiprocessFleet(
        machine,
        workers=workers,
        telemetry=telemetry,
        **({"shards": shards} if shards is not None else {}),
        **common,
    )
