"""Counter surface for the fleet execution plane.

A :class:`FleetMetrics` instance is owned by one
:class:`~repro.serve.fleet.FleetEngine` and mutated only on its thread;
counters are plain ints updated once per batch (not per event) so the hot
dispatch loop stays tight.  The dataclass is ``slots=True``: fleets at
10k+ instances poll metrics per batch, and a fixed layout keeps the
counter object small and its attribute access dict-free.
``events_per_second`` is derived from caller-measured wall-clock timing —
the engine itself never reads the clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass(slots=True)
class FleetMetrics:
    """Aggregate counters for one fleet engine."""

    #: Events accepted for dispatch — into a mailbox by
    #: :meth:`FleetEngine.post`, or as part of a bulk :meth:`FleetEngine.run`
    #: arrival batch on unbounded fleets.
    events_offered: int = 0
    #: Events refused by a full mailbox under the ``shed`` policy.
    events_dropped: int = 0
    #: Events pulled out of mailboxes and dispatched (fired + ignored).
    events_dispatched: int = 0
    #: Dispatched events that fired a transition.
    transitions_fired: int = 0
    #: Dispatched events with no transition from the current state.
    events_ignored: int = 0
    #: Non-empty batches drained from shard mailboxes.
    batches_drained: int = 0
    #: Instances created by ``spawn``.
    instances_spawned: int = 0
    #: Instances returned to the start state via the ``reset()`` protocol.
    instances_recycled: int = 0
    #: Instances removed by ``despawn`` (their slots were freed for reuse).
    instances_released: int = 0
    #: Fleet-wide snapshots taken / restored.
    snapshots_taken: int = 0
    snapshots_restored: int = 0
    #: Mailbox depth per shard at its most recent observation.  The
    #: engine records each shard's depth automatically at every drain
    #: (the depth *being* drained), so these are live without any caller
    #: involvement; :meth:`observe_depths` remains for explicit polls.
    shard_depths: list[int] = field(default_factory=list)
    #: Deepest single-shard mailbox ever observed (high-water mark).
    peak_shard_depth: int = 0

    def observe_depth(self, shard_id: int, depth: int) -> None:
        """Record one shard's mailbox depth (called by the engine per drain)."""
        depths = self.shard_depths
        if shard_id >= len(depths):
            depths.extend([0] * (shard_id + 1 - len(depths)))
        depths[shard_id] = depth
        if depth > self.peak_shard_depth:
            self.peak_shard_depth = depth

    def observe_depths(self, depths: list[int]) -> None:
        """Record the current per-shard mailbox depths (a gauge, not a sum)."""
        self.shard_depths = list(depths)
        deepest = max(depths, default=0)
        if deepest > self.peak_shard_depth:
            self.peak_shard_depth = deepest

    @property
    def max_shard_depth(self) -> int:
        """Deepest mailbox at the last observation (0 when never observed)."""
        return max(self.shard_depths, default=0)

    def merge(self, other: "FleetMetrics") -> "FleetMetrics":
        """Fold another engine's counters into this one; returns ``self``.

        The multiprocess fleet aggregates its workers through here:
        counters add, ``shard_depths`` concatenates (each worker owns a
        disjoint shard range, so the merged list is the fleet-wide gauge
        vector) and ``peak_shard_depth`` takes the maximum.
        """
        self.events_offered += other.events_offered
        self.events_dropped += other.events_dropped
        self.events_dispatched += other.events_dispatched
        self.transitions_fired += other.transitions_fired
        self.events_ignored += other.events_ignored
        self.batches_drained += other.batches_drained
        self.instances_spawned += other.instances_spawned
        self.instances_recycled += other.instances_recycled
        self.instances_released += other.instances_released
        self.snapshots_taken += other.snapshots_taken
        self.snapshots_restored += other.snapshots_restored
        self.shard_depths = self.shard_depths + list(other.shard_depths)
        if other.peak_shard_depth > self.peak_shard_depth:
            self.peak_shard_depth = other.peak_shard_depth
        return self

    def events_per_second(self, elapsed_seconds: float) -> float:
        """Dispatch throughput over a caller-measured interval.

        Guards the zero/negative-duration edge (a timer that did not
        advance) by reporting 0.0 instead of dividing by zero.
        """
        if elapsed_seconds <= 0:
            return 0.0
        return self.events_dispatched / elapsed_seconds

    def as_dict(self) -> dict:
        """All counters as a plain dict (for JSON artifacts and reports)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
