"""Differential harness: fleet runs versus standalone interpreter replays.

The fleet's correctness claim is that hosting an instance inside the
execution plane is observationally identical to running it alone: for any
recorded event schedule, every instance's final ``(state, action log)``
trace must match a standalone :class:`~repro.runtime.interp.MachineInterpreter`
fed the same per-key subsequence.  This module replays schedules standalone
and reports mismatches; the test suite and ``bench_serve`` both use it.

The comparison is only meaningful when the fleet dropped nothing — use
unbounded mailboxes (or check ``metrics.events_dropped == 0``) before
trusting a clean result — and when the fleet retains full action logs:
fleets running a reduced ``log_policy`` (``count`` / ``off``) have no
trace to compare, so the harness rejects them up front.
"""

from __future__ import annotations

from repro.core.errors import DeploymentError
from repro.core.machine import StateMachine
from repro.runtime.interp import MachineInterpreter
from repro.serve.store import InstanceSnapshot


def _replay_traces(executors, events, auto_recycle) -> dict[str, InstanceSnapshot]:
    """Drive one executor per key through a schedule; snapshot each.

    The executors only need the common protocol (``receive`` /
    ``is_finished`` / ``reset`` / ``get_state`` / ``sent``), so the
    interpreter and the hierarchical simulator replay identically.
    """
    for key, message in events:
        executor = executors[key]
        if executor.receive(message):
            if auto_recycle and executor.is_finished():
                executor.reset()
    return {
        key: InstanceSnapshot(key, executor.get_state(), tuple(executor.sent))
        for key, executor in executors.items()
    }


def standalone_traces(
    machine: StateMachine,
    keys,
    events,
    auto_recycle: bool = False,
) -> dict[str, InstanceSnapshot]:
    """Replay a recorded schedule through one interpreter per session key.

    ``auto_recycle`` mirrors the fleet option: an instance that reaches a
    final state is immediately ``reset()``.
    """
    machine.check_integrity()
    return _replay_traces(
        {key: MachineInterpreter(machine, validate=False) for key in keys},
        events,
        auto_recycle,
    )


def hierarchical_traces(
    model,
    keys,
    events,
    auto_recycle: bool = False,
) -> dict[str, InstanceSnapshot]:
    """Replay a recorded schedule through direct hierarchical simulation.

    One :class:`~repro.core.hsm.HierarchicalSimulator` per session key —
    the hierarchy executed *without* flattening.  Because the simulator
    reports flat leaf names and logs actions exactly like the
    interpreter, the resulting snapshots are directly comparable with a
    fleet hosting the flattened machine.
    """
    model.validate()
    return _replay_traces(
        {key: model.simulator(validate=False) for key in keys},
        events,
        auto_recycle,
    )


def _require_full_logs(fleet) -> None:
    """Reject fleets whose log policy retains no comparable trace."""
    policy = getattr(fleet, "log_policy", "full")
    if policy != "full":
        raise DeploymentError(
            f"differential comparison needs log_policy='full'; the fleet "
            f"runs {policy!r} and retains no action logs to compare"
        )


def _trace_matches(actual: InstanceSnapshot, expected: InstanceSnapshot, state_map):
    """Whether a fleet trace matches an oracle trace.

    Action logs must be identical — actions are the machine's observable
    behaviour and no optimization may change them.  States compare by
    name, through ``state_map`` when the fleet served a machine whose
    equivalent states were merged (a merged state answers to its
    representative's name; the oracle replays the unoptimized machine).
    """
    if actual.actions != expected.actions:
        return False
    if state_map is None:
        return actual.state == expected.state
    return actual.state == state_map.get(expected.state, expected.state)


def diff_against_hierarchical(fleet, model, keys, events) -> list[str]:
    """Keys whose fleet trace differs from direct hierarchical simulation.

    ``fleet`` must host a machine flattened from ``model`` and must
    already have processed ``events``.  An empty list is the end-to-end
    flattening correctness claim: hierarchy simulated directly ==
    flattened machine served at fleet scale (modulo the fleet's
    ``state_map`` when it served an optimized machine).
    """
    _require_full_logs(fleet)
    expected = hierarchical_traces(
        model, keys, events, auto_recycle=fleet.auto_recycle
    )
    state_map = getattr(fleet, "state_map", None)
    return [
        key
        for key in keys
        if not _trace_matches(fleet.trace(key), expected[key], state_map)
    ]


def diff_fleets(fleet_a, fleet_b, keys) -> list[str]:
    """Keys whose final traces differ between two fleets.

    The scenario plane's replay oracle: two fleets of *any* dispatch
    mode/backend combination that ran the same seeded scenario must end
    with identical per-key ``(state, action log)`` traces — including a
    fleet that was killed and restored mid-run versus one that ran
    undisturbed.  Both fleets must retain full logs and serve the same
    optimization (identical ``state_map``); comparing across different
    merges would need an inverse map that does not exist.
    """
    _require_full_logs(fleet_a)
    _require_full_logs(fleet_b)
    if getattr(fleet_a, "state_map", None) != getattr(fleet_b, "state_map", None):
        raise DeploymentError(
            "diff_fleets needs both fleets serving the same optimized "
            "machine (their state_maps differ)"
        )
    mismatched = []
    for key in keys:
        a = fleet_a.trace(key)
        b = fleet_b.trace(key)
        if a.state != b.state or a.actions != b.actions:
            mismatched.append(key)
    return mismatched


def diff_against_standalone(fleet, keys, events) -> list[str]:
    """Keys whose fleet trace differs from the standalone replay.

    ``fleet`` must already have processed ``events``; the standalone side
    is replayed here with the fleet's own ``auto_recycle`` setting, on
    the fleet's *pre-optimization* machine.  An empty list means the
    fleet is observationally identical to single-instance runs (modulo
    ``state_map`` for fleets serving merged machines).
    """
    _require_full_logs(fleet)
    expected = standalone_traces(
        fleet.machine, keys, events, auto_recycle=fleet.auto_recycle
    )
    state_map = getattr(fleet, "state_map", None)
    return [
        key
        for key in keys
        if not _trace_matches(fleet.trace(key), expected[key], state_map)
    ]
