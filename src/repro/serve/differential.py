"""Differential harness: fleet runs versus standalone interpreter replays.

The fleet's correctness claim is that hosting an instance inside the
execution plane is observationally identical to running it alone: for any
recorded event schedule, every instance's final ``(state, action log)``
trace must match a standalone :class:`~repro.runtime.interp.MachineInterpreter`
fed the same per-key subsequence.  This module replays schedules standalone
and reports mismatches; the test suite and ``bench_serve`` both use it.

The comparison is only meaningful when the fleet dropped nothing — use
unbounded mailboxes (or check ``metrics.events_dropped == 0``) before
trusting a clean result.
"""

from __future__ import annotations

from repro.core.machine import StateMachine
from repro.runtime.interp import MachineInterpreter
from repro.serve.store import InstanceSnapshot


def standalone_traces(
    machine: StateMachine,
    keys,
    events,
    auto_recycle: bool = False,
) -> dict[str, InstanceSnapshot]:
    """Replay a recorded schedule through one interpreter per session key.

    ``auto_recycle`` mirrors the fleet option: an instance that reaches a
    final state is immediately ``reset()``.
    """
    machine.check_integrity()
    interpreters = {
        key: MachineInterpreter(machine, validate=False) for key in keys
    }
    for key, message in events:
        interpreter = interpreters[key]
        if interpreter.receive(message):
            if auto_recycle and interpreter.is_finished():
                interpreter.reset()
    return {
        key: InstanceSnapshot(key, interp.get_state(), tuple(interp.sent))
        for key, interp in interpreters.items()
    }


def diff_against_standalone(fleet, keys, events) -> list[str]:
    """Keys whose fleet trace differs from the standalone replay.

    ``fleet`` must already have processed ``events``; the standalone side
    is replayed here with the fleet's own ``auto_recycle`` setting.  An
    empty list means the fleet is observationally identical to
    single-instance runs.
    """
    expected = standalone_traces(
        fleet.machine, keys, events, auto_recycle=fleet.auto_recycle
    )
    mismatched = []
    for key in keys:
        if fleet.trace(key) != expected[key]:
            mismatched.append(key)
    return mismatched
