"""Open- and closed-loop load generation with honest latency percentiles.

Throughput sweeps (``bench_serve``/``bench_scenario``) answer "how many
events per second can the fleet dispatch"; they say nothing about what a
*client* would experience at a given offered load.  This module adds the
missing half, in the muBench/Locust mould but deterministic and
dependency-free:

* **Open loop** — :func:`generate_open_loop` stamps arrivals on a
  virtual clock from a seeded arrival process (Poisson interarrivals via
  ``expovariate``, or a uniform pulse train) with message content drawn
  by :class:`~repro.serve.workload.SessionSimulator`; offered load never
  reacts to the system, which is what exposes saturation.
* **Closed loop** — :func:`run_closed_loop` simulates ``users``
  concurrent sessions that each post, wait for completion, think
  (exponential), and post again; offered load self-throttles to the
  system's speed, the classic interactive law ``X = N / (R + Z)``.

Latency comes from a **measured-service queueing replay**: the real
fleet dispatches the schedule in chunks and each chunk is wall-clocked,
yielding per-event service times; the arrival schedule is then replayed
against those service times through a single-server FIFO queue, so
``latency = completion - arrival`` combines genuinely measured service
cost with the queueing the arrival process implies.  (The serve plane is
synchronous — events cannot *actually* wait in real time — so the
replay is the honest way to turn measured throughput into percentiles.)
Passing ``service_time=`` instead of a fleet runs the replay *virtually*
with constant service: fully deterministic, which is what the analytic
acceptance gate in ``benchmarks/bench_load.py`` checks quantiles
against.

Results land in a :class:`LoadReport` whose latency distribution is a
:class:`~repro.obs.metrics.LatencyHistogram` — p50/p95/p99 are accurate
to one bucket width by construction, and reports merge across runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from time import perf_counter
from typing import Optional

from repro.core.errors import SimulationError
from repro.core.machine import StateMachine
from repro.obs.metrics import LatencyHistogram
from repro.serve.workload import SessionSimulator, session_keys

__all__ = [
    "Arrival",
    "OpenLoopSpec",
    "ClosedLoopSpec",
    "LoadReport",
    "generate_open_loop",
    "run_open_loop",
    "run_closed_loop",
]

#: Supported open-loop arrival processes.
ARRIVAL_PROCESSES = ("poisson", "uniform")


@dataclass(frozen=True)
class Arrival:
    """One offered event: at virtual ``time``, ``key`` receives ``message``."""

    time: float
    key: str
    message: str


@dataclass(frozen=True)
class OpenLoopSpec:
    """An open-loop (offered-rate) load: arrivals ignore the system."""

    rate: float  #: offered events per virtual second
    events: int
    instances: int = 1000
    process: str = "poisson"
    seed: int = 0
    noise: float = 0.1

    def __post_init__(self):
        if self.rate <= 0:
            raise SimulationError(f"offered rate must be > 0, got {self.rate}")
        if self.events < 1 or self.instances < 1:
            raise SimulationError("open loop needs >= 1 event and >= 1 instance")
        if self.process not in ARRIVAL_PROCESSES:
            raise SimulationError(
                f"unknown arrival process {self.process!r}; "
                f"choose from {ARRIVAL_PROCESSES}"
            )


@dataclass(frozen=True)
class ClosedLoopSpec:
    """A closed-loop load: ``users`` sessions post, wait, think, repeat."""

    users: int = 100
    events: int = 10_000
    think_time: float = 0.001  #: mean think time (exponential; 0 = none)
    seed: int = 0
    noise: float = 0.1

    def __post_init__(self):
        if self.users < 1 or self.events < 1:
            raise SimulationError("closed loop needs >= 1 user and >= 1 event")
        if self.think_time < 0:
            raise SimulationError(
                f"think_time must be >= 0, got {self.think_time}"
            )


@dataclass
class LoadReport:
    """What one load run measured: rates plus the latency distribution."""

    kind: str  #: "open" or "closed"
    events: int
    offered_eps: float  #: offered rate (open) / self-throttled rate (closed)
    achieved_eps: float  #: completions over the replay makespan
    capacity_eps: float  #: 1 / mean measured (or given) service time
    utilization: float  #: offered_eps / capacity_eps
    wall_seconds: float  #: real dispatch wall time (0.0 in virtual mode)
    latency: LatencyHistogram

    @property
    def p50_s(self) -> float:
        return self.latency.quantile(0.50)

    @property
    def p95_s(self) -> float:
        return self.latency.quantile(0.95)

    @property
    def p99_s(self) -> float:
        return self.latency.quantile(0.99)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "events": self.events,
            "offered_eps": self.offered_eps,
            "achieved_eps": self.achieved_eps,
            "capacity_eps": self.capacity_eps,
            "utilization": self.utilization,
            "wall_seconds": self.wall_seconds,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "mean_latency_s": self.latency.mean,
            "latency": self.latency.as_dict(),
        }


def generate_open_loop(
    machine: StateMachine, spec: OpenLoopSpec
) -> list[Arrival]:
    """Stamp an open-loop arrival schedule on the virtual clock.

    Two independent seeded streams (the
    :meth:`~repro.storage.sim.kernel.Simulator.new_rng` labelling
    convention) keep timing and content decoupled: changing the arrival
    process never changes which messages the sessions see, so sweeps
    over offered load replay identical content.
    """
    timing = random.Random(f"{spec.seed}:arrivals")
    content = random.Random(f"{spec.seed}:content")
    keys = session_keys(spec.instances)
    sessions = SessionSimulator(machine, keys, content, spec.noise)
    poisson = spec.process == "poisson"
    gap = 1.0 / spec.rate
    now = 0.0
    arrivals: list[Arrival] = []
    for _ in range(spec.events):
        now += timing.expovariate(spec.rate) if poisson else gap
        key = keys[content.randrange(spec.instances)]
        arrivals.append(Arrival(now, key, sessions.next_message(key)))
    return arrivals


def _measure_services(fleet, schedule, chunk: int):
    """Dispatch ``schedule`` through ``fleet`` in wall-clocked chunks.

    Returns ``(services, capacity_eps, wall_seconds)`` where ``services``
    assigns every event its chunk's mean per-event dispatch time — the
    measured-service half of the queueing replay.  Encoded fleets are
    interned once up front so the timed region matches ``bench_serve``'s.
    """
    encoded = fleet.mode in ("encoded", "grouped")
    encoding = "pairs" if encoded else "events"
    schedule = list(schedule)
    # Chunk the string schedule, then intern each chunk up front: the
    # timed region stays interning-free whatever Fleet implementation
    # (and whatever schedule type its encode() returns) is measured.
    parts = []
    for i in range(0, len(schedule), chunk):
        piece = schedule[i : i + chunk]
        parts.append((fleet.encode(piece) if encoded else piece, len(piece)))
    services: list[float] = []
    wall = 0.0
    for part, size in parts:
        started = perf_counter()
        fleet.run(part, encoding=encoding)
        elapsed = perf_counter() - started
        wall += elapsed
        services.extend([elapsed / size] * size)
    capacity = len(schedule) / wall if wall > 0 else 0.0
    return services, capacity, wall


def _replay_fifo(arrival_times, services, histogram: LatencyHistogram) -> float:
    """Single-server FIFO replay; observes latencies, returns the makespan end."""
    clock = 0.0
    for arrived, service in zip(arrival_times, services):
        start = clock if clock > arrived else arrived
        clock = start + service
        histogram.observe(clock - arrived)
    return clock


def run_open_loop(
    machine: StateMachine,
    spec: OpenLoopSpec,
    *,
    fleet=None,
    service_time: Optional[float] = None,
    chunk: int = 2048,
    histogram: Optional[LatencyHistogram] = None,
) -> LoadReport:
    """Offer an open-loop load and report the latency distribution.

    With ``fleet`` given, service times are measured by chunked real
    dispatch (see :func:`_measure_services`); with ``service_time``,
    the replay is virtual and fully deterministic.  Exactly one of the
    two must be provided.
    """
    if (fleet is None) == (service_time is None):
        raise SimulationError(
            "run_open_loop needs exactly one of fleet= or service_time="
        )
    arrivals = generate_open_loop(machine, spec)
    if fleet is not None:
        schedule = [(a.key, a.message) for a in arrivals]
        services, capacity, wall = _measure_services(fleet, schedule, chunk)
    else:
        if service_time <= 0:
            raise SimulationError(
                f"service_time must be > 0, got {service_time}"
            )
        services = [service_time] * len(arrivals)
        capacity = 1.0 / service_time
        wall = 0.0
    hist = histogram if histogram is not None else LatencyHistogram(
        "load_latency_seconds", "open-loop event latency (queueing replay)"
    )
    end = _replay_fifo([a.time for a in arrivals], services, hist)
    span = end - arrivals[0].time
    return LoadReport(
        kind="open",
        events=len(arrivals),
        offered_eps=spec.rate,
        achieved_eps=len(arrivals) / span if span > 0 else 0.0,
        capacity_eps=capacity,
        utilization=spec.rate / capacity if capacity > 0 else float("inf"),
        wall_seconds=wall,
        latency=hist,
    )


def _simulate_closed(machine, spec: ClosedLoopSpec, placeholder: float):
    """Phase 1: fix the event order with a constant placeholder service.

    Simulates the users against a single FIFO server with service time
    ``placeholder``, recording per event ``(user, key, message, think)``
    in dispatch order.  The order and the content/think draws are then
    held fixed while phase 3 recomputes timing with measured services.
    """
    think_rng = random.Random(f"{spec.seed}:think")
    content = random.Random(f"{spec.seed}:content")
    keys = session_keys(spec.users, prefix="user")
    sessions = SessionSimulator(machine, keys, content, spec.noise)
    mean = spec.think_time
    ready = [(0.0, u) for u in range(spec.users)]
    heapify(ready)
    server = 0.0
    order: list[tuple] = []
    for _ in range(spec.events):
        when, user = heappop(ready)
        key = keys[user]
        message = sessions.next_message(key)
        start = server if server > when else when
        completion = start + placeholder
        server = completion
        think = think_rng.expovariate(1.0 / mean) if mean > 0 else 0.0
        order.append((user, key, message, think))
        heappush(ready, (completion + think, user))
    return order


def _replay_closed(
    order, services, users: int, histogram: LatencyHistogram
) -> float:
    """Phase 3: replay the fixed dispatch order with real service times.

    Each user's next arrival is their previous completion plus the
    recorded think; the server runs the events in the fixed (phase-1)
    order — dispatch-order FIFO — so measured service variation shifts
    timing without re-deciding who went when.
    """
    ready = [0.0] * users
    server = 0.0
    for (user, _key, _message, think), service in zip(order, services):
        arrived = ready[user]
        start = server if server > arrived else arrived
        server = start + service
        histogram.observe(server - arrived)
        ready[user] = server + think
    return server


def run_closed_loop(
    machine: StateMachine,
    spec: ClosedLoopSpec,
    *,
    fleet=None,
    service_time: Optional[float] = None,
    chunk: int = 2048,
    placeholder_service: float = 1e-4,
    histogram: Optional[LatencyHistogram] = None,
) -> LoadReport:
    """Run a closed-loop load and report the latency distribution.

    Three phases: (1) simulate the users with a constant placeholder
    service to fix the dispatch order deterministically, (2) dispatch
    that order through the real fleet in wall-clocked chunks (skipped in
    virtual mode), (3) replay the order against the measured (or given)
    service times.  The fleet must host instances named by
    ``session_keys(spec.users, prefix="user")``.
    """
    if (fleet is None) == (service_time is None):
        raise SimulationError(
            "run_closed_loop needs exactly one of fleet= or service_time="
        )
    order = _simulate_closed(
        machine, spec, service_time if service_time else placeholder_service
    )
    if fleet is not None:
        schedule = [(key, message) for _u, key, message, _t in order]
        services, capacity, wall = _measure_services(fleet, schedule, chunk)
    else:
        if service_time <= 0:
            raise SimulationError(
                f"service_time must be > 0, got {service_time}"
            )
        services = [service_time] * len(order)
        capacity = 1.0 / service_time
        wall = 0.0
    hist = histogram if histogram is not None else LatencyHistogram(
        "load_latency_seconds", "closed-loop event latency (queueing replay)"
    )
    end = _replay_closed(order, services, spec.users, hist)
    rate = len(order) / end if end > 0 else 0.0
    return LoadReport(
        kind="closed",
        events=len(order),
        offered_eps=rate,  # closed loops self-throttle: offered == achieved
        achieved_eps=rate,
        capacity_eps=capacity,
        utilization=rate / capacity if capacity > 0 else float("inf"),
        wall_seconds=wall,
        latency=hist,
    )
