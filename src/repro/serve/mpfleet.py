"""Process-parallel fleet: shards pinned to worker processes.

Every dispatch plane built so far runs on one CPU core; this module is
the scale-out step.  A :class:`MultiprocessFleet` partitions the session
key space across ``N`` worker processes with the same stable CRC-32
routing the in-process engine uses for shards
(:func:`~repro.serve.store.shard_of` over the worker count), so one key
always lives in exactly one worker and per-key event order is preserved
end to end.  Each worker owns a full private
:class:`~repro.serve.fleet.FleetEngine` — the columnar
:class:`~repro.serve.store.InstanceStore` columns are already
shard-independent state, so nothing is shared between processes.

The wire protocol is deliberately small.  Parent and worker speak over
one duplex :func:`multiprocessing.Pipe` with request tuples
``(op, *operands)`` and reply envelopes
``(status, payload, FleetMetrics)``: every reply piggybacks the worker's
current counters, so the parent's merged :attr:`MultiprocessFleet.metrics`
view (via :meth:`~repro.serve.metrics.FleetMetrics.merge`) is always
current without extra round trips.  Bulk dispatch fans out *flat*
``array('q')`` schedules — an ``array`` pickles as one memcpy, so the
per-event IPC cost is two machine ints, not two Python objects — and the
parent interns keys and messages itself (it builds the same
:class:`~repro.opt.IndexedMachine` the workers do), which keeps the
canonical unknown instance/message :class:`DeploymentError` shape
identical on both sides of the process boundary.

Telemetry follows the sharding design the obs plane documents: each
worker feeds its own :class:`~repro.obs.telemetry.FleetTelemetry`
(tracing off — trace logs do not cross processes) and
:meth:`MultiprocessFleet.telemetry_registry` folds the worker registries
together with the bucketwise
:meth:`~repro.obs.metrics.MetricsRegistry.merge`, so latency histograms
aggregate exactly.

Failure semantics come in two flavours.  *Unsupervised* (the default):
a worker that dies mid-batch (pipe hits ``EOFError``/``BrokenPipeError``)
is marked dead and the operation raises a :class:`DeploymentError`
naming it; traffic already fanned out to the surviving workers is
dispatched in full first, so the surviving shard partitions stay
internally consistent and keep serving.  The dead worker's partition is
lost — restore a snapshot to recover it (or take a *partial* snapshot of
the survivors with ``snapshot(allow_partial=True)``).

*Supervised* (``journal=True``): every mutating request is also written
to a per-worker :class:`~repro.serve.recovery.WorkerJournal` — bulk
dispatch journals the already-interned flat buffer *before* fan-out (one
list append on the hot path), lifecycle operations journal after their
acknowledgement — and each partition is checkpointed at its exact slot
layout every ``checkpoint_every`` journaled events.  When a worker dies,
a supervisor thread respawns it with bounded retry/backoff
(:class:`~repro.serve.recovery.RecoveryPolicy`), rehydrates the
partition from the last checkpoint, replays the journal verbatim (slot
ids stay valid because the layout is exact — pre-encoded
:class:`EncodedFleetSchedule` objects survive a recovery), and swaps the
fresh worker in.  During the window callers see a *transient*
:class:`~repro.serve.recovery.FleetRecoveringError` (a
:class:`DeploymentError` subclass carrying ``retry_after``) for
operations that need a round trip, while bulk dispatch and ``post`` are
accepted and deferred through the journal; :meth:`await_recovery`
blocks until the fleet is whole.  Merged metrics and telemetry stay
monotonic across the respawn: the checkpoint carries the worker's
effective counters, which become the next incarnation's restart
baseline.  Recovery itself is observable through
:meth:`recovery_registry` / :attr:`recovery_trace`
(die→respawn→replay→resume causality, MTTR histogram).

Unsupported relative to the in-process engine: bounded mailboxes and
overflow policies (:meth:`MultiprocessFleet.post` buffers parent-side
and :meth:`MultiprocessFleet.drain_all` flushes), and live trace logs.
"""

from __future__ import annotations

import multiprocessing
import threading
import weakref
from array import array
from dataclasses import replace
from itertools import chain
from time import perf_counter, sleep
from typing import Optional

from repro.core.errors import DeploymentError
from repro.core.machine import StateMachine
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import FleetTelemetry
from repro.opt import IndexedMachine, as_pipeline
from repro.serve.adapter import BACKENDS
from repro.serve.fleet import (
    DISPATCH_MODES,
    ENCODINGS,
    FleetEngine,
    FleetSnapshot,
    _ENCODED_MODES,
    raise_rejected,
)
from repro.serve.metrics import FleetMetrics
from repro.serve.recovery import (
    FleetRecoveringError,
    RecoveryPolicy,
    RecoveryTelemetry,
    WorkerJournal,
    combine_metrics,
    combine_registries,
    partition_checkpoint,
    rehydrate,
)
from repro.serve.store import LOG_POLICIES, InstanceSnapshot, shard_of
from repro.serve.vector import require_numpy
from repro.serve.workload import session_keys

__all__ = ["EncodedFleetSchedule", "MultiprocessFleet"]

#: Worker lifecycle states (the recovery state machine's vocabulary).
WORKER_LIVE = "live"
WORKER_RECOVERING = "recovering"
WORKER_DEAD = "dead"


class EncodedFleetSchedule:
    """A pre-encoded schedule partitioned by worker.

    The multiprocess counterpart of the engine's ``(slot, column)``
    schedules: :meth:`MultiprocessFleet.encode` interns every event to
    its owning worker's flat ``[slot, col, ...]`` buffer once, so a
    repeated :meth:`MultiprocessFleet.run` pays only the fan-out.
    Schedules are fleet-specific (slot ids live in worker stores);
    encode against the fleet that will run the schedule.
    """

    __slots__ = ("parts",)

    def __init__(self, parts: tuple):
        self.parts = parts

    def __len__(self) -> int:
        return sum(len(part) for part in self.parts) // 2

    def __bool__(self) -> bool:
        return any(self.parts)

    def __add__(self, other: "EncodedFleetSchedule") -> "EncodedFleetSchedule":
        if len(self.parts) != len(other.parts):
            raise DeploymentError(
                "cannot concatenate schedules encoded for different fleets"
            )
        return EncodedFleetSchedule(
            tuple(mine + theirs for mine, theirs in zip(self.parts, other.parts))
        )


class _Worker:
    """Parent-side handle of one worker process (one incarnation)."""

    __slots__ = ("process", "conn", "status", "metrics", "restart_base", "registry_base")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.status = WORKER_LIVE
        #: Last counters reported by *this incarnation* (piggybacked on
        #: every reply).
        self.metrics = FleetMetrics()
        #: Counters accumulated by previous incarnations (the checkpoint
        #: baseline installed at respawn) — the worker's effective view
        #: is ``combine_metrics(restart_base, metrics)``.
        self.restart_base = FleetMetrics()
        self.registry_base: Optional[MetricsRegistry] = None

    @property
    def alive(self) -> bool:
        return self.status == WORKER_LIVE


def _worker_main(conn, machine, options) -> None:
    """Worker process body: one private engine, one request loop."""
    try:
        telemetry = (
            FleetTelemetry(tracing=False) if options["telemetry"] else None
        )
        engine = FleetEngine(
            machine,
            shards=options["shards"],
            backend=options["backend"],
            mode=options["mode"],
            log_policy=options["log_policy"],
            optimize=options["optimize"],
            auto_recycle=options["auto_recycle"],
            telemetry=telemetry,
        )
    except Exception as exc:  # construction failed: report, then exit
        _reply(conn, "fail", f"{type(exc).__name__}: {exc}", None)
        conn.close()
        return
    _reply(conn, "ok", "ready", engine)
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        op = request[0]
        if op == "stop":
            _reply(conn, "ok", None, engine)
            break
        try:
            payload = _handle(engine, request)
        except DeploymentError as exc:
            _reply(conn, "err", str(exc), engine)
        except Exception as exc:
            _reply(conn, "fail", f"{type(exc).__name__}: {exc}", engine)
        else:
            _reply(conn, "ok", payload, engine)
    conn.close()


def _reply(conn, status: str, payload, engine) -> None:
    metrics = engine.metrics if engine is not None else None
    try:
        conn.send((status, payload, metrics))
    except (BrokenPipeError, OSError):
        pass


def _handle(engine: FleetEngine, request: tuple):
    """Execute one parent request against the worker's engine."""
    op = request[0]
    if op == "run_flat":
        engine.run(request[1], encoding="flat")
        return None
    if op == "run_events":
        engine.run(request[1], encoding="events")
        return None
    if op == "spawn":
        return engine.spawn(request[1])
    if op == "spawn_keys":
        return [engine.spawn(key) for key in request[1]]
    if op == "despawn":
        engine.despawn(request[1])
        return None
    if op == "recycle":
        engine.recycle(request[1])
        return None
    if op == "deliver":
        return engine.deliver(request[1], request[2])
    if op == "state":
        return engine.state_name(request[1])
    if op == "action_count":
        return engine.action_count(request[1])
    if op == "actions_since":
        return engine.actions_since(request[1], request[2])
    if op == "trace":
        return engine.trace(request[1])
    if op == "finished":
        return engine.is_finished(request[1])
    if op == "snapshot":
        return engine.snapshot()
    if op == "restore":
        engine.restore(request[1])
        return dict(engine.store.slot_of)
    if op == "registry":
        return engine.telemetry_registry()
    if op == "checkpoint":
        return partition_checkpoint(engine)
    if op == "rehydrate":
        rehydrate(engine, request[1])
        return None
    raise DeploymentError(f"unknown worker op {op!r}")


class MultiprocessFleet:
    """Host one machine's instances across worker processes.

    Satisfies the :class:`~repro.serve.api.Fleet` protocol; see the
    module docstring for routing, wire protocol and failure semantics.
    ``journal=True`` enables the write-ahead journal, periodic partition
    checkpoints (every ``checkpoint_every`` journaled events) and the
    self-healing supervisor governed by ``recovery``
    (a :class:`~repro.serve.recovery.RecoveryPolicy`).
    """

    def __init__(
        self,
        machine: StateMachine,
        *,
        workers: int = 2,
        shards: int = 4,
        backend: str = "interp",
        mode: str = "encoded",
        log_policy: str = "full",
        optimize=None,
        auto_recycle: bool = False,
        telemetry=None,
        start_method: Optional[str] = None,
        journal: bool = False,
        checkpoint_every: int = 50_000,
        recovery: Optional[RecoveryPolicy] = None,
        join_timeout: float = 5.0,
    ):
        if workers < 1:
            raise DeploymentError(f"workers must be >= 1, got {workers}")
        if mode not in DISPATCH_MODES:
            raise DeploymentError(
                f"unknown dispatch mode {mode!r}; choose from {DISPATCH_MODES}"
            )
        if backend not in BACKENDS:
            raise DeploymentError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        if log_policy not in LOG_POLICIES:
            raise DeploymentError(
                f"unknown log policy {log_policy!r}; choose from {LOG_POLICIES}"
            )
        if mode == "naive" and log_policy != "full":
            raise DeploymentError(
                "naive-mode backends always retain their action logs; "
                f"log_policy {log_policy!r} needs a table-dispatch mode"
            )
        if checkpoint_every < 1:
            raise DeploymentError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if mode == "vector":
            # Workers inherit this interpreter's environment, so checking
            # the soft numpy dependency here surfaces the canonical error
            # before any worker process is forked.
            require_numpy("dispatch mode 'vector'")
        self._machine = machine
        self._mode = mode
        self._encoded_intake = mode in _ENCODED_MODES
        self._backend_kind = backend
        self._log_policy = log_policy
        self._auto_recycle = auto_recycle
        self._telemetry_enabled = telemetry is not None and telemetry is not False
        # The parent interns keys/messages itself, so it builds the same
        # (optimized) IR the workers will — column ids and state names
        # are deterministic functions of (machine, optimize).
        self._indexed = IndexedMachine.from_machine(machine)
        pipeline = as_pipeline(optimize)
        if pipeline is not None:
            self._indexed, self.opt_report = pipeline.run(self._indexed)
        else:
            self.opt_report = None
        self._columns = self._indexed.dispatch_table().message_index
        #: key -> (worker id, worker-local slot); the authoritative
        #: population map — workers never report membership back.
        self._slots: dict[str, tuple[int, int]] = {}
        self._closed = False
        self._closing = False
        self._join_timeout = join_timeout

        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self._options = {
            "shards": shards,
            "backend": backend,
            "mode": mode,
            "log_policy": log_policy,
            "optimize": optimize,
            "auto_recycle": auto_recycle,
            "telemetry": self._telemetry_enabled,
        }
        # Supervision plane (journal=True): write-ahead journals, the
        # recovery policy/telemetry and the lock guarding journal state,
        # worker status transitions and the worker-handle swap.  Built
        # before the workers so a death during the startup handshake
        # already has the full failure machinery available.
        self._journal_enabled = journal
        self._checkpoint_every = checkpoint_every
        self._policy = recovery if recovery is not None else RecoveryPolicy()
        self._lock = threading.RLock()
        self._recovery_threads: dict[int, threading.Thread] = {}
        self._journals = (
            [WorkerJournal() for _ in range(workers)] if journal else []
        )
        self._recovery = RecoveryTelemetry() if journal else None

        #: Every process this fleet ever started (respawns included) —
        #: the GC finalizer sweeps this list so no incarnation leaks.
        self._processes: list = []
        self._workers: list[_Worker] = [
            self._launch_worker() for _ in range(workers)
        ]
        self._finalizer = weakref.finalize(
            self, _terminate_workers, self._processes
        )
        # Startup handshake: surfaces worker-side construction errors
        # here instead of as an EOF on the first real request.
        for wid in range(workers):
            self._recv(wid)
        #: Parent-side pending buffers, one per worker (post() -> drain).
        self._pending = [self._new_buffer() for _ in range(workers)]
        self._pending_counts = [0] * workers
        if journal:
            # Initial checkpoints: the journal's replay base is the
            # empty population each worker starts with.
            for wid in range(workers):
                self._take_checkpoint(wid)

    # ------------------------------------------------------------------
    # wire helpers
    # ------------------------------------------------------------------

    def _launch_worker(self) -> _Worker:
        """Start one worker process (no handshake — callers recv it)."""
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._machine, self._options),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._processes.append(process)
        return _Worker(process, parent_conn)

    def _new_buffer(self):
        return array("q") if self._encoded_intake else []

    def _mark_dead(self, wid: int) -> None:
        worker = self._workers[wid]
        worker.status = WORKER_DEAD
        try:
            worker.conn.close()
        except OSError:
            pass

    def _worker_failed(self, wid: int) -> bool:
        """A worker stopped responding: start recovery when supervised.

        Returns ``True`` when a recovery is (already) underway — the
        caller raises the transient :class:`FleetRecoveringError` —
        ``False`` when the partition is permanently lost (unsupervised,
        closing, or the restart policy was exhausted earlier).
        """
        with self._lock:
            worker = self._workers[wid]
            if worker.status == WORKER_RECOVERING:
                return True
            if worker.status == WORKER_DEAD:
                return False
            if not self._journal_enabled or self._closing:
                self._mark_dead(wid)
                return False
            worker.status = WORKER_RECOVERING
            try:
                worker.conn.close()
            except OSError:
                pass
            # The dead incarnation's counters are discarded; the
            # partition's effective view falls back to its checkpoint
            # baseline until replay rebuilds the rest.
            checkpoint = self._journals[wid].checkpoint
            worker.metrics = FleetMetrics()
            worker.restart_base = combine_metrics(
                checkpoint.metrics, FleetMetrics()
            )
            worker.registry_base = checkpoint.registry
            tid = self._recovery.worker_died(wid, self._recovering_count())
            thread = threading.Thread(
                target=self._recover_worker,
                args=(wid, tid, perf_counter()),
                daemon=True,
                name=f"fleet-recovery-{wid}",
            )
            self._recovery_threads[wid] = thread
            thread.start()
            return True

    def _recovering_count(self) -> int:
        return sum(
            1 for worker in self._workers
            if worker.status == WORKER_RECOVERING
        )

    def _raise_unavailable(self, wid: int, died: bool):
        """The canonical error for a worker that cannot serve right now."""
        if self._workers[wid].status == WORKER_RECOVERING:
            raise FleetRecoveringError(
                f"fleet worker {wid} is recovering; its shard partition is "
                "being rehydrated from checkpoint + journal — retry shortly",
                worker_id=wid,
                retry_after=self._policy.retry_after_s,
            ) from None
        if died:
            raise DeploymentError(
                f"fleet worker {wid} died mid-request; "
                "its shard partition is lost"
            ) from None
        raise DeploymentError(
            f"fleet worker {wid} is not available (process terminated); "
            "its shard partition is lost"
        )

    def _send(self, wid: int, request: tuple) -> None:
        worker = self._workers[wid]
        if self._closed:
            raise DeploymentError("fleet is closed")
        if not worker.alive:
            self._raise_unavailable(wid, died=False)
        try:
            worker.conn.send(request)
        except (BrokenPipeError, OSError):
            self._worker_failed(wid)
            self._raise_unavailable(wid, died=True)

    def _recv(self, wid: int):
        worker = self._workers[wid]
        try:
            status, payload, metrics = worker.conn.recv()
        except (EOFError, OSError):
            self._worker_failed(wid)
            self._raise_unavailable(wid, died=True)
        if metrics is not None:
            worker.metrics = metrics
        if status == "ok":
            return payload
        if status == "err":
            # A DeploymentError crossing the boundary keeps its exact
            # message: the caller sees the same error shape in-process
            # and out.
            raise DeploymentError(payload)
        self._worker_failed(wid)
        raise DeploymentError(f"fleet worker {wid} failed: {payload}")

    def _request(self, wid: int, *request):
        self._send(wid, request)
        return self._recv(wid)

    def _fan_out(self, requests: dict[int, tuple]) -> list:
        """Send to every addressed worker first, then collect replies.

        The send/collect split is where the parallelism comes from: all
        workers chew their partitions concurrently.  Errors (worker
        death, worker-side rejections) are collected so one failing
        worker never strands traffic already fanned out to the others,
        then re-raised as one :class:`DeploymentError` — or as the
        transient :class:`FleetRecoveringError` when a recovery window
        was the only failure.
        """
        sent: list[int] = []
        errors: list[str] = []
        payloads: list = []
        recovering: Optional[FleetRecoveringError] = None
        for wid, request in requests.items():
            try:
                self._send(wid, request)
            except FleetRecoveringError as exc:
                recovering = recovering or exc
                errors.append(str(exc))
            except DeploymentError as exc:
                errors.append(str(exc))
            else:
                sent.append(wid)
        for wid in sent:
            try:
                payloads.append(self._recv(wid))
            except FleetRecoveringError as exc:
                recovering = recovering or exc
                errors.append(str(exc))
            except DeploymentError as exc:
                errors.append(str(exc))
        if errors:
            if recovering is not None and len(errors) == 1:
                raise recovering
            raise DeploymentError("; ".join(errors))
        return payloads

    # -- journal plumbing ----------------------------------------------

    def _journal_record(self, wid: int, request: tuple, events: int) -> None:
        """Journal one *acknowledged* lifecycle operation (write-behind)."""
        if not self._journal_enabled:
            return
        with self._lock:
            self._journals[wid].append(request, events)
        self._maybe_checkpoint((wid,))

    def _dispatch_fan_out(
        self, requests: dict[int, tuple], counts: dict[int, int]
    ) -> None:
        """Fan out bulk dispatch with write-ahead journaling.

        Every share is journaled *before* it is sent, so a worker dying
        mid-batch (or already recovering) costs the caller nothing: the
        share is applied by journal replay instead, and the call returns
        as accepted.  Unsupervised fleets keep the historical behaviour
        (a :class:`DeploymentError` naming the dead worker, after the
        surviving shares were dispatched in full).
        """
        if self._journal_enabled:
            with self._lock:
                for wid, request in requests.items():
                    self._journals[wid].append(request, counts.get(wid, 0))
        sent: list[int] = []
        errors: list[str] = []
        for wid, request in requests.items():
            if self._workers[wid].status == WORKER_RECOVERING:
                continue  # journaled: replay applies this share
            try:
                self._send(wid, request)
            except FleetRecoveringError:
                continue
            except DeploymentError as exc:
                errors.append(str(exc))
            else:
                sent.append(wid)
        for wid in sent:
            try:
                self._recv(wid)
            except FleetRecoveringError:
                continue
            except DeploymentError as exc:
                errors.append(str(exc))
        if errors:
            raise DeploymentError("; ".join(errors))
        self._maybe_checkpoint(requests)

    def _maybe_checkpoint(self, wids) -> None:
        """Checkpoint workers whose journal crossed the cadence.

        Runs after the dispatch round trip (off the dispatch clock); a
        worker that slipped into recovery meanwhile is skipped — the
        recovery finalizer takes its own fresh checkpoint.
        """
        if not self._journal_enabled:
            return
        for wid in wids:
            with self._lock:
                due = (
                    self._workers[wid].alive
                    and self._journals[wid].events >= self._checkpoint_every
                )
            if due:
                try:
                    self._take_checkpoint(wid)
                except DeploymentError:
                    pass  # death/recovery mid-checkpoint; replay covers it

    def _take_checkpoint(self, wid: int) -> None:
        """Checkpoint one live worker's partition and truncate its journal."""
        worker = self._workers[wid]
        layout = self._request(wid, "checkpoint")
        baseline = combine_metrics(worker.restart_base, worker.metrics)
        registry = None
        if self._telemetry_enabled:
            registry = combine_registries(
                worker.registry_base, self._request(wid, "registry")
            )
        checkpoint = replace(layout, metrics=baseline, registry=registry)
        with self._lock:
            self._journals[wid].truncate(checkpoint)
        self._recovery.checkpointed(wid)

    # -- the supervisor (runs on a background thread per incident) -----

    def _recover_worker(self, wid: int, tid: int, died_at: float) -> None:
        """Respawn → rehydrate → replay → swap, with bounded retry."""
        policy = self._policy
        delay = policy.backoff_s
        # The old incarnation may still be running (a "fail" reply marks
        # the worker failed without the process exiting) — remove it
        # before its replacement arrives.
        old = self._workers[wid].process
        _reap(old, timeout=self._join_timeout)
        last_error: Optional[Exception] = None
        for attempt in range(1, policy.max_restarts + 1):
            if self._closing:
                last_error = DeploymentError("fleet is closing")
                break
            handle: Optional[_Worker] = None
            try:
                handle = self._launch_worker()
                status, payload, metrics = handle.conn.recv()
                if status != "ok":
                    raise DeploymentError(
                        f"respawned worker {wid} failed to start: {payload}"
                    )
                self._recovery.respawned(tid, wid, attempt)
                self._rehydrate_and_replay(wid, handle, tid, died_at)
            except (DeploymentError, EOFError, OSError) as exc:
                last_error = exc
                if handle is not None:
                    try:
                        handle.conn.close()
                    except OSError:
                        pass
                    _reap(handle.process, timeout=self._join_timeout)
                sleep(delay)
                delay *= policy.backoff_factor
                continue
            return
        with self._lock:
            self._workers[wid].status = WORKER_DEAD
            self._recovery_threads.pop(wid, None)
        self._recovery.failed(
            tid, wid, str(last_error), self._recovering_count()
        )

    def _rehydrate_and_replay(
        self, wid: int, handle: _Worker, tid: int, died_at: float
    ) -> None:
        """Rebuild one partition on a fresh worker and swap it live.

        The journal may keep growing while this runs (dispatch to a
        recovering partition is journaled-and-deferred), so replay
        chases a cursor; once the journal is drained the finalization —
        fresh checkpoint, journal truncation, handle swap — happens
        under the fleet lock so no entry can slip in between.
        """
        journal = self._journals[wid]
        checkpoint = journal.checkpoint
        handle.restart_base = combine_metrics(checkpoint.metrics, FleetMetrics())
        handle.registry_base = checkpoint.registry
        self._worker_roundtrip(
            handle,
            ("rehydrate", replace(checkpoint, metrics=FleetMetrics(), registry=None)),
        )
        replayed_ops = 0
        replayed_events = 0
        cursor = 0
        while True:
            with self._lock:
                pending = journal.ops[cursor:]
                if not pending:
                    self._recovery.replayed(
                        tid, wid, replayed_ops, replayed_events
                    )
                    self._finalize_recovery(wid, handle, tid, died_at)
                    break
            for request, events in pending:
                payload = self._worker_roundtrip(
                    handle, request, tolerate_err=True
                )
                self._verify_replay(wid, request, payload)
                replayed_ops += 1
                replayed_events += events
            cursor += len(pending)

    def _finalize_recovery(
        self, wid: int, handle: _Worker, tid: int, died_at: float
    ) -> None:
        """Checkpoint the rebuilt partition and swap the handle in.

        Caller holds the fleet lock with an empty replay backlog: the
        round trips here are to the new worker only, and no caller can
        append to the journal or observe a half-swapped worker while
        they run.  The incident's resume record (and its MTTR
        observation) is written *before* the swap, so a caller returning
        from :meth:`await_recovery` always finds the full
        die→respawn→replay→resume chain in the trace log.
        """
        layout = self._worker_roundtrip(handle, ("checkpoint",))
        baseline = combine_metrics(handle.restart_base, handle.metrics)
        registry = handle.registry_base
        if self._telemetry_enabled:
            registry = combine_registries(
                handle.registry_base,
                self._worker_roundtrip(handle, ("registry",)),
            )
        self._journals[wid].truncate(
            replace(layout, metrics=baseline, registry=registry)
        )
        self._recovery.checkpointed(wid)
        handle.status = WORKER_LIVE
        self._recovery_threads.pop(wid, None)
        self._recovery.resumed(
            tid, wid, perf_counter() - died_at, self._recovering_count() - 1
        )
        self._workers[wid] = handle

    def _worker_roundtrip(self, handle: _Worker, request: tuple, tolerate_err=False):
        """One request/reply on a not-yet-swapped worker handle.

        Replay tolerates ``err`` replies: a journaled batch that was
        rejected the first time (unknown message on the deferred-
        validation path) rejects identically on replay — that *is* the
        original behaviour, not a recovery failure.
        """
        handle.conn.send(request)
        status, payload, metrics = handle.conn.recv()
        if metrics is not None:
            handle.metrics = metrics
        if status == "ok":
            return payload
        if status == "err" and tolerate_err:
            return None
        raise DeploymentError(
            f"worker replay rejected {request[0]!r}: {payload}"
        )

    def _verify_replay(self, wid: int, request: tuple, payload) -> None:
        """Replayed spawns must land on their original slots.

        Slot assignment is a deterministic function of the rehydrated
        layout and the journaled operation sequence; a mismatch means
        the journal and the population map diverged, and the recovery
        attempt must fail loudly rather than serve a scrambled
        partition.
        """
        op = request[0]
        if op == "spawn" and payload is not None:
            if self._slots.get(request[1]) != (wid, payload):
                raise DeploymentError(
                    f"replay slot drift for instance {request[1]!r}"
                )
        elif op == "spawn_keys" and payload is not None:
            for key, slot in zip(request[1], payload):
                if self._slots.get(key) != (wid, slot):
                    raise DeploymentError(
                        f"replay slot drift for instance {key!r}"
                    )

    def _locate(self, key: str) -> tuple[int, int]:
        entry = self._slots.get(key)
        if entry is None:
            raise DeploymentError(f"unknown instance {key!r}")
        return entry

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def machine(self) -> StateMachine:
        return self._machine

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def backend(self) -> str:
        return self._backend_kind

    @property
    def log_policy(self) -> str:
        return self._log_policy

    @property
    def auto_recycle(self) -> bool:
        return self._auto_recycle

    @property
    def workers(self) -> int:
        return len(self._workers)

    @property
    def live_workers(self) -> int:
        return sum(1 for worker in self._workers if worker.alive)

    @property
    def journal_enabled(self) -> bool:
        return self._journal_enabled

    @property
    def recovery_policy(self) -> RecoveryPolicy:
        return self._policy

    @property
    def state_map(self) -> Optional[dict]:
        if self.opt_report is None or self.opt_report.identity:
            return None
        return self.opt_report.state_map

    @property
    def metrics(self) -> FleetMetrics:
        """Merged counters of every worker.

        Each worker contributes its *effective* view — restart baseline
        plus current incarnation — so the fleet-wide counters are
        monotonic across worker respawns.  A partition mid-recovery
        reports its checkpoint baseline (journaled-but-unreplayed
        traffic lands when replay completes); dead workers keep their
        last effective values.
        """
        merged = FleetMetrics()
        for worker in self._workers:
            merged.merge(combine_metrics(worker.restart_base, worker.metrics))
        return merged

    def telemetry_registry(self) -> Optional[MetricsRegistry]:
        """One registry folding every worker's histograms together.

        Includes each worker's checkpoint baseline (so counters never
        move backwards across a die→respawn cycle) and, on supervised
        fleets, the recovery plane's own instruments.  Returns ``None``
        only when the fleet is entirely uninstrumented (no telemetry,
        no journal).
        """
        if not self._telemetry_enabled and self._recovery is None:
            return None
        merged = MetricsRegistry()
        if self._recovery is not None:
            merged.merge(self._recovery.registry)
        if self._telemetry_enabled:
            for wid, worker in enumerate(self._workers):
                if worker.registry_base is not None:
                    merged.merge(worker.registry_base)
                if worker.alive:
                    registry = self._request(wid, "registry")
                    if registry is not None:
                        merged.merge(registry)
        return merged

    def recovery_registry(self) -> Optional[MetricsRegistry]:
        """The supervisor's instruments (``None`` when ``journal=False``)."""
        return None if self._recovery is None else self._recovery.registry

    @property
    def recovery_trace(self):
        """Die→respawn→replay→resume trace log (``None`` unsupervised)."""
        return None if self._recovery is None else self._recovery.trace

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, key: str) -> bool:
        return key in self._slots

    def worker_of(self, key: str) -> int:
        """The worker a session key routes to (stable across fleets)."""
        return shard_of(key, len(self._workers))

    def worker_pids(self) -> list[Optional[int]]:
        """Current worker process ids (chaos harnesses aim signals here)."""
        return [worker.process.pid for worker in self._workers]

    def worker_states(self) -> list[str]:
        """Each worker's lifecycle state: ``live``/``recovering``/``dead``."""
        return [worker.status for worker in self._workers]

    def check_workers(self) -> list[str]:
        """Poll worker processes, starting recovery for silent deaths.

        A worker that was SIGKILLed between requests never surfaces as a
        pipe error until the next request touches it; health checks call
        this to detect (and, supervised, heal) such deaths proactively.
        Returns the post-check :meth:`worker_states`.
        """
        for wid, worker in enumerate(self._workers):
            if worker.alive and not worker.process.is_alive():
                self._worker_failed(wid)
        return self.worker_states()

    def is_recovering(self) -> bool:
        """Whether any partition is currently rehydrating."""
        with self._lock:
            return self._recovering_count() > 0

    def await_recovery(self, timeout: Optional[float] = None) -> bool:
        """Block until no partition is recovering (or ``timeout`` runs out).

        Returns ``True`` when the fleet is whole — every worker either
        live or permanently dead — ``False`` on timeout.  The idiomatic
        caller retry after a :class:`FleetRecoveringError`::

            fleet.await_recovery(timeout=err.retry_after * 10)
            fleet.deliver(key, message)
        """
        deadline = None if timeout is None else perf_counter() + timeout
        while True:
            if not self.is_recovering():
                return True
            if deadline is not None and perf_counter() >= deadline:
                return False
            sleep(0.002)

    # ------------------------------------------------------------------
    # instance lifecycle
    # ------------------------------------------------------------------

    def spawn(self, key: str) -> int:
        """Create one instance on its owning worker; returns the
        worker-local slot (slots are not fleet-unique — address
        instances by key)."""
        if key in self._slots:
            raise DeploymentError(f"instance {key!r} already exists")
        wid = self.worker_of(key)
        slot = self._request(wid, "spawn", key)
        self._slots[key] = (wid, slot)
        self._journal_record(wid, ("spawn", key), 0)
        return slot

    def spawn_many(self, count: int, prefix: str = "session") -> list[str]:
        """Create ``count`` instances with generated session keys, batched
        per worker (one round trip per worker, not per key).

        Keys that already exist are skipped rather than re-spawned: the
        generated key sequence is deterministic, so this is the retry
        path after a :class:`FleetRecoveringError` left a previous call
        partially applied — the retry finishes the job exactly once.
        """
        keys = session_keys(count, prefix)
        per_worker: dict[int, list[str]] = {}
        for key in keys:
            if key in self._slots:
                continue
            per_worker.setdefault(self.worker_of(key), []).append(key)
        sent: list[int] = []
        errors: list[str] = []
        recovering: Optional[FleetRecoveringError] = None
        for wid, worker_keys in per_worker.items():
            try:
                self._send(wid, ("spawn_keys", worker_keys))
            except FleetRecoveringError as exc:
                recovering = recovering or exc
                errors.append(str(exc))
            except DeploymentError as exc:
                errors.append(str(exc))
            else:
                sent.append(wid)
        for wid in sent:
            try:
                slots = self._recv(wid)
            except FleetRecoveringError as exc:
                recovering = recovering or exc
                errors.append(str(exc))
            except DeploymentError as exc:
                errors.append(str(exc))
            else:
                for key, slot in zip(per_worker[wid], slots):
                    self._slots[key] = (wid, slot)
                self._journal_record(wid, ("spawn_keys", per_worker[wid]), 0)
        if errors:
            if recovering is not None and len(errors) == 1:
                raise recovering
            raise DeploymentError("; ".join(errors))
        return keys

    def despawn(self, key: str) -> None:
        wid, _slot = self._locate(key)
        self._request(wid, "despawn", key)
        del self._slots[key]
        self._journal_record(wid, ("despawn", key), 0)

    def recycle(self, key: str) -> None:
        wid, _slot = self._locate(key)
        self._request(wid, "recycle", key)
        self._journal_record(wid, ("recycle", key), 0)

    # ------------------------------------------------------------------
    # per-instance observation
    # ------------------------------------------------------------------

    def state_name(self, key: str) -> str:
        return self._request(self._locate(key)[0], "state", key)

    def action_count(self, key: str) -> int:
        return self._request(self._locate(key)[0], "action_count", key)

    def actions_since(self, key: str, start: int = 0) -> tuple[str, ...]:
        return self._request(self._locate(key)[0], "actions_since", key, start)

    def trace(self, key: str) -> InstanceSnapshot:
        return self._request(self._locate(key)[0], "trace", key)

    def is_finished(self, key: str) -> bool:
        return self._request(self._locate(key)[0], "finished", key)

    # ------------------------------------------------------------------
    # event intake and dispatch
    # ------------------------------------------------------------------

    def encode(self, events) -> EncodedFleetSchedule:
        """Intern ``(key, message)`` events into per-worker flat buffers.

        Same validation contract as the engine's ``encode``: unknown
        keys or messages raise one canonical :class:`DeploymentError`
        naming them.
        """
        parts = [array("q") for _ in self._workers]
        slots = self._slots
        columns = self._columns
        rejected: list[tuple[str, str]] = []
        for key, message in events:
            entry = slots.get(key)
            col = columns.get(message)
            if entry is None or col is None:
                rejected.append((key, message))
                continue
            wid, slot = entry
            part = parts[wid]
            part.append(slot)
            part.append(col)
        if rejected:
            raise_rejected(rejected)
        return EncodedFleetSchedule(tuple(parts))

    def encode_flat(self, events) -> EncodedFleetSchedule:
        """Alias of :meth:`encode` — the partitioned schedule is already
        flat ``array('q')`` buffers."""
        return self.encode(events)

    def post(
        self,
        key: str,
        message: str,
        source: Optional[str] = None,
        trace_id: Optional[int] = None,
    ) -> bool:
        """Buffer one event parent-side for its owning worker.

        Validation timing mirrors the in-process engine: encoded intake
        interns here, so unknown instances/messages raise the canonical
        errors at post time; naive/batched intake accepts anything and
        lets the drain's dispatch pass reject bad events (same message
        shape, one drain later).  The buffered traffic flushes on the
        next :meth:`drain_all` / :meth:`run`.  Mailboxes are unbounded —
        ``source``/``trace_id`` are accepted for protocol compatibility
        but not traced across the process boundary.  Posting never
        blocks on a recovering partition: the buffer is parent-side and
        the flush defers through the journal.
        """
        if self._encoded_intake:
            wid, slot = self._locate(key)
            col = self._columns.get(message)
            if col is None:
                raise DeploymentError(f"unknown message {message!r}")
            buffer = self._pending[wid]
            buffer.append(slot)
            buffer.append(col)
        else:
            wid = self.worker_of(key)
            self._pending[wid].append((key, message))
        self._pending_counts[wid] += 1
        return True

    def deliver(self, key: str, message: str) -> bool:
        """Dispatch one event immediately on its owning worker."""
        wid, _slot = self._locate(key)
        result = self._request(wid, "deliver", key, message)
        self._journal_record(wid, ("deliver", key, message), 1)
        return result

    def drain_all(self) -> int:
        """Flush every worker's pending buffer; returns events flushed.

        On a supervised fleet a recovering worker's share is journaled
        and applied by replay instead of being dispatched directly — the
        events still count as flushed (they have left the pending
        buffer and are durably scheduled).
        """
        requests: dict[int, tuple] = {}
        counts: dict[int, int] = {}
        total = 0
        for wid, buffer in enumerate(self._pending):
            if not buffer:
                continue
            op = "run_flat" if self._encoded_intake else "run_events"
            requests[wid] = (op, buffer)
            counts[wid] = self._pending_counts[wid]
            total += self._pending_counts[wid]
            self._pending[wid] = self._new_buffer()
            self._pending_counts[wid] = 0
        if requests:
            self._dispatch_fan_out(requests, counts)
        return total

    def run(self, events, encoding: str = "auto") -> FleetMetrics:
        """Fan a workload out to the workers; returns merged metrics.

        Accepts ``(key, message)`` batches (``"events"``/``"auto"``) or
        an :class:`EncodedFleetSchedule` from :meth:`encode` /
        :meth:`encode_flat` (``"pairs"``/``"flat"``/``"auto"``).  Raw
        ``(slot, column)`` schedules are meaningless across fleets and
        are rejected.  Pending posted traffic flushes first (FIFO), and
        per-key order is preserved — a key maps to one worker.
        """
        if encoding not in ENCODINGS:
            raise DeploymentError(
                f"unknown encoding {encoding!r}; choose from {ENCODINGS}"
            )
        self.drain_all()
        if isinstance(events, EncodedFleetSchedule):
            if len(events.parts) != len(self._workers):
                raise DeploymentError(
                    "schedule was encoded for a fleet with "
                    f"{len(events.parts)} worker(s); this fleet has "
                    f"{len(self._workers)}"
                )
            requests = {
                wid: ("run_flat", part)
                for wid, part in enumerate(events.parts)
                if part
            }
            if requests:
                self._dispatch_fan_out(
                    requests,
                    {wid: len(part) // 2 for wid, (_, part) in requests.items()},
                )
            return self.metrics
        if encoding in ("pairs", "flat"):
            raise DeploymentError(
                f"encoding {encoding!r} on a multiprocess fleet needs an "
                "EncodedFleetSchedule from this fleet's encode()/"
                "encode_flat(); raw slot schedules are worker-local"
            )
        # String events: validate parent-side (canonical error shape),
        # partition by owning worker, fan out, then raise for rejects —
        # valid traffic is never stranded behind bad events.
        if self._encoded_intake:
            parts: list = [None] * len(self._workers)
            slots = self._slots
            columns = self._columns
            rejected: list[tuple[str, str]] = []
            for key, message in events:
                entry = slots.get(key)
                col = columns.get(message)
                if entry is None or col is None:
                    rejected.append((key, message))
                    continue
                wid, slot = entry
                part = parts[wid]
                if part is None:
                    part = parts[wid] = array("q")
                part.append(slot)
                part.append(col)
            requests = {
                wid: ("run_flat", part)
                for wid, part in enumerate(parts)
                if part
            }
            counts = {
                wid: len(part) // 2 for wid, (_, part) in requests.items()
            }
        else:
            batches: list = [None] * len(self._workers)
            slots = self._slots
            columns = self._columns
            rejected = []
            for key, message in events:
                entry = slots.get(key)
                if entry is None or message not in columns:
                    rejected.append((key, message))
                    continue
                batch = batches[entry[0]]
                if batch is None:
                    batch = batches[entry[0]] = []
                batch.append((key, message))
            requests = {
                wid: ("run_events", batch)
                for wid, batch in enumerate(batches)
                if batch
            }
            counts = {wid: len(batch) for wid, (_, batch) in requests.items()}
        if requests:
            self._dispatch_fan_out(requests, counts)
        if rejected:
            raise_rejected(rejected)
        return self.metrics

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self, allow_partial: bool = False) -> FleetSnapshot:
        """One portable snapshot of the whole population.

        Pending parent-side traffic flushes first, then every worker
        snapshots its partition; the merged
        :class:`~repro.serve.fleet.FleetSnapshot` restores into any
        fleet of the same machine — including a single-process
        :class:`~repro.serve.fleet.FleetEngine`.

        With a dead worker the strict default refuses (a snapshot must
        not silently lie about the population); ``allow_partial=True``
        instead captures the surviving partitions and lists the lost
        keys in the snapshot's ``lost`` manifest.  On a supervised fleet
        the strict path first waits out any in-flight recovery, so a
        snapshot taken moments after a worker death is still whole.
        """
        self.drain_all()
        # Detect silent deaths first: a SIGKILLed worker that has not
        # been touched since would otherwise surface as a mid-request
        # pipe error instead of the canonical refusal/manifest.
        self.check_workers()
        if self._journal_enabled and not allow_partial:
            self.await_recovery()
        unavailable = [
            wid for wid, worker in enumerate(self._workers) if not worker.alive
        ]
        if unavailable and not allow_partial:
            raise DeploymentError(
                f"cannot snapshot: worker(s) {unavailable} are not available; "
                "their shard partitions are lost "
                "(snapshot(allow_partial=True) captures the survivors)"
            )
        requests = {
            wid: ("snapshot",)
            for wid in range(len(self._workers))
            if self._workers[wid].alive
        }
        payloads = self._fan_out(requests)
        instances = tuple(
            chain.from_iterable(snap.instances for snap in payloads)
        )
        lost = tuple(
            key for key, (wid, _slot) in self._slots.items()
            if wid in unavailable
        )
        return FleetSnapshot(
            machine_name=self._machine.name, instances=instances, lost=lost
        )

    def restore(
        self, snapshot: FleetSnapshot, allow_partial: bool = False
    ) -> None:
        """Rebuild the population from a snapshot, partitioned by routing.

        The current population and any pending parent-side traffic are
        discarded; each worker restores the partition its keys route to,
        so a snapshot taken under any worker/shard layout lands
        correctly here.  A *partial* snapshot (non-empty ``lost``
        manifest) is refused unless ``allow_partial=True`` — restoring
        one silently drops the lost instances.
        """
        if snapshot.machine_name != self._machine.name:
            raise DeploymentError(
                f"snapshot is for machine {snapshot.machine_name!r}, "
                f"this fleet serves {self._machine.name!r}"
            )
        if getattr(snapshot, "lost", ()) and not allow_partial:
            raise DeploymentError(
                f"snapshot is partial: {len(snapshot.lost)} instance(s) from "
                "lost partitions are missing; pass allow_partial=True to "
                "restore the survivors"
            )
        if self._journal_enabled:
            self.await_recovery()
        per_worker: list[list[InstanceSnapshot]] = [
            [] for _ in self._workers
        ]
        for inst in snapshot.instances:
            per_worker[self.worker_of(inst.key)].append(inst)
        requests = {
            wid: (
                "restore",
                FleetSnapshot(
                    machine_name=snapshot.machine_name,
                    instances=tuple(instances),
                ),
            )
            for wid, instances in enumerate(per_worker)
        }
        self._pending = [self._new_buffer() for _ in self._workers]
        self._pending_counts = [0] * len(self._workers)
        sent = list(requests)
        payloads = self._fan_out(requests)
        self._slots = {}
        for wid, slot_of in zip(sent, payloads):
            for key, slot in slot_of.items():
                self._slots[key] = (wid, slot)
        # A restore rewrites every partition wholesale: journals recording
        # the pre-restore history are obsolete, so re-baseline them.
        if self._journal_enabled:
            for wid in range(len(self._workers)):
                if self._workers[wid].alive:
                    self._take_checkpoint(wid)

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop every worker process and release the pipes (idempotent).

        Shutdown escalates rather than hangs: each process gets
        ``join(join_timeout)``, then ``terminate()`` (SIGTERM), then
        ``kill()`` (SIGKILL) — a worker wedged in uninterruptible user
        code can delay ``close()`` but never deadlock it.
        """
        if self._closed:
            return
        self._closing = True
        for thread in list(self._recovery_threads.values()):
            thread.join(timeout=max(self._join_timeout, 1.0))
        stopping = []
        for worker in self._workers:
            if not worker.alive:
                continue
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                worker.status = WORKER_DEAD
                continue
            stopping.append(worker)
        for worker in stopping:
            try:
                status, payload, metrics = worker.conn.recv()
                if metrics is not None:
                    worker.metrics = metrics
            except (EOFError, OSError):
                pass
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.close()
            except OSError:
                pass
            _reap(worker.process, timeout=self._join_timeout)
            worker.status = WORKER_DEAD
        # Invoke (not detach) the finalizer: it sweeps every process this
        # fleet ever started, catching respawns an interrupted recovery
        # left behind.
        self._finalizer()

    def __enter__(self) -> "MultiprocessFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _reap(process, timeout: float = 5.0) -> None:
    """Join a worker process, escalating terminate → kill, never hanging."""
    process.join(timeout=timeout)
    if process.is_alive():
        process.terminate()
        process.join(timeout=timeout)
    if process.is_alive():
        process.kill()
        process.join(timeout=timeout)


def _terminate_workers(processes) -> None:
    """GC fallback: never leave orphaned worker processes behind."""
    for process in processes:
        if process.is_alive():
            process.terminate()
