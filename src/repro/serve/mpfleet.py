"""Process-parallel fleet: shards pinned to worker processes.

Every dispatch plane built so far runs on one CPU core; this module is
the scale-out step.  A :class:`MultiprocessFleet` partitions the session
key space across ``N`` worker processes with the same stable CRC-32
routing the in-process engine uses for shards
(:func:`~repro.serve.store.shard_of` over the worker count), so one key
always lives in exactly one worker and per-key event order is preserved
end to end.  Each worker owns a full private
:class:`~repro.serve.fleet.FleetEngine` — the columnar
:class:`~repro.serve.store.InstanceStore` columns are already
shard-independent state, so nothing is shared between processes.

The wire protocol is deliberately small.  Parent and worker speak over
one duplex :func:`multiprocessing.Pipe` with request tuples
``(op, *operands)`` and reply envelopes
``(status, payload, FleetMetrics)``: every reply piggybacks the worker's
current counters, so the parent's merged :attr:`MultiprocessFleet.metrics`
view (via :meth:`~repro.serve.metrics.FleetMetrics.merge`) is always
current without extra round trips.  Bulk dispatch fans out *flat*
``array('q')`` schedules — an ``array`` pickles as one memcpy, so the
per-event IPC cost is two machine ints, not two Python objects — and the
parent interns keys and messages itself (it builds the same
:class:`~repro.opt.IndexedMachine` the workers do), which keeps the
canonical unknown instance/message :class:`DeploymentError` shape
identical on both sides of the process boundary.

Telemetry follows the sharding design the obs plane documents: each
worker feeds its own :class:`~repro.obs.telemetry.FleetTelemetry`
(tracing off — trace logs do not cross processes) and
:meth:`MultiprocessFleet.telemetry_registry` folds the worker registries
together with the bucketwise
:meth:`~repro.obs.metrics.MetricsRegistry.merge`, so latency histograms
aggregate exactly.

Failure semantics: a worker that dies mid-batch (pipe hits
``EOFError``/``BrokenPipeError``) is marked dead and the operation
raises a :class:`DeploymentError` naming it; traffic already fanned out
to the surviving workers is dispatched in full first, so the surviving
shard partitions stay internally consistent and keep serving.  The dead
worker's partition is lost — restore a snapshot to recover it.

Unsupported relative to the in-process engine: bounded mailboxes and
overflow policies (:meth:`MultiprocessFleet.post` buffers parent-side
and :meth:`MultiprocessFleet.drain_all` flushes), and live trace logs.
"""

from __future__ import annotations

import multiprocessing
import weakref
from array import array
from itertools import chain
from typing import Optional

from repro.core.errors import DeploymentError
from repro.core.machine import StateMachine
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import FleetTelemetry
from repro.opt import IndexedMachine, as_pipeline
from repro.serve.adapter import BACKENDS
from repro.serve.fleet import (
    DISPATCH_MODES,
    ENCODINGS,
    FleetEngine,
    FleetSnapshot,
    _ENCODED_MODES,
    raise_rejected,
)
from repro.serve.metrics import FleetMetrics
from repro.serve.store import LOG_POLICIES, InstanceSnapshot, shard_of
from repro.serve.vector import require_numpy
from repro.serve.workload import session_keys

__all__ = ["EncodedFleetSchedule", "MultiprocessFleet"]


class EncodedFleetSchedule:
    """A pre-encoded schedule partitioned by worker.

    The multiprocess counterpart of the engine's ``(slot, column)``
    schedules: :meth:`MultiprocessFleet.encode` interns every event to
    its owning worker's flat ``[slot, col, ...]`` buffer once, so a
    repeated :meth:`MultiprocessFleet.run` pays only the fan-out.
    Schedules are fleet-specific (slot ids live in worker stores);
    encode against the fleet that will run the schedule.
    """

    __slots__ = ("parts",)

    def __init__(self, parts: tuple):
        self.parts = parts

    def __len__(self) -> int:
        return sum(len(part) for part in self.parts) // 2

    def __bool__(self) -> bool:
        return any(self.parts)

    def __add__(self, other: "EncodedFleetSchedule") -> "EncodedFleetSchedule":
        if len(self.parts) != len(other.parts):
            raise DeploymentError(
                "cannot concatenate schedules encoded for different fleets"
            )
        return EncodedFleetSchedule(
            tuple(mine + theirs for mine, theirs in zip(self.parts, other.parts))
        )


class _Worker:
    """Parent-side handle of one worker process."""

    __slots__ = ("process", "conn", "alive", "metrics")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.alive = True
        self.metrics = FleetMetrics()


def _worker_main(conn, machine, options) -> None:
    """Worker process body: one private engine, one request loop."""
    try:
        telemetry = (
            FleetTelemetry(tracing=False) if options["telemetry"] else None
        )
        engine = FleetEngine(
            machine,
            shards=options["shards"],
            backend=options["backend"],
            mode=options["mode"],
            log_policy=options["log_policy"],
            optimize=options["optimize"],
            auto_recycle=options["auto_recycle"],
            telemetry=telemetry,
        )
    except Exception as exc:  # construction failed: report, then exit
        _reply(conn, "fail", f"{type(exc).__name__}: {exc}", None)
        conn.close()
        return
    _reply(conn, "ok", "ready", engine)
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        op = request[0]
        if op == "stop":
            _reply(conn, "ok", None, engine)
            break
        try:
            payload = _handle(engine, request)
        except DeploymentError as exc:
            _reply(conn, "err", str(exc), engine)
        except Exception as exc:
            _reply(conn, "fail", f"{type(exc).__name__}: {exc}", engine)
        else:
            _reply(conn, "ok", payload, engine)
    conn.close()


def _reply(conn, status: str, payload, engine) -> None:
    metrics = engine.metrics if engine is not None else None
    try:
        conn.send((status, payload, metrics))
    except (BrokenPipeError, OSError):
        pass


def _handle(engine: FleetEngine, request: tuple):
    """Execute one parent request against the worker's engine."""
    op = request[0]
    if op == "run_flat":
        engine.run(request[1], encoding="flat")
        return None
    if op == "run_events":
        engine.run(request[1], encoding="events")
        return None
    if op == "spawn":
        return engine.spawn(request[1])
    if op == "spawn_keys":
        return [engine.spawn(key) for key in request[1]]
    if op == "despawn":
        engine.despawn(request[1])
        return None
    if op == "recycle":
        engine.recycle(request[1])
        return None
    if op == "deliver":
        return engine.deliver(request[1], request[2])
    if op == "state":
        return engine.state_name(request[1])
    if op == "action_count":
        return engine.action_count(request[1])
    if op == "actions_since":
        return engine.actions_since(request[1], request[2])
    if op == "trace":
        return engine.trace(request[1])
    if op == "finished":
        return engine.is_finished(request[1])
    if op == "snapshot":
        return engine.snapshot()
    if op == "restore":
        engine.restore(request[1])
        return dict(engine.store.slot_of)
    if op == "registry":
        return engine.telemetry_registry()
    raise DeploymentError(f"unknown worker op {op!r}")


class MultiprocessFleet:
    """Host one machine's instances across worker processes.

    Satisfies the :class:`~repro.serve.api.Fleet` protocol; see the
    module docstring for routing, wire protocol and failure semantics.
    """

    def __init__(
        self,
        machine: StateMachine,
        *,
        workers: int = 2,
        shards: int = 4,
        backend: str = "interp",
        mode: str = "encoded",
        log_policy: str = "full",
        optimize=None,
        auto_recycle: bool = False,
        telemetry=None,
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise DeploymentError(f"workers must be >= 1, got {workers}")
        if mode not in DISPATCH_MODES:
            raise DeploymentError(
                f"unknown dispatch mode {mode!r}; choose from {DISPATCH_MODES}"
            )
        if backend not in BACKENDS:
            raise DeploymentError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        if log_policy not in LOG_POLICIES:
            raise DeploymentError(
                f"unknown log policy {log_policy!r}; choose from {LOG_POLICIES}"
            )
        if mode == "naive" and log_policy != "full":
            raise DeploymentError(
                "naive-mode backends always retain their action logs; "
                f"log_policy {log_policy!r} needs a table-dispatch mode"
            )
        if mode == "vector":
            # Workers inherit this interpreter's environment, so checking
            # the soft numpy dependency here surfaces the canonical error
            # before any worker process is forked.
            require_numpy("dispatch mode 'vector'")
        self._machine = machine
        self._mode = mode
        self._encoded_intake = mode in _ENCODED_MODES
        self._backend_kind = backend
        self._log_policy = log_policy
        self._auto_recycle = auto_recycle
        self._telemetry_enabled = telemetry is not None and telemetry is not False
        # The parent interns keys/messages itself, so it builds the same
        # (optimized) IR the workers will — column ids and state names
        # are deterministic functions of (machine, optimize).
        self._indexed = IndexedMachine.from_machine(machine)
        pipeline = as_pipeline(optimize)
        if pipeline is not None:
            self._indexed, self.opt_report = pipeline.run(self._indexed)
        else:
            self.opt_report = None
        self._columns = self._indexed.dispatch_table().message_index
        #: key -> (worker id, worker-local slot); the authoritative
        #: population map — workers never report membership back.
        self._slots: dict[str, tuple[int, int]] = {}
        self._closed = False

        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        ctx = multiprocessing.get_context(start_method)
        options = {
            "shards": shards,
            "backend": backend,
            "mode": mode,
            "log_policy": log_policy,
            "optimize": optimize,
            "auto_recycle": auto_recycle,
            "telemetry": self._telemetry_enabled,
        }
        self._workers: list[_Worker] = []
        for _ in range(workers):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, machine, options),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append(_Worker(process, parent_conn))
        self._finalizer = weakref.finalize(
            self, _terminate_workers, [w.process for w in self._workers]
        )
        # Startup handshake: surfaces worker-side construction errors
        # here instead of as an EOF on the first real request.
        for wid in range(workers):
            self._recv(wid)
        #: Parent-side pending buffers, one per worker (post() -> drain).
        self._pending = [self._new_buffer() for _ in range(workers)]
        self._pending_counts = [0] * workers

    # ------------------------------------------------------------------
    # wire helpers
    # ------------------------------------------------------------------

    def _new_buffer(self):
        return array("q") if self._encoded_intake else []

    def _mark_dead(self, wid: int) -> None:
        worker = self._workers[wid]
        worker.alive = False
        try:
            worker.conn.close()
        except OSError:
            pass

    def _send(self, wid: int, request: tuple) -> None:
        worker = self._workers[wid]
        if self._closed:
            raise DeploymentError("fleet is closed")
        if not worker.alive:
            raise DeploymentError(
                f"fleet worker {wid} is not available (process terminated); "
                "its shard partition is lost"
            )
        try:
            worker.conn.send(request)
        except (BrokenPipeError, OSError):
            self._mark_dead(wid)
            raise DeploymentError(
                f"fleet worker {wid} died mid-request; "
                "its shard partition is lost"
            ) from None

    def _recv(self, wid: int):
        worker = self._workers[wid]
        try:
            status, payload, metrics = worker.conn.recv()
        except (EOFError, OSError):
            self._mark_dead(wid)
            raise DeploymentError(
                f"fleet worker {wid} died mid-request; "
                "its shard partition is lost"
            ) from None
        if metrics is not None:
            worker.metrics = metrics
        if status == "ok":
            return payload
        if status == "err":
            # A DeploymentError crossing the boundary keeps its exact
            # message: the caller sees the same error shape in-process
            # and out.
            raise DeploymentError(payload)
        self._mark_dead(wid)
        raise DeploymentError(f"fleet worker {wid} failed: {payload}")

    def _request(self, wid: int, *request):
        self._send(wid, request)
        return self._recv(wid)

    def _fan_out(self, requests: dict[int, tuple]) -> list:
        """Send to every addressed worker first, then collect replies.

        The send/collect split is where the parallelism comes from: all
        workers chew their partitions concurrently.  Errors (worker
        death, worker-side rejections) are collected so one failing
        worker never strands traffic already fanned out to the others,
        then re-raised as one :class:`DeploymentError`.
        """
        sent: list[int] = []
        errors: list[str] = []
        payloads: list = []
        for wid, request in requests.items():
            try:
                self._send(wid, request)
            except DeploymentError as exc:
                errors.append(str(exc))
            else:
                sent.append(wid)
        for wid in sent:
            try:
                payloads.append(self._recv(wid))
            except DeploymentError as exc:
                errors.append(str(exc))
        if errors:
            raise DeploymentError("; ".join(errors))
        return payloads

    def _locate(self, key: str) -> tuple[int, int]:
        entry = self._slots.get(key)
        if entry is None:
            raise DeploymentError(f"unknown instance {key!r}")
        return entry

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def machine(self) -> StateMachine:
        return self._machine

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def backend(self) -> str:
        return self._backend_kind

    @property
    def log_policy(self) -> str:
        return self._log_policy

    @property
    def auto_recycle(self) -> bool:
        return self._auto_recycle

    @property
    def workers(self) -> int:
        return len(self._workers)

    @property
    def live_workers(self) -> int:
        return sum(1 for worker in self._workers if worker.alive)

    @property
    def state_map(self) -> Optional[dict]:
        if self.opt_report is None or self.opt_report.identity:
            return None
        return self.opt_report.state_map

    @property
    def metrics(self) -> FleetMetrics:
        """Merged counters of every worker (dead workers keep their last
        reported values)."""
        merged = FleetMetrics()
        for worker in self._workers:
            merged.merge(worker.metrics)
        return merged

    def telemetry_registry(self) -> Optional[MetricsRegistry]:
        """One registry folding every live worker's histograms together."""
        if not self._telemetry_enabled:
            return None
        merged = MetricsRegistry()
        for wid, worker in enumerate(self._workers):
            if not worker.alive:
                continue
            registry = self._request(wid, "registry")
            if registry is not None:
                merged.merge(registry)
        return merged

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, key: str) -> bool:
        return key in self._slots

    def worker_of(self, key: str) -> int:
        """The worker a session key routes to (stable across fleets)."""
        return shard_of(key, len(self._workers))

    # ------------------------------------------------------------------
    # instance lifecycle
    # ------------------------------------------------------------------

    def spawn(self, key: str) -> int:
        """Create one instance on its owning worker; returns the
        worker-local slot (slots are not fleet-unique — address
        instances by key)."""
        if key in self._slots:
            raise DeploymentError(f"instance {key!r} already exists")
        wid = self.worker_of(key)
        slot = self._request(wid, "spawn", key)
        self._slots[key] = (wid, slot)
        return slot

    def spawn_many(self, count: int, prefix: str = "session") -> list[str]:
        """Create ``count`` instances with generated session keys, batched
        per worker (one round trip per worker, not per key)."""
        keys = session_keys(count, prefix)
        per_worker: dict[int, list[str]] = {}
        for key in keys:
            per_worker.setdefault(self.worker_of(key), []).append(key)
        requests = {
            wid: ("spawn_keys", worker_keys)
            for wid, worker_keys in per_worker.items()
        }
        sent = list(requests)
        payloads = self._fan_out(requests)
        for wid, slots in zip(sent, payloads):
            for key, slot in zip(per_worker[wid], slots):
                self._slots[key] = (wid, slot)
        return keys

    def despawn(self, key: str) -> None:
        wid, _slot = self._locate(key)
        self._request(wid, "despawn", key)
        del self._slots[key]

    def recycle(self, key: str) -> None:
        wid, _slot = self._locate(key)
        self._request(wid, "recycle", key)

    # ------------------------------------------------------------------
    # per-instance observation
    # ------------------------------------------------------------------

    def state_name(self, key: str) -> str:
        return self._request(self._locate(key)[0], "state", key)

    def action_count(self, key: str) -> int:
        return self._request(self._locate(key)[0], "action_count", key)

    def actions_since(self, key: str, start: int = 0) -> tuple[str, ...]:
        return self._request(self._locate(key)[0], "actions_since", key, start)

    def trace(self, key: str) -> InstanceSnapshot:
        return self._request(self._locate(key)[0], "trace", key)

    def is_finished(self, key: str) -> bool:
        return self._request(self._locate(key)[0], "finished", key)

    # ------------------------------------------------------------------
    # event intake and dispatch
    # ------------------------------------------------------------------

    def encode(self, events) -> EncodedFleetSchedule:
        """Intern ``(key, message)`` events into per-worker flat buffers.

        Same validation contract as the engine's ``encode``: unknown
        keys or messages raise one canonical :class:`DeploymentError`
        naming them.
        """
        parts = [array("q") for _ in self._workers]
        slots = self._slots
        columns = self._columns
        rejected: list[tuple[str, str]] = []
        for key, message in events:
            entry = slots.get(key)
            col = columns.get(message)
            if entry is None or col is None:
                rejected.append((key, message))
                continue
            wid, slot = entry
            part = parts[wid]
            part.append(slot)
            part.append(col)
        if rejected:
            raise_rejected(rejected)
        return EncodedFleetSchedule(tuple(parts))

    def encode_flat(self, events) -> EncodedFleetSchedule:
        """Alias of :meth:`encode` — the partitioned schedule is already
        flat ``array('q')`` buffers."""
        return self.encode(events)

    def post(
        self,
        key: str,
        message: str,
        source: Optional[str] = None,
        trace_id: Optional[int] = None,
    ) -> bool:
        """Buffer one event parent-side for its owning worker.

        Validation timing mirrors the in-process engine: encoded intake
        interns here, so unknown instances/messages raise the canonical
        errors at post time; naive/batched intake accepts anything and
        lets the drain's dispatch pass reject bad events (same message
        shape, one drain later).  The buffered traffic flushes on the
        next :meth:`drain_all` / :meth:`run`.  Mailboxes are unbounded —
        ``source``/``trace_id`` are accepted for protocol compatibility
        but not traced across the process boundary.
        """
        if self._encoded_intake:
            wid, slot = self._locate(key)
            col = self._columns.get(message)
            if col is None:
                raise DeploymentError(f"unknown message {message!r}")
            buffer = self._pending[wid]
            buffer.append(slot)
            buffer.append(col)
        else:
            wid = self.worker_of(key)
            self._pending[wid].append((key, message))
        self._pending_counts[wid] += 1
        return True

    def deliver(self, key: str, message: str) -> bool:
        """Dispatch one event immediately on its owning worker."""
        wid, _slot = self._locate(key)
        return self._request(wid, "deliver", key, message)

    def drain_all(self) -> int:
        """Flush every worker's pending buffer; returns events flushed."""
        requests: dict[int, tuple] = {}
        total = 0
        for wid, buffer in enumerate(self._pending):
            if not buffer:
                continue
            op = "run_flat" if self._encoded_intake else "run_events"
            requests[wid] = (op, buffer)
            total += self._pending_counts[wid]
            self._pending[wid] = self._new_buffer()
            self._pending_counts[wid] = 0
        if requests:
            self._fan_out(requests)
        return total

    def run(self, events, encoding: str = "auto") -> FleetMetrics:
        """Fan a workload out to the workers; returns merged metrics.

        Accepts ``(key, message)`` batches (``"events"``/``"auto"``) or
        an :class:`EncodedFleetSchedule` from :meth:`encode` /
        :meth:`encode_flat` (``"pairs"``/``"flat"``/``"auto"``).  Raw
        ``(slot, column)`` schedules are meaningless across fleets and
        are rejected.  Pending posted traffic flushes first (FIFO), and
        per-key order is preserved — a key maps to one worker.
        """
        if encoding not in ENCODINGS:
            raise DeploymentError(
                f"unknown encoding {encoding!r}; choose from {ENCODINGS}"
            )
        self.drain_all()
        if isinstance(events, EncodedFleetSchedule):
            if len(events.parts) != len(self._workers):
                raise DeploymentError(
                    "schedule was encoded for a fleet with "
                    f"{len(events.parts)} worker(s); this fleet has "
                    f"{len(self._workers)}"
                )
            requests = {
                wid: ("run_flat", part)
                for wid, part in enumerate(events.parts)
                if part
            }
            if requests:
                self._fan_out(requests)
            return self.metrics
        if encoding in ("pairs", "flat"):
            raise DeploymentError(
                f"encoding {encoding!r} on a multiprocess fleet needs an "
                "EncodedFleetSchedule from this fleet's encode()/"
                "encode_flat(); raw slot schedules are worker-local"
            )
        # String events: validate parent-side (canonical error shape),
        # partition by owning worker, fan out, then raise for rejects —
        # valid traffic is never stranded behind bad events.
        if self._encoded_intake:
            parts: list = [None] * len(self._workers)
            slots = self._slots
            columns = self._columns
            rejected: list[tuple[str, str]] = []
            for key, message in events:
                entry = slots.get(key)
                col = columns.get(message)
                if entry is None or col is None:
                    rejected.append((key, message))
                    continue
                wid, slot = entry
                part = parts[wid]
                if part is None:
                    part = parts[wid] = array("q")
                part.append(slot)
                part.append(col)
            requests = {
                wid: ("run_flat", part)
                for wid, part in enumerate(parts)
                if part
            }
        else:
            batches: list = [None] * len(self._workers)
            slots = self._slots
            columns = self._columns
            rejected = []
            for key, message in events:
                entry = slots.get(key)
                if entry is None or message not in columns:
                    rejected.append((key, message))
                    continue
                batch = batches[entry[0]]
                if batch is None:
                    batch = batches[entry[0]] = []
                batch.append((key, message))
            requests = {
                wid: ("run_events", batch)
                for wid, batch in enumerate(batches)
                if batch
            }
        if requests:
            self._fan_out(requests)
        if rejected:
            raise_rejected(rejected)
        return self.metrics

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> FleetSnapshot:
        """One portable snapshot of the whole population.

        Pending parent-side traffic flushes first, then every worker
        snapshots its partition; the merged
        :class:`~repro.serve.fleet.FleetSnapshot` restores into any
        fleet of the same machine — including a single-process
        :class:`~repro.serve.fleet.FleetEngine`.
        """
        self.drain_all()
        dead = [
            wid for wid, worker in enumerate(self._workers) if not worker.alive
        ]
        if dead:
            raise DeploymentError(
                f"cannot snapshot: worker(s) {dead} are not available; "
                "their shard partitions are lost"
            )
        requests = {
            wid: ("snapshot",) for wid in range(len(self._workers))
        }
        payloads = self._fan_out(requests)
        instances = tuple(
            chain.from_iterable(snap.instances for snap in payloads)
        )
        return FleetSnapshot(
            machine_name=self._machine.name, instances=instances
        )

    def restore(self, snapshot: FleetSnapshot) -> None:
        """Rebuild the population from a snapshot, partitioned by routing.

        The current population and any pending parent-side traffic are
        discarded; each worker restores the partition its keys route to,
        so a snapshot taken under any worker/shard layout lands
        correctly here.
        """
        if snapshot.machine_name != self._machine.name:
            raise DeploymentError(
                f"snapshot is for machine {snapshot.machine_name!r}, "
                f"this fleet serves {self._machine.name!r}"
            )
        per_worker: list[list[InstanceSnapshot]] = [
            [] for _ in self._workers
        ]
        for inst in snapshot.instances:
            per_worker[self.worker_of(inst.key)].append(inst)
        requests = {
            wid: (
                "restore",
                FleetSnapshot(
                    machine_name=snapshot.machine_name,
                    instances=tuple(instances),
                ),
            )
            for wid, instances in enumerate(per_worker)
        }
        self._pending = [self._new_buffer() for _ in self._workers]
        self._pending_counts = [0] * len(self._workers)
        sent = list(requests)
        payloads = self._fan_out(requests)
        self._slots = {}
        for wid, slot_of in zip(sent, payloads):
            for key, slot in slot_of.items():
                self._slots[key] = (wid, slot)

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop every worker process and release the pipes (idempotent)."""
        if self._closed:
            return
        stopping = []
        for worker in self._workers:
            if not worker.alive:
                continue
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                worker.alive = False
                continue
            stopping.append(worker)
        for worker in stopping:
            try:
                status, payload, metrics = worker.conn.recv()
                if metrics is not None:
                    worker.metrics = metrics
            except (EOFError, OSError):
                pass
        self._closed = True
        for worker in self._workers:
            worker.conn.close()
            worker.process.join(timeout=5)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)
            worker.alive = False
        self._finalizer.detach()

    def __enter__(self) -> "MultiprocessFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _terminate_workers(processes) -> None:
    """GC fallback: never leave orphaned worker processes behind."""
    for process in processes:
        if process.is_alive():
            process.terminate()
