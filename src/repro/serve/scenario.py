"""Scenario plane: timers, machine-driven routing and fault injection.

The fleet plane (:mod:`repro.serve.fleet`) replays externally scripted,
independent event streams — no notion of time, no instance ever talks to
another, nothing fails.  This module closes that gap, the paper's actual
deployment conditions (§4-5): generated machines ran *protocols*, with
timeouts, peers messaging each other, and nodes crashing mid-run.

Three mechanisms compose over any unmodified :class:`~repro.serve.api.Fleet`, all
driven by one deterministic scheduled-event wheel (the virtual clock
lifted from :class:`repro.storage.sim.kernel.Simulator`):

* **Timers** — :class:`TimerRule` declares ``after(delay, message)``
  per model: an instance sitting in a matching state for ``delay`` units
  of virtual time receives ``message``.  Timers are armed when a rule
  matches the instance's observed state and cancelled on state exit,
  tracked in the store's per-slot ``timers`` column.  Observation is
  batch-granular: the engine inspects states between dispatch instants,
  so a state entered and exited within one batch never arms a timer.
* **Routing** — :class:`RouteRule` turns a fired action into traffic: when
  an instance performs ``action``, every peer in its
  :class:`GroupTopology` group is scheduled to receive ``message`` after
  ``delay``.  This is what makes the commit peer set an *interacting*
  fleet: one member's ``vote`` action becomes ``vote`` messages to its
  peers, and the whole BFT commit round runs machine-to-machine from a
  single external kick.
* **Faults** — :class:`ScenarioFaultPlan` (the scenario-plane adaptation
  of :class:`repro.storage.faults.FaultPlan`) injects failures: routed
  messages can be dropped, duplicated or delayed (one seeded draw per
  routed copy), and a shard can be killed mid-burst — its instances are
  despawned fail-stop, then the whole scenario rolls back to the last
  :class:`ScenarioSnapshot` and replays.  Because every wheel record is
  plain data and every fault draw comes from a seeded stream captured in
  the snapshot, the replay is exact: a killed-and-restored run converges
  to the same per-instance traces as an undisturbed run, which is the
  testable recovery claim (``tests/serve/test_scenario_fuzz.py``).

Determinism is the load-bearing property.  The wheel orders records by
``(time, seq)``; all records due at one virtual instant dispatch as one
batch, in schedule order; observation (which actions fired, which states
are current) happens engine-side between instants, reading per-instance
data that is provably identical across dispatch modes (the differential
guarantee of PR 2-5).  A scenario therefore produces byte-identical
per-instance traces on ``naive``, ``batched``, ``encoded`` and
``grouped`` fleets, on either backend — the fuzz suite's claim (a).

When a profile has no timers and no routes and no faults are configured,
the engine runs *passthrough*: externally scheduled events are grouped
per instant at schedule time (and pre-encoded to ``(slot, column)``
pairs for encoded fleets), so the wheel adds one heap pop per distinct
timestamp, not per event — scenario overhead stays within a few percent
of raw encoded throughput (gated at >= 0.8x by ``bench_scenario``).

Timers, routes and faults require an observable fleet: ``naive`` mode or
``log_policy='full'`` (actions must be countable), and
``auto_recycle=False`` (recycling clears logs mid-run, which would break
the seen-action bookkeeping).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields
from typing import Optional

from repro.core.errors import DeploymentError, SimulationError
from repro.serve.api import Fleet
from repro.serve.fleet import FleetSnapshot
from repro.serve.store import InstanceSnapshot
from repro.storage.sim.kernel import Simulator

#: Wheel-record kinds (also the mailbox provenance tags).
EXTERNAL, ROUTED, TIMER = "external", "routed", "timer"
_KILL, _SNAP = "kill", "snapshot"

#: Record kinds that deliver a message to an instance.
_DELIVERY_KINDS = frozenset({EXTERNAL, ROUTED, TIMER})


@dataclass(frozen=True)
class TimerRule:
    """``after(delay, message)`` declared per model.

    An instance observed in ``state`` (or in *any non-final* state when
    ``state`` is ``None``) arms a timer; after ``delay`` units of
    virtual time without leaving that state, the instance receives
    ``message``.  Leaving the state cancels the timer.  At most one
    timer is armed per instance — the first matching rule wins.
    """

    delay: float
    message: str
    state: Optional[str] = None

    def __post_init__(self):
        if self.delay <= 0:
            raise SimulationError(f"timer delay must be > 0, got {self.delay}")


@dataclass(frozen=True)
class RouteRule:
    """Fired ``action`` -> ``message`` to every group peer after ``delay``."""

    action: str
    message: str
    delay: float = 1.0

    def __post_init__(self):
        if self.delay < 0:
            raise SimulationError(f"route delay must be >= 0, got {self.delay}")


@dataclass(frozen=True)
class ScenarioProfile:
    """A model's scenario annotations: timers, routes and kick messages.

    ``kicks`` are the externally-driven messages that start the protocol
    on one instance (``update`` + ``free`` for commit, ``estimate`` for
    the CT coordinator round); generators send each of them, repeated
    ``kicks_per_member`` times, to every group member at seeded times.
    """

    timers: tuple[TimerRule, ...] = ()
    routes: tuple[RouteRule, ...] = ()
    kicks: tuple[str, ...] = ()
    kicks_per_member: int = 1

    @property
    def observing(self) -> bool:
        """Whether scenarios under this profile must observe instances."""
        return bool(self.timers or self.routes)


class GroupTopology:
    """Who talks to whom: disjoint groups of session keys.

    Routed messages fan out to the sender's group peers — for the commit
    protocol a group *is* a peer set (one FSM instance per member for
    the same update), for the CT round it is the process set.  Keys are
    unique across groups.
    """

    __slots__ = ("groups", "keys", "_peers")

    def __init__(self, groups):
        self.groups: tuple[tuple[str, ...], ...] = tuple(
            tuple(group) for group in groups
        )
        self._peers: dict[str, tuple[str, ...]] = {}
        keys: list[str] = []
        for group in self.groups:
            for key in group:
                if key in self._peers:
                    raise DeploymentError(
                        f"key {key!r} appears in more than one topology group"
                    )
                self._peers[key] = tuple(k for k in group if k != key)
                keys.append(key)
        self.keys: tuple[str, ...] = tuple(keys)

    @classmethod
    def regular(cls, groups: int, size: int, prefix: str = "g") -> "GroupTopology":
        """``groups`` groups of ``size`` members with generated key names."""
        if groups < 1 or size < 1:
            raise DeploymentError("topology needs >= 1 group of >= 1 member")
        return cls(
            [
                [f"{prefix}{g:04d}-m{m}" for m in range(size)]
                for g in range(groups)
            ]
        )

    def peers(self, key: str) -> tuple[str, ...]:
        """The other members of ``key``'s group (empty for unknown keys)."""
        return self._peers.get(key, ())

    def __len__(self) -> int:
        return len(self.keys)


@dataclass(frozen=True)
class ScenarioFaultPlan:
    """What goes wrong, when — the scenario adaptation of ``FaultPlan``.

    ``storage.faults.FaultPlan`` configures per-node Byzantine behaviour
    for the simulated storage system; this plan configures the fleet
    analogue at scenario granularity:

    * ``kill_at`` schedules a fail-stop of one shard (``kill_shard``, or
      a seeded pick when ``None``) at the given virtual time: its
      instances are despawned mid-burst, then the scenario restores from
      the last snapshot and replays;
    * ``drop`` / ``duplicate`` / ``delay`` are per-routed-copy
      probabilities (one seeded draw decides each copy's fate; the three
      rates must sum to <= 1); ``delay_by`` is the extra latency a
      delayed copy suffers.

    Only routed (machine-to-machine) traffic is subject to the message
    faults — externally scheduled events are the recorded workload and
    stay intact, which is what keeps faulty runs comparable.
    """

    kill_at: Optional[float] = None
    kill_shard: Optional[int] = None
    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_by: float = 5.0

    def __post_init__(self):
        for name in ("drop", "duplicate", "delay"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(f"{name} rate must be in [0, 1], got {rate}")
        if self.drop + self.duplicate + self.delay > 1.0 + 1e-9:
            raise SimulationError("drop + duplicate + delay rates must sum to <= 1")
        if self.delay_by < 0:
            raise SimulationError(f"delay_by must be >= 0, got {self.delay_by}")

    @property
    def active(self) -> bool:
        """Whether the plan injects any fault at all."""
        return self.kill_at is not None or self.message_faults

    @property
    def message_faults(self) -> bool:
        """Whether routed messages are subject to drop/duplicate/delay."""
        return (self.drop + self.duplicate + self.delay) > 0.0

    @classmethod
    def kill(cls, at: float, shard: Optional[int] = None) -> "ScenarioFaultPlan":
        """Fail-stop one shard at virtual time ``at``."""
        return cls(kill_at=at, kill_shard=shard)

    @classmethod
    def lossy(
        cls, drop: float = 0.05, duplicate: float = 0.0, delay: float = 0.0
    ) -> "ScenarioFaultPlan":
        """A lossy network for routed traffic."""
        return cls(drop=drop, duplicate=duplicate, delay=delay)


@dataclass(frozen=True)
class TimedEvent:
    """One externally scheduled delivery: at ``time``, ``key`` gets ``message``."""

    time: float
    key: str
    message: str


@dataclass(frozen=True)
class Scenario:
    """A fully specified, replayable scenario (profile x topology x schedule)."""

    profile: ScenarioProfile
    topology: GroupTopology
    events: tuple[TimedEvent, ...]
    faults: Optional[ScenarioFaultPlan] = None
    seed: int = 0
    until: float = 1000.0
    snapshot_every: Optional[float] = None


@dataclass
class ScenarioMetrics:
    """Counters of everything the scenario engine did."""

    instants: int = 0
    external_delivered: int = 0
    routed_delivered: int = 0
    timers_fired: int = 0
    timers_armed: int = 0
    timers_cancelled: int = 0
    messages_routed: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_delayed: int = 0
    shards_killed: int = 0
    instances_lost: int = 0
    snapshots_taken: int = 0
    snapshots_restored: int = 0

    @property
    def events_delivered(self) -> int:
        """Messages delivered to instances, whatever their provenance."""
        return self.external_delivered + self.routed_delivered + self.timers_fired

    def as_dict(self) -> dict:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["events_delivered"] = self.events_delivered
        return out


@dataclass(frozen=True)
class ScenarioSnapshot:
    """Everything a scenario needs to replay from a point in virtual time.

    The fleet snapshot alone is not enough: armed timers, in-flight
    routed messages, undelivered external batches, the clock and the
    fault stream's position all shape what happens next.  Each is
    captured as plain data (wheel records are ``(rid, time, kind,
    payload)`` tuples), so restoring re-creates the exact pending
    future — any piece missing here would show up as trace divergence
    in the kill-restore fuzz claim.
    """

    fleet: FleetSnapshot
    now: float
    pending: tuple[tuple, ...]
    seen: tuple[tuple[str, int], ...]
    rng_state: object
    #: Tracing state, captured when the fleet carries a trace log: the
    #: pending records' trace ids, each key's last-delivery id (causal
    #: parent links), and the mint position — restoring them makes a
    #: replay mint the *same* ids an undisturbed run would.
    tids: tuple = ()
    last_tids: tuple = ()
    next_trace_id: Optional[int] = None


class ScenarioEngine:
    """Drive one fleet through virtual time with timers, routing and faults.

    The engine owns a :class:`Simulator` wheel whose records are plain
    data; at each distinct virtual instant it pops every due record,
    posts the deliveries through the fleet's mailboxes (tagged with
    their provenance), drains, and — when the profile declares timers or
    routes — observes the touched instances to cancel/arm timers and
    turn newly fired actions into routed traffic.  See the module
    docstring for the determinism argument.
    """

    def __init__(
        self,
        fleet: Fleet,
        profile: Optional[ScenarioProfile] = None,
        topology: Optional[GroupTopology] = None,
        faults: Optional[ScenarioFaultPlan] = None,
        *,
        seed: int = 0,
        snapshot_every: Optional[float] = None,
        max_events: int = 1_000_000,
    ):
        self._fleet = fleet
        self._profile = profile if profile is not None else ScenarioProfile()
        self._topology = topology if topology is not None else GroupTopology(())
        self._faults = faults if faults is not None and faults.active else None
        self._observing = self._profile.observing
        needs_trace = self._observing or (
            self._faults is not None and self._faults.kill_at is not None
        )
        if needs_trace and fleet.mode != "naive" and fleet.log_policy != "full":
            raise DeploymentError(
                "scenarios with timers, routes or kill-shard faults need an "
                "observable fleet: naive mode or log_policy='full' "
                f"(this fleet runs {fleet.log_policy!r})"
            )
        if needs_trace and fleet.auto_recycle:
            raise DeploymentError(
                "scenarios with timers, routes or kill-shard faults cannot "
                "run on an auto_recycle fleet: recycling clears action logs "
                "mid-run, breaking action observation and replay"
            )
        if needs_trace and getattr(fleet, "store", None) is None:
            raise DeploymentError(
                "scenarios with timers, routes or kill-shard faults need an "
                "in-process fleet exposing its instance store (timer marks "
                "live in store columns); this fleet has none — passthrough "
                "scenarios (no observation) run on any Fleet"
            )
        self._routes: dict[str, tuple[RouteRule, ...]] = {}
        for rule in self._profile.routes:
            self._routes[rule.action] = self._routes.get(rule.action, ()) + (rule,)
        self._sim = Simulator(seed)
        self._rng = self._sim.new_rng("scenario-faults")
        #: rid -> (record, Timer); records are (rid, time, kind, payload).
        self._pending: dict[int, tuple] = {}
        #: rid -> flat pre-encoded [slot, col, ...] array for external
        #: batches (encoded passthrough only; rebuilt after restore).
        self._pairs: dict[int, object] = {}
        self._pre_encode = (
            not self._observing
            and self._faults is None
            and fleet.mode in ("encoded", "grouped", "vector")
        )
        self._due: list[tuple] = []
        #: Intern table for scheduled (key, message) tuples — engine-lived
        #: (size is population x message alphabet, the same order as the
        #: store's own key intern dict) so consuming a wheel record only
        #: decrefs its payload instead of freeing one object per event on
        #: the dispatch clock.
        self._interned: dict[tuple, tuple] = {}
        self._rid = itertools.count()
        #: Actions already observed (and routed) per key.
        self._seen: dict[str, int] = {}
        self._cancels = 0
        self._primed = False
        self._kill_scheduled = False
        self._kills_done: set[int] = set()
        self._snap_scheduled = False
        self._snapshot_every = snapshot_every
        self._last_snapshot: Optional[ScenarioSnapshot] = None
        self._delivered = 0
        self._max_events = max_events
        telemetry = fleet.telemetry
        #: The fleet's trace log, when one is attached: scenario records
        #: (schedule/timer/route/fault decisions, at virtual time) land
        #: in the same ring as the fleet's post/dispatch records.
        self._trace = telemetry.trace if telemetry is not None else None
        #: rid -> trace ids of the record's payload events (pending only).
        self._tids: dict[int, tuple[int, ...]] = {}
        #: key -> trace id of the last event delivered to the key: the
        #: causal parent for timers armed on and actions routed from it.
        self._last_tid: dict[str, int] = {}
        self.metrics = ScenarioMetrics()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def fleet(self) -> Fleet:
        return self._fleet

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._sim.now

    @property
    def pending_records(self) -> int:
        """Scheduled wheel records not yet fired."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # population & schedule
    # ------------------------------------------------------------------

    def spawn_topology(self) -> None:
        """Spawn one instance per topology key (fresh fleets only)."""
        for key in self._topology.keys:
            self._fleet.spawn(key)
        self._seen = dict.fromkeys(self._topology.keys, 0)

    def schedule_event(self, time: float, key: str, message: str) -> None:
        """Schedule one external delivery at absolute virtual time."""
        rid = self._schedule_at(time, EXTERNAL, ((key, message),))
        trace = self._trace
        if trace is not None:
            tid = trace.mint()
            trace.record(tid, time, "schedule", key=key, message=message)
            self._tids[rid] = (tid,)

    def schedule_events(self, events) -> None:
        """Schedule a recorded timed workload.

        Events are grouped by timestamp so the wheel pays one record per
        distinct instant, not per event; within an instant, schedule
        order is preserved.  On encoded passthrough fleets (no timers,
        routes or faults) each batch is pre-encoded here, once — the
        dispatch loop then never touches a string.  Spawn the population
        (:meth:`spawn_topology`) before scheduling on such fleets.
        """
        batches: dict[float, list] = {}
        interned = self._interned
        for event in events:
            item = (event.key, event.message)
            item = interned.setdefault(item, item)
            batches.setdefault(event.time, []).append(item)
        trace = self._trace
        for time in sorted(batches):
            batch = tuple(batches[time])
            rid = self._schedule_at(time, EXTERNAL, batch)
            if self._pre_encode:
                self._pairs[rid] = self._fleet.encode_flat(batch)
            if trace is not None:
                ids = trace.mint_range(len(batch))
                for tid, (key, message) in zip(ids, batch):
                    trace.record(tid, time, "schedule", key=key, message=message)
                self._tids[rid] = tuple(ids)

    def despawn(self, key: str) -> None:
        """Remove one instance *and* its pending timed/routed traffic.

        The safe form of the fleet's ``despawn`` under a scenario:
        wheel records addressed to the key are cancelled so a timer
        expiring after the despawn cannot be delivered to the slot's
        next occupant.  (Despawning behind the engine's back leaves
        those records live — their delivery then raises
        :class:`DeploymentError`, never corrupting a reused slot.)
        """
        store = getattr(self._fleet, "store", None)
        if store is not None:
            armed = store.timers[store.slot(key)]
            if armed is not None:
                self._cancel(armed[0])
        for rid, (record, _) in list(self._pending.items()):
            kind, payload = record[2], record[3]
            if kind in (ROUTED, TIMER) and payload[0] == key:
                self._cancel(rid)
        self._seen.pop(key, None)
        self._fleet.despawn(key)

    # ------------------------------------------------------------------
    # the wheel
    # ------------------------------------------------------------------

    def _schedule_at(self, time, kind, payload, rid=None) -> int:
        if rid is None:
            rid = next(self._rid)
        record = (rid, time, kind, payload)
        handle = self._sim.schedule_at(time, lambda r=record: self._fire(r))
        self._pending[rid] = (record, handle)
        return rid

    def _schedule(self, delay, kind, payload) -> int:
        return self._schedule_at(self._sim.now + delay, kind, payload)

    def _fire(self, record) -> None:
        self._pending.pop(record[0], None)
        self._due.append(record)

    def _cancel(self, rid) -> None:
        entry = self._pending.pop(rid, None)
        if entry is None:
            return
        entry[1].cancel()
        if self._trace is not None:
            tids = self._tids.pop(rid, None)
            if tids:
                record = entry[0]
                payload = record[3]
                key = message = None
                if record[2] in (ROUTED, TIMER):
                    key, message = payload
                self._trace.record(
                    tids[0],
                    self._sim.now,
                    "cancel",
                    key=key,
                    message=message,
                    detail=record[2],
                )
        self._cancels += 1
        if self._cancels >= 4096:
            # Cancelled entries are tombstones until popped; compact the
            # heap periodically so long runs don't accumulate them.
            self._sim.drain()
            self._cancels = 0

    def run(self, until: float) -> ScenarioMetrics:
        """Advance virtual time to ``until``, processing every due instant."""
        sim = self._sim
        faults = self._faults
        if faults is not None and faults.kill_at is not None:
            if not self._kill_scheduled:
                self._schedule_at(faults.kill_at, _KILL, faults.kill_shard)
                self._kill_scheduled = True
            if self._last_snapshot is None:
                self.snapshot()
        if self._snapshot_every is not None and not self._snap_scheduled:
            self._schedule(self._snapshot_every, _SNAP, None)
            self._snap_scheduled = True
        if self._observing and not self._primed:
            self._primed = True
            self._observe(self._fleet.store.keys())
        while True:
            t = sim.next_time()
            if t > until:  # inf when the wheel is empty
                break
            del self._due[:]
            while sim.next_time() == t:
                sim.step()
            self._process(tuple(self._due))
        sim.run(until=until)
        return self.metrics

    def _process(self, due) -> None:
        metrics = self.metrics
        metrics.instants += 1
        observing = self._observing
        trace = self._trace
        #: (kind, key, message, trace_id) — observing only.
        deliveries: list[tuple] = []
        batches: list[tuple] = []  # raw (key, message) payloads — passthrough
        pair_lists: list = []
        timer_payloads: list[tuple] = []
        kills: list[tuple] = []
        snaps = 0
        delivered = 0
        for rid, rtime, kind, payload in due:
            tids = self._tids.pop(rid, None) if trace is not None else None
            if kind == EXTERNAL:
                delivered += len(payload)
                metrics.external_delivered += len(payload)
                if observing:
                    if tids is None:
                        deliveries.extend(
                            (EXTERNAL, k, m, None) for k, m in payload
                        )
                    else:
                        deliveries.extend(
                            (EXTERNAL, k, m, t)
                            for (k, m), t in zip(payload, tids)
                        )
                else:
                    batches.append(payload)
                    pair_lists.append(self._pairs.pop(rid, None))
            elif kind == ROUTED:
                delivered += 1
                metrics.routed_delivered += 1
                tid = tids[0] if tids else None
                if observing:
                    deliveries.append((ROUTED, payload[0], payload[1], tid))
                else:
                    batches.append((payload,))
                    pair_lists.append(None)
            elif kind == TIMER:
                delivered += 1
                metrics.timers_fired += 1
                timer_payloads.append(payload)
                tid = tids[0] if tids else None
                if tid is not None:
                    trace.record(
                        tid, rtime, "timer_fire", key=payload[0], message=payload[1]
                    )
                if observing:
                    deliveries.append((TIMER, payload[0], payload[1], tid))
                else:
                    batches.append((payload,))
                    pair_lists.append(None)
            elif kind == _KILL:
                if rid not in self._kills_done:
                    kills.append((rid, payload))
            else:  # _SNAP
                snaps += 1
        self._delivered += delivered
        if self._delivered > self._max_events:
            raise SimulationError(
                f"scenario exceeded event budget of {self._max_events} "
                "deliveries — routing livelock?"
            )
        if deliveries:
            self._dispatch(deliveries, timer_payloads)
        elif batches:
            self._passthrough(batches, pair_lists)
        for _ in range(snaps):
            self.snapshot()
            if self._snapshot_every is not None:
                self._schedule(self._snapshot_every, _SNAP, None)
        for rid, shard in kills:
            self._kills_done.add(rid)
            self._kill(shard)

    def _passthrough(self, batches, pair_lists) -> None:
        """One instant's arrivals with no observation: a single fleet call.

        When the whole instant was pre-encoded at schedule time its flat
        slot/column array goes straight to
        ``fleet.run(flat, encoding="flat")`` — the usual one-record
        instant without even a copy — so passthrough pays the raw encoded
        per-event cost plus one heap pop per distinct timestamp.
        Anything not interned (naive/batched fleets, records added via
        :meth:`schedule_event`) falls back to the string path.
        """
        fleet = self._fleet
        if None not in pair_lists:
            flat = pair_lists[0]
            for extra in pair_lists[1:]:
                flat = flat + extra
            fleet.run(flat, encoding="flat")
        else:
            fleet.run([pair for batch in batches for pair in batch])

    def _dispatch(self, deliveries, timer_payloads) -> None:
        fleet = self._fleet
        post = fleet.post
        if self._trace is None:
            for kind, key, message, _tid in deliveries:
                post(key, message, source=kind)
        else:
            last = self._last_tid
            for kind, key, message, tid in deliveries:
                post(key, message, source=kind, trace_id=tid)
                if tid is not None:
                    last[key] = tid
        fleet.drain_all()
        # A fired timer is no longer armed: clear its column mark before
        # observation (which may immediately re-arm it — periodic timers).
        # Timers only ever arm on store-backed fleets.
        store = getattr(fleet, "store", None)
        if store is not None:
            for key, _message in timer_payloads:
                slot = store.slot_of.get(key)
                if slot is not None and store.timers[slot] is not None:
                    store.timers[slot] = None
        self._observe(dict.fromkeys(key for _, key, _m, _t in deliveries))

    # ------------------------------------------------------------------
    # observation: timers armed/cancelled, actions routed
    # ------------------------------------------------------------------

    def _timer_rule(self, state: str, finished: bool) -> Optional[TimerRule]:
        for rule in self._profile.timers:
            if rule.state is None:
                if not finished:
                    return rule
            elif rule.state == state:
                return rule
        return None

    def _observe(self, keys) -> None:
        fleet = self._fleet
        store = fleet.store
        metrics = self.metrics
        slot_of = store.slot_of
        timers_col = store.timers
        has_timers = bool(self._profile.timers)
        routes = self._routes
        seen = self._seen
        trace = self._trace
        for key in keys:
            slot = slot_of.get(key)
            if slot is None:
                continue
            state = fleet.state_name(key)
            armed = timers_col[slot]
            if armed is not None and armed[1] != state:
                self._cancel(armed[0])
                timers_col[slot] = None
                armed = None
                metrics.timers_cancelled += 1
            if has_timers and armed is None:
                rule = self._timer_rule(state, fleet.is_finished(key))
                if rule is not None:
                    rid = self._schedule(rule.delay, TIMER, (key, rule.message))
                    timers_col[slot] = (rid, state)
                    metrics.timers_armed += 1
                    if trace is not None:
                        tid = trace.mint()
                        trace.record(
                            tid,
                            self._sim.now,
                            "timer_arm",
                            parent_id=self._last_tid.get(key),
                            key=key,
                            message=rule.message,
                            detail=f"delay={rule.delay}",
                        )
                        self._tids[rid] = (tid,)
            if routes:
                total = fleet.action_count(key)
                done = seen.get(key, 0)
                if total > done:
                    seen[key] = total
                    for action in fleet.actions_since(key, done):
                        for rule in routes.get(action, ()):
                            self._route(key, rule)

    def _route(self, key: str, rule: RouteRule) -> None:
        metrics = self.metrics
        faults = self._faults
        trace = self._trace
        parent = self._last_tid.get(key) if trace is not None else None
        lossy = faults is not None and faults.message_faults
        for peer in self._topology.peers(key):
            metrics.messages_routed += 1
            delay = rule.delay
            copies = 1
            delayed = False
            if lossy:
                draw = self._rng.random()
                if draw < faults.drop:
                    metrics.messages_dropped += 1
                    if trace is not None:
                        trace.record(
                            trace.mint(),
                            self._sim.now,
                            "fault_drop",
                            parent_id=parent,
                            key=peer,
                            message=rule.message,
                            detail=rule.action,
                        )
                    continue
                if draw < faults.drop + faults.duplicate:
                    metrics.messages_duplicated += 1
                    copies = 2
                elif draw < faults.drop + faults.duplicate + faults.delay:
                    metrics.messages_delayed += 1
                    delay += faults.delay_by
                    delayed = True
            for copy in range(copies):
                rid = self._schedule(delay, ROUTED, (peer, rule.message))
                if trace is not None:
                    tid = trace.mint()
                    kind = (
                        "fault_dup"
                        if copy
                        else ("fault_delay" if delayed else "route")
                    )
                    trace.record(
                        tid,
                        self._sim.now,
                        kind,
                        parent_id=parent,
                        key=peer,
                        message=rule.message,
                        detail=rule.action,
                    )
                    self._tids[rid] = (tid,)

    # ------------------------------------------------------------------
    # faults & recovery
    # ------------------------------------------------------------------

    def _kill(self, shard: Optional[int]) -> None:
        metrics = self.metrics
        if shard is None:
            shard = self._rng.randrange(self._fleet.shard_count)
        store = self._fleet.store
        victims = list(store.shards[shard].keys)
        metrics.shards_killed += 1
        metrics.instances_lost += len(victims)
        if self._trace is not None:
            # Engine-level records use the reserved id 0 (mint starts at
            # 1), so a kill never perturbs the replayable id stream.
            self._trace.record(
                0,
                self._sim.now,
                "kill",
                detail=f"shard={shard} victims={len(victims)}",
            )
        # Fail-stop: the shard's instances vanish mid-burst, taking their
        # armed timers and addressed traffic down with them.
        for key in victims:
            self.despawn(key)
        snap = self._last_snapshot
        if snap is None:
            raise DeploymentError(
                "kill-shard fired with no scenario snapshot to restore from"
            )
        self.restore(snap)

    def snapshot(self) -> ScenarioSnapshot:
        """Capture the scenario at the current instant (fleet + future)."""
        pending = tuple(
            record
            for record, _handle in sorted(
                self._pending.values(), key=lambda e: (e[0][1], e[0][0])
            )
        )
        snap = ScenarioSnapshot(
            fleet=self._fleet.snapshot(),
            now=self._sim.now,
            pending=pending,
            seen=tuple(sorted(self._seen.items())),
            rng_state=self._rng.getstate(),
            tids=tuple(sorted(self._tids.items())),
            last_tids=tuple(sorted(self._last_tid.items())),
            next_trace_id=(
                self._trace.next_id if self._trace is not None else None
            ),
        )
        self._last_snapshot = snap
        self.metrics.snapshots_taken += 1
        return snap

    def restore(self, snap: ScenarioSnapshot) -> None:
        """Rewind the whole scenario — fleet, clock, pending future, rng."""
        fleet = self._fleet
        fleet.restore(snap.fleet)
        sim = self._sim
        sim.reset()
        sim.run(until=snap.now)
        self._pending.clear()
        del self._due[:]
        self._pairs.clear()
        self._cancels = 0
        for record in snap.pending:
            rid, time, kind, payload = record
            self._schedule_at(time, kind, payload, rid=rid)
            if kind == EXTERNAL and self._pre_encode:
                self._pairs[rid] = fleet.encode_flat(payload)
        self._seen = dict(snap.seen)
        self._rng.setstate(snap.rng_state)
        self._tids = {rid: tuple(tids) for rid, tids in snap.tids}
        self._last_tid = dict(snap.last_tids)
        if self._trace is not None and snap.next_trace_id is not None:
            # Rewind the mint so the replay allocates the same ids the
            # undisturbed run would have (the replay-exact trace claim).
            self._trace.next_id = snap.next_trace_id
            self._trace.record(
                0, self._sim.now, "restore", detail=f"now={snap.now}"
            )
        # Re-mark armed timers: every pending TIMER record corresponds to
        # a slot-level arm in the restored population (timers only ever
        # arm on store-backed fleets).
        store = getattr(fleet, "store", None)
        if store is not None:
            for rid, _time, kind, payload in snap.pending:
                if kind == TIMER:
                    slot = store.slot_of.get(payload[0])
                    if slot is not None:
                        store.timers[slot] = (rid, fleet.state_name(payload[0]))
        self._last_snapshot = snap
        self.metrics.snapshots_restored += 1


def run_scenario(fleet: Fleet, scenario: Scenario) -> ScenarioEngine:
    """Spawn, schedule and run one :class:`Scenario` on a fresh fleet."""
    engine = ScenarioEngine(
        fleet,
        scenario.profile,
        scenario.topology,
        scenario.faults,
        seed=scenario.seed,
        snapshot_every=scenario.snapshot_every,
    )
    engine.spawn_topology()
    engine.schedule_events(scenario.events)
    engine.run(scenario.until)
    return engine


def scenario_traces(
    fleet: Fleet, scenario: Scenario
) -> dict[str, InstanceSnapshot]:
    """Run a scenario and return every topology key's final trace."""
    run_scenario(fleet, scenario)
    return {key: fleet.trace(key) for key in scenario.topology.keys}
