"""Bounded per-shard event queues with explicit overflow policy.

Each shard of the fleet owns one :class:`Mailbox`.  Producers ``offer``
events — ``(session_key, message)`` string pairs on the string-keyed
dispatch modes, pre-interned ``(slot, column)`` int pairs on the encoded
modes, where the fleet translates at intake so the drain loop never
hashes a string — and the engine drains a whole mailbox in one pass
(batched dispatch).  Overflow is a first-class outcome, not an exception
path: a bounded mailbox either **sheds** the new event (drop and count —
load shedding for best-effort traffic) or **blocks** the producer
(refuses the offer so the caller must drain before retrying — the
synchronous analogue of a blocking put).
"""

from __future__ import annotations

import enum
from typing import Optional


class OverflowPolicy(enum.Enum):
    """What a full mailbox does with the next offered event."""

    #: Drop the newly offered event and count it in :attr:`Mailbox.dropped`.
    SHED = "shed"
    #: Refuse the offer (``offer`` returns ``False``) without counting a
    #: drop; the producer is expected to drain the shard and retry.
    BLOCK = "block"


class Mailbox:
    """FIFO event queue with an optional capacity bound.

    ``capacity=None`` means unbounded (no backpressure).  Events are
    arbitrary tuples; the fleet enqueues ``(session_key, message)``.
    """

    __slots__ = ("_queue", "capacity", "policy", "dropped", "offered", "by_source")

    def __init__(
        self,
        capacity: Optional[int] = None,
        policy: OverflowPolicy = OverflowPolicy.SHED,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self._queue: list = []
        self.capacity = capacity
        self.policy = policy
        self.dropped = 0
        self.offered = 0
        #: Accepted-offer tally per provenance tag (``external`` /
        #: ``routed`` / ``timer`` — whatever the producer passes).
        #: Untagged offers are not tallied; the scenario plane tags
        #: every enqueue so timed and routed traffic stays attributable
        #: per shard.
        self.by_source: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        """Whether the next offer would overflow."""
        return self.capacity is not None and len(self._queue) >= self.capacity

    def offer(self, event, source: Optional[str] = None) -> bool:
        """Enqueue ``event``; returns whether it was accepted.

        On overflow, ``SHED`` counts the event as dropped and returns
        ``False``; ``BLOCK`` returns ``False`` without counting, signalling
        the producer to drain and retry.  ``source`` tags the accepted
        offer's provenance in :attr:`by_source`.
        """
        if self.capacity is not None and len(self._queue) >= self.capacity:
            if self.policy is OverflowPolicy.SHED:
                self.dropped += 1
            return False
        self._queue.append(event)
        self.offered += 1
        if source is not None:
            self.by_source[source] = self.by_source.get(source, 0) + 1
        return True

    def drain(self) -> list:
        """Remove and return all queued events in arrival order."""
        batch = self._queue
        self._queue = []
        return batch
