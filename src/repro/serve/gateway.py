"""Asyncio HTTP/WebSocket gateway: a fleet serving real traffic.

The front door of the serve plane.  A :class:`FleetGateway` binds any
:class:`~repro.serve.api.Fleet` — in-process engine or multiprocess
fleet alike — behind a small HTTP/1.1 + WebSocket API, hand-rolled on
:mod:`asyncio` streams (the repository has a no-dependencies rule).
All fleet calls run on the event-loop thread, so the gateway serializes
access to the fleet without any locking; the fleet's own batch paths
stay the throughput story, the gateway is the *operability* story —
spawn, deliver, snapshot and scrape over the wire.

Endpoints::

    GET  /healthz            liveness + instance count
    POST /spawn              {"key": k} | {"count": n, "prefix"?: p}
    POST /deliver            {"key": k, "message": m}
                             | {"events": [[k, m], ...]}  (one batch run)
    POST /post               queue one event (mailbox path)
    POST /drain              flush queued traffic
    GET  /state?key=k        current state name
    GET  /trace?key=k        state + full action log
    GET  /snapshot           portable fleet snapshot (JSON)
    POST /restore            snapshot JSON -> rebuilt population
    GET  /metrics            Prometheus text: fleet + gateway instruments
    POST /shutdown           stop serving (requires allow_remote_shutdown)
    GET  /ws                 WebSocket: {"op": "deliver"|"post"|"state"|
                             "len", ...} JSON frames

Unknown instances/messages surface as HTTP 400 with the fleet's
canonical :class:`~repro.core.errors.DeploymentError` message — the
error-shape guarantee of the Fleet protocol extends over the wire.

The gateway degrades rather than wedges.  A connection that stalls
mid-request (or idles past the keep-alive window) is answered with
``408`` and closed after ``read_timeout`` seconds; a request whose
``Content-Length`` exceeds ``max_body`` is refused with ``413`` before
the body is read — a slow or hostile client can never hold a reader
coroutine forever.  Requests that land on a supervised fleet's
recovering partition return ``503`` with a ``Retry-After`` header (from
:class:`~repro.serve.recovery.FleetRecoveringError`) instead of an
error: the partition is healing, not gone, and ``/healthz`` reports the
per-worker ``live``/``recovering``/``dead`` states while it does.

Gateway-side instruments (``gateway_requests_total``,
``gateway_errors_total``, ``gateway_request_seconds``,
``gateway_ws_messages_total``) live in their own
:class:`~repro.obs.metrics.MetricsRegistry` and are merged with the
fleet's registry on every ``/metrics`` scrape.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
from math import ceil
from time import perf_counter
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.core.errors import DeploymentError
from repro.obs.expo import fleet_registry, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.serve.fleet import FleetSnapshot
from repro.serve.recovery import FleetRecoveringError
from repro.serve.store import InstanceSnapshot

__all__ = ["FleetGateway", "snapshot_from_json", "snapshot_to_json"]

_WS_MAGIC = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def snapshot_to_json(snapshot: FleetSnapshot) -> dict:
    """A fleet snapshot as a JSON-safe dict (the wire form).

    Partial snapshots carry their ``lost`` manifest so the wire form
    stays honest about missing partitions; whole snapshots omit the
    field, keeping the wire form of PR 8 byte-identical.
    """
    wire = {
        "machine": snapshot.machine_name,
        "instances": [
            {"key": inst.key, "state": inst.state, "actions": list(inst.actions)}
            for inst in snapshot.instances
        ],
    }
    if snapshot.lost:
        wire["lost"] = list(snapshot.lost)
    return wire


def snapshot_from_json(payload: dict) -> FleetSnapshot:
    """Rebuild a :class:`FleetSnapshot` from its wire form."""
    try:
        return FleetSnapshot(
            machine_name=payload["machine"],
            instances=tuple(
                InstanceSnapshot(
                    inst["key"], inst["state"], tuple(inst["actions"])
                )
                for inst in payload["instances"]
            ),
            lost=tuple(payload.get("lost", ())),
        )
    except (KeyError, TypeError) as exc:
        raise DeploymentError(f"malformed snapshot payload: {exc}") from exc


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class FleetGateway:
    """Serve one fleet over HTTP and WebSocket."""

    def __init__(
        self,
        fleet,
        *,
        host: str = "127.0.0.1",
        port: int = 8080,
        allow_remote_shutdown: bool = False,
        read_timeout: float = 30.0,
        max_body: int = 1 << 20,
    ):
        self._fleet = fleet
        self.host = host
        self.port = port  # rebound to the actual port after start()
        self._allow_remote_shutdown = allow_remote_shutdown
        self._read_timeout = read_timeout
        self._max_body = max_body
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown: Optional[asyncio.Event] = None
        self.registry = MetricsRegistry()
        self._requests = self.registry.counter(
            "gateway_requests_total", "HTTP requests handled"
        )
        self._errors = self.registry.counter(
            "gateway_errors_total", "HTTP requests answered with an error status"
        )
        self._latency = self.registry.histogram(
            "gateway_request_seconds", "request receipt to response written"
        )
        self._ws_messages = self.registry.counter(
            "gateway_ws_messages_total", "WebSocket messages handled"
        )

    @property
    def fleet(self):
        return self._fleet

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start serving; ``self.port`` becomes the bound port."""
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting and close the server (idempotent)."""
        if self._shutdown is not None:
            self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_until_shutdown(self) -> None:
        """Start, then serve until ``/shutdown`` or :meth:`stop`."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.stop()

    def run_blocking(self, announce=None, port_file: Optional[str] = None) -> None:
        """Synchronous entry point for the CLI: serve until shutdown.

        ``announce`` is called with the listening URL once bound;
        ``port_file`` (when given) receives the bound port as text — the
        robust way for a parent process to learn a ``--port 0`` binding.
        """

        async def _main() -> None:
            await self.start()
            if announce is not None:
                announce(f"http://{self.host}:{self.port}")
            if port_file is not None:
                with open(port_file, "w", encoding="utf-8") as handle:
                    handle.write(str(self.port))
            await self.serve_until_shutdown()

        asyncio.run(_main())

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader), timeout=self._read_timeout
                    )
                except asyncio.TimeoutError:
                    # Stalled mid-request (or idle past the keep-alive
                    # window): answer 408 and reclaim the coroutine.
                    self._requests.add(1)
                    self._errors.add(1)
                    writer.write(
                        self._response(
                            408,
                            b'{"error": "request read timed out"}\n',
                            "application/json",
                            True,
                        )
                    )
                    await writer.drain()
                    break
                except _HttpError as exc:
                    # Oversized body: refused before it is read, so the
                    # connection cannot be resynchronized — close it.
                    self._requests.add(1)
                    self._errors.add(1)
                    status, payload, content_type = self._json(
                        exc.status, {"error": exc.message}
                    )
                    writer.write(
                        self._response(status, payload, content_type, True)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                if (
                    target.split("?", 1)[0] == "/ws"
                    and headers.get("upgrade", "").lower() == "websocket"
                ):
                    await self._websocket(headers, reader, writer)
                    break
                started = perf_counter()
                status, payload, content_type, extra = self._route(
                    method, target, body
                )
                self._requests.add(1)
                if status >= 400:
                    self._errors.add(1)
                close = headers.get("connection", "").lower() == "close"
                writer.write(
                    self._response(status, payload, content_type, close, extra)
                )
                await writer.drain()
                self._latency.observe(perf_counter() - started)
                if close:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader):
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > self._max_body:
            raise _HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self._max_body}-byte limit",
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    @staticmethod
    def _response(
        status: int,
        payload: bytes,
        content_type: str,
        close: bool,
        extra_headers: tuple = (),
    ) -> bytes:
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in extra_headers
        )
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"{extra}"
            "\r\n"
        )
        return head.encode("latin-1") + payload

    @staticmethod
    def _json(status: int, obj) -> tuple[int, bytes, str]:
        return (
            status,
            (json.dumps(obj) + "\n").encode("utf-8"),
            "application/json",
        )

    def _route(self, method: str, target: str, body: bytes):
        """Dispatch one request; returns ``(status, payload, type, headers)``."""
        split = urlsplit(target)
        path = split.path
        query = {
            name: values[0] for name, values in parse_qs(split.query).items()
        }
        try:
            result = self._dispatch(method, path, query, body)
        except _HttpError as exc:
            result = self._json(exc.status, {"error": exc.message})
        except FleetRecoveringError as exc:
            # Transient: the partition is healing, not gone.  Degrade to
            # 503 with a Retry-After hint instead of an error.
            retry_after = max(1, ceil(exc.retry_after))
            status, payload, content_type = self._json(
                503,
                {"error": str(exc), "retry_after": exc.retry_after},
            )
            return status, payload, content_type, (
                ("Retry-After", str(retry_after)),
            )
        except DeploymentError as exc:
            # The fleet's canonical error shape, carried over the wire.
            result = self._json(400, {"error": str(exc)})
        except Exception as exc:  # never let one request kill the loop
            result = self._json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
        return (*result, ())

    @staticmethod
    def _body_json(body: bytes) -> dict:
        if not body:
            return {}
        try:
            parsed = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}") from exc
        if not isinstance(parsed, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return parsed

    @staticmethod
    def _require(payload: dict, *names: str) -> list:
        missing = [name for name in names if name not in payload]
        if missing:
            raise _HttpError(400, f"missing field(s): {', '.join(missing)}")
        return [payload[name] for name in names]

    def _dispatch(self, method: str, path: str, query: dict, body: bytes):
        fleet = self._fleet
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "use GET /healthz")
            health = {"status": "ok", "instances": len(fleet)}
            # Supervised fleets surface per-worker lifecycle state; the
            # poll doubles as silent-death detection (a SIGKILLed worker
            # starts recovering on the next health check at the latest).
            check = getattr(fleet, "check_workers", None)
            if check is not None:
                states = check()
                health["workers"] = states
                health["pids"] = fleet.worker_pids()
                if any(state == "recovering" for state in states):
                    health["status"] = "recovering"
                elif any(state == "dead" for state in states):
                    health["status"] = "degraded"
            return self._json(200, health)
        if path == "/spawn":
            if method != "POST":
                raise _HttpError(405, "use POST /spawn")
            payload = self._body_json(body)
            if "key" in payload:
                fleet.spawn(payload["key"])
                return self._json(200, {"spawned": [payload["key"]]})
            (count,) = self._require(payload, "count")
            keys = fleet.spawn_many(
                int(count), payload.get("prefix", "session")
            )
            return self._json(200, {"spawned": keys})
        if path == "/deliver":
            if method != "POST":
                raise _HttpError(405, "use POST /deliver")
            payload = self._body_json(body)
            if "events" in payload:
                events = [
                    (event[0], event[1]) for event in payload["events"]
                ]
                fleet.run(events, encoding="events")
                return self._json(200, {"dispatched": len(events)})
            key, message = self._require(payload, "key", "message")
            fired = fleet.deliver(key, message)
            return self._json(200, {"fired": bool(fired)})
        if path == "/post":
            if method != "POST":
                raise _HttpError(405, "use POST /post")
            key, message = self._require(
                self._body_json(body), "key", "message"
            )
            accepted = fleet.post(key, message, source="gateway")
            return self._json(200, {"accepted": bool(accepted)})
        if path == "/drain":
            if method != "POST":
                raise _HttpError(405, "use POST /drain")
            return self._json(200, {"dispatched": fleet.drain_all()})
        if path == "/state":
            key = query.get("key")
            if key is None:
                raise _HttpError(400, "use GET /state?key=...")
            return self._json(
                200,
                {
                    "key": key,
                    "state": fleet.state_name(key),
                    "finished": fleet.is_finished(key),
                },
            )
        if path == "/trace":
            key = query.get("key")
            if key is None:
                raise _HttpError(400, "use GET /trace?key=...")
            trace = fleet.trace(key)
            return self._json(
                200,
                {
                    "key": trace.key,
                    "state": trace.state,
                    "actions": list(trace.actions),
                },
            )
        if path == "/snapshot":
            if method != "GET":
                raise _HttpError(405, "use GET /snapshot")
            partial = query.get("partial", "").lower() in ("1", "true", "yes")
            return self._json(
                200, snapshot_to_json(fleet.snapshot(allow_partial=partial))
            )
        if path == "/restore":
            if method != "POST":
                raise _HttpError(405, "use POST /restore")
            partial = query.get("partial", "").lower() in ("1", "true", "yes")
            snapshot = snapshot_from_json(self._body_json(body))
            fleet.restore(snapshot, allow_partial=partial)
            return self._json(200, {"restored": len(snapshot.instances)})
        if path == "/metrics":
            registry = fleet_registry(fleet)
            registry.merge(self.registry)
            return (
                200,
                render_prometheus(registry).encode("utf-8"),
                "text/plain; version=0.0.4",
            )
        if path == "/shutdown":
            if method != "POST":
                raise _HttpError(405, "use POST /shutdown")
            if not self._allow_remote_shutdown:
                raise _HttpError(
                    403, "remote shutdown disabled; start the gateway "
                    "with allow_remote_shutdown=True (--allow-remote-shutdown)"
                )
            self._shutdown.set()
            return self._json(200, {"status": "shutting down"})
        raise _HttpError(404, f"unknown path {path!r}")

    # ------------------------------------------------------------------
    # WebSocket
    # ------------------------------------------------------------------

    async def _websocket(self, headers, reader, writer) -> None:
        key = headers.get("sec-websocket-key")
        if not key:
            writer.write(
                self._response(
                    400, b'{"error": "missing Sec-WebSocket-Key"}\n',
                    "application/json", True,
                )
            )
            await writer.drain()
            return
        accept = base64.b64encode(
            hashlib.sha1((key + _WS_MAGIC).encode("latin-1")).digest()
        ).decode("latin-1")
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {accept}\r\n"
                "\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        while True:
            frame = await self._read_frame(reader)
            if frame is None:
                break
            opcode, payload = frame
            if opcode == 0x8:  # close
                writer.write(b"\x88\x00")
                await writer.drain()
                break
            if opcode == 0x9:  # ping -> pong
                writer.write(self._frame(0xA, payload))
                await writer.drain()
                continue
            if opcode not in (0x1, 0x2):
                continue
            self._ws_messages.add(1)
            reply = self._ws_reply(payload)
            writer.write(self._frame(0x1, reply))
            await writer.drain()

    def _ws_reply(self, payload: bytes) -> bytes:
        try:
            message = json.loads(payload)
            op = message.get("op")
            if op == "deliver":
                result = {
                    "fired": bool(
                        self._fleet.deliver(message["key"], message["message"])
                    )
                }
            elif op == "post":
                result = {
                    "accepted": bool(
                        self._fleet.post(
                            message["key"], message["message"], source="ws"
                        )
                    )
                }
            elif op == "state":
                result = {
                    "key": message["key"],
                    "state": self._fleet.state_name(message["key"]),
                    "finished": self._fleet.is_finished(message["key"]),
                }
            elif op == "len":
                result = {"instances": len(self._fleet)}
            else:
                result = {"error": f"unknown op {op!r}"}
        except DeploymentError as exc:
            result = {"error": str(exc)}
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            result = {"error": f"malformed frame: {exc}"}
        return json.dumps(result).encode("utf-8")

    @staticmethod
    async def _read_frame(reader):
        try:
            head = await reader.readexactly(2)
        except asyncio.IncompleteReadError:
            return None
        opcode = head[0] & 0x0F
        masked = bool(head[1] & 0x80)
        length = head[1] & 0x7F
        if length == 126:
            length = int.from_bytes(await reader.readexactly(2), "big")
        elif length == 127:
            length = int.from_bytes(await reader.readexactly(8), "big")
        mask = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
        if masked and payload:
            payload = bytes(
                byte ^ mask[i % 4] for i, byte in enumerate(payload)
            )
        return opcode, payload

    @staticmethod
    def _frame(opcode: int, payload: bytes) -> bytes:
        length = len(payload)
        if length < 126:
            head = bytes((0x80 | opcode, length))
        elif length < 1 << 16:
            head = bytes((0x80 | opcode, 126)) + length.to_bytes(2, "big")
        else:
            head = bytes((0x80 | opcode, 127)) + length.to_bytes(8, "big")
        return head + payload
