"""Sharded storage of machine-instance state.

Instances are partitioned across ``N`` shards by a *stable* hash of their
session key (CRC-32, not Python's per-process-randomised ``hash``), so the
same key always routes to the same shard — across calls, across store
rebuilds, and across processes.  Shards carry the membership (ordered key
lists, used for snapshots, per-shard population counts and the per-shard
mailbox alignment); the *dispatch* state of every instance lives in one
process-global session index so the batched drain loop resolves a key with
a single dict lookup, no routing hash on the hot path.

Each instance is a three-slot record (a plain list — the hot loop indexes
it, never attribute-accesses it):

* ``rec[STATE]``   — current state, premultiplied by the message-alphabet
  width so a dispatch-table offset is one addition (``rec[STATE] + column``);
* ``rec[ACTIONS]`` — the instance's performed-action log, stored as a list
  of per-transition action *chunks* (appending one tuple per fired
  transition is cheaper than extending; readers flatten at trace time);
* ``rec[BACKEND]`` — the backing interpreter/compiled instance, present
  only when the owning fleet dispatches in ``naive`` mode.

Snapshots capture ``(key, state name, action log)`` per instance — enough
to rebuild an equivalent fleet on either backend for recycling/failover.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.core.errors import DeploymentError
from repro.core.machine import FlatDispatchTable

#: Record slots (records are plain lists for hot-loop speed).
STATE, ACTIONS, BACKEND = 0, 1, 2


def shard_of(key: str, shards: int) -> int:
    """Stable shard index for a session key (CRC-32 based)."""
    return zlib.crc32(key.encode("utf-8")) % shards


@dataclass(frozen=True)
class InstanceSnapshot:
    """Portable state of one instance: enough to restore it anywhere."""

    key: str
    state: str
    actions: tuple[str, ...]


class Shard:
    """Membership of one partition: session keys in spawn order."""

    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: list[str] = []

    def __len__(self) -> int:
        return len(self.keys)


class InstanceStore:
    """All instances of one fleet: sharded membership, global dispatch index."""

    def __init__(self, table: FlatDispatchTable, shards: int = 8):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._table = table
        self._start = table.start_index * table.width
        #: key -> [premultiplied state, action log, backend-or-None]
        self.index: dict[str, list] = {}
        self.shards: list[Shard] = [Shard() for _ in range(shards)]

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def __len__(self) -> int:
        return len(self.index)

    def __contains__(self, key: str) -> bool:
        return key in self.index

    def shard_id(self, key: str) -> int:
        """The shard a key routes to (stable across rebuilds)."""
        return shard_of(key, len(self.shards))

    def shard_sizes(self) -> list[int]:
        """Instance population per shard."""
        return [len(shard) for shard in self.shards]

    def spawn(self, key: str, backend=None) -> list:
        """Create an instance at the start state; returns its record."""
        if key in self.index:
            raise DeploymentError(f"instance {key!r} already exists")
        rec = [self._start, [], backend]
        self.index[key] = rec
        self.shards[shard_of(key, len(self.shards))].keys.append(key)
        return rec

    def locate(self, key: str) -> list:
        """The record for an existing key."""
        try:
            return self.index[key]
        except KeyError:
            raise DeploymentError(f"unknown instance {key!r}") from None

    def keys(self) -> list[str]:
        """All session keys, grouped by shard in spawn order."""
        return [key for shard in self.shards for key in shard.keys]

    def clear(self) -> None:
        """Drop every instance (used by restore)."""
        self.index.clear()
        for shard in self.shards:
            shard.keys.clear()
