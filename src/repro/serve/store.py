"""Columnar, slot-indexed storage of machine-instance state.

Instances are interned to dense integer *slots* at spawn time: the
``slot_of`` dict (key -> slot) is the only string-keyed structure, and it
is consulted once per instance lifetime event (spawn, release, routing,
string-keyed dispatch) — never inside the encoded hot loop, which indexes
the flat columns directly by slot.  The columns are parallel arrays:

* ``states[slot]``    — current state, premultiplied by the message-alphabet
  width, so a dispatch-table offset is one addition
  (``states[slot] + column``).  A flat dense list, deliberately not an
  ``array('i')``: the premultiplied values are small ints CPython caches
  anyway, and ``array.__getitem__``/``__setitem__`` box/unbox on every
  access — measured at 25-40% of the whole dispatch loop at 10k
  instances, far more than the 4-byte-vs-pointer density buys;
* ``shard_ids[slot]`` — the slot's CRC-32 shard, memoized at spawn so
  routing an event for an interned key never re-hashes the key;
* ``logs[slot]``      — the performed-action log as a list of per-transition
  action *chunks* (``log_policy="full"``), or ``None`` when the store does
  not retain logs (``"count"`` / ``"off"``);
* ``counts[slot]``    — number of actions performed (``log_policy="count"``);
* ``backends[slot]``  — the backing interpreter/compiled instance, present
  only when the owning fleet dispatches in ``naive`` mode;
* ``key_of[slot]``    — the session key owning the slot (``None`` while the
  slot sits on the free list);
* ``timers[slot]``    — the armed scenario timer as an ``(rid, armed_state)``
  pair (``None`` when no timer is armed).  Owned by the scenario plane
  (:mod:`repro.serve.scenario`): ``rid`` identifies the pending wheel
  record and ``armed_state`` the state name the timer was armed in, so
  the engine can cancel on state exit with one column read.

Shard routing stays a *stable* hash of the session key (CRC-32, not
Python's per-process-randomised ``hash``), so the same key always routes
to the same shard — across calls, across store rebuilds, and across
processes; ``shard_ids`` merely caches that hash per slot.  Shards carry
the membership (ordered key lists, used for snapshots, per-shard
population counts and the per-shard mailbox alignment).

Released slots go on a free list and are reused by the next spawn, so a
long-lived fleet with session churn keeps its columns dense; reuse always
reinitialises the slot's state, log and backend columns — a recycled
slot never leaks its previous occupant's action log.

Snapshots capture ``(key, state name, action log)`` per instance — enough
to rebuild an equivalent fleet on either backend for recycling/failover.
"""

from __future__ import annotations

import zlib
from array import array
from dataclasses import dataclass
from typing import Optional

from repro.core.errors import DeploymentError
from repro.core.machine import FlatDispatchTable

#: Action-log retention policies.  ``full`` keeps every action chunk (the
#: only policy under which traces, snapshots and differential comparison
#: work); ``count`` keeps a per-slot count of performed actions; ``off``
#: keeps nothing — the hot loop does no per-event log mutation at all.
LOG_POLICIES = ("full", "count", "off")


def shard_of(key: str, shards: int) -> int:
    """Stable shard index for a session key (CRC-32 based)."""
    return zlib.crc32(key.encode("utf-8")) % shards


@dataclass(frozen=True)
class InstanceSnapshot:
    """Portable state of one instance: enough to restore it anywhere."""

    key: str
    state: str
    actions: tuple[str, ...]


class Shard:
    """Membership of one partition: session keys in spawn order.

    Backed by an insertion-ordered dict (values unused) so that both
    spawn and release are O(1) — a churning fleet despawns sessions
    without scanning its shard — while iteration still yields spawn
    order for snapshots.
    """

    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: dict[str, None] = {}

    def __len__(self) -> int:
        return len(self.keys)


class InstanceStore:
    """All instances of one fleet: columnar slot state, sharded membership."""

    def __init__(
        self,
        table: FlatDispatchTable,
        shards: int = 8,
        log_policy: str = "full",
        vector: bool = False,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if log_policy not in LOG_POLICIES:
            raise DeploymentError(
                f"unknown log policy {log_policy!r}; choose from {LOG_POLICIES}"
            )
        self._table = table
        self._start = table.start_index * table.width
        self.log_policy = log_policy
        #: Whether ``states`` is a numpy-backed :class:`StateColumn` (the
        #: vector kernel gathers/scatters against its flat buffer) rather
        #: than a plain list.  Scalar access semantics are identical.
        self.vector = vector
        #: key -> slot intern table (consulted at spawn/route time only).
        self.slot_of: dict[str, int] = {}
        #: slot -> key (``None`` while the slot is on the free list).
        self.key_of: list[Optional[str]] = []
        #: Premultiplied state per slot (dense list — see module docstring
        #: — or a :class:`StateColumn` for vector fleets).
        self.states = self._new_states()
        #: Memoized CRC-32 shard per slot (cold column: intake-time reads
        #: only, so the compact array representation costs nothing).
        self.shard_ids = array("i")
        #: Action-log column (``full``) / action counters (``count``).
        self.logs: list[Optional[list]] = []
        self.counts = array("q")
        #: Backend objects (naive-mode fleets only).
        self.backends: list = []
        #: Armed scenario timer per slot — ``(rid, armed_state)`` or ``None``.
        self.timers: list = []
        #: Released slots awaiting reuse (LIFO keeps the columns dense).
        self.free_slots: list[int] = []
        self.shards: list[Shard] = [Shard() for _ in range(shards)]

    def _new_states(self):
        """A fresh, empty states column in this store's representation."""
        if self.vector:
            from repro.serve.vector import StateColumn

            return StateColumn()
        return []

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def __len__(self) -> int:
        return len(self.slot_of)

    def __contains__(self, key: str) -> bool:
        return key in self.slot_of

    def shard_id(self, key: str) -> int:
        """The shard a key routes to — memoized for interned keys.

        Unknown keys still route (the hash is computed on the spot): the
        fleet defers existence checks to dispatch time on the
        string-keyed path, and the error must surface *there*, on the
        shard the key would live on.
        """
        slot = self.slot_of.get(key)
        if slot is not None:
            return self.shard_ids[slot]
        return shard_of(key, len(self.shards))

    def shard_sizes(self) -> list[int]:
        """Instance population per shard."""
        return [len(shard) for shard in self.shards]

    def spawn(self, key: str, backend=None) -> int:
        """Create an instance at the start state; returns its slot.

        A freed slot is reused when available; every column of the slot
        is reinitialised, so reuse can never leak the previous
        occupant's state, action log or backend.
        """
        if key in self.slot_of:
            raise DeploymentError(f"instance {key!r} already exists")
        shard_id = shard_of(key, len(self.shards))
        log = [] if self.log_policy == "full" else None
        if self.free_slots:
            slot = self.free_slots.pop()
            self.key_of[slot] = key
            self.states[slot] = self._start
            self.shard_ids[slot] = shard_id
            self.logs[slot] = log
            self.counts[slot] = 0
            self.backends[slot] = backend
            self.timers[slot] = None
        else:
            slot = len(self.key_of)
            self.key_of.append(key)
            self.states.append(self._start)
            self.shard_ids.append(shard_id)
            self.logs.append(log)
            self.counts.append(0)
            self.backends.append(backend)
            self.timers.append(None)
        self.slot_of[key] = slot
        self.shards[shard_id].keys[key] = None
        return slot

    def slot(self, key: str) -> int:
        """The slot of an existing key (:class:`DeploymentError` otherwise)."""
        try:
            return self.slot_of[key]
        except KeyError:
            raise DeploymentError(f"unknown instance {key!r}") from None

    def release(self, key: str) -> int:
        """Remove an instance; its slot joins the free list for reuse."""
        slot = self.slot(key)
        del self.slot_of[key]
        self.key_of[slot] = None
        self.logs[slot] = None
        self.counts[slot] = 0
        self.backends[slot] = None
        self.timers[slot] = None
        del self.shards[self.shard_ids[slot]].keys[key]
        self.free_slots.append(slot)
        return slot

    def keys(self) -> list[str]:
        """All session keys, grouped by shard in spawn order."""
        return [key for shard in self.shards for key in shard.keys]

    def clear(self) -> None:
        """Drop every instance and every recycled slot (used by restore)."""
        self.slot_of.clear()
        self.key_of = []
        self.states = self._new_states()
        self.shard_ids = array("i")
        self.logs = []
        self.counts = array("q")
        self.backends = []
        self.timers = []
        self.free_slots = []
        for shard in self.shards:
            shard.keys.clear()
