"""Fleet execution plane: sharded, batched serving of many machine instances.

Scales the paper's single-machine deployment story (§4) to a population:
instances are partitioned by session key across shards
(:mod:`repro.serve.store`), events queue in bounded per-shard mailboxes
(:mod:`repro.serve.mailbox`) and are dispatched in batches over the
machine's flat dispatch table (:mod:`repro.serve.fleet`), with
snapshot/restore, backpressure and a metrics surface
(:mod:`repro.serve.metrics`).  Both execution backends — interpreter and
compiled generated class — plug in through :mod:`repro.serve.adapter`;
:mod:`repro.serve.workload` fabricates arrival patterns and
:mod:`repro.serve.differential` proves fleet runs identical to standalone
single-instance runs.
"""

from repro.serve.adapter import BACKENDS, BackendAdapter, make_backend
from repro.serve.differential import (
    diff_against_hierarchical,
    diff_against_standalone,
    hierarchical_traces,
    standalone_traces,
)
from repro.serve.fleet import DISPATCH_MODES, FleetEngine, FleetSnapshot
from repro.serve.mailbox import Mailbox, OverflowPolicy
from repro.serve.metrics import FleetMetrics
from repro.serve.store import (
    LOG_POLICIES,
    InstanceSnapshot,
    InstanceStore,
    shard_of,
)
from repro.serve.workload import (
    SCENARIOS,
    WorkloadSpec,
    encode_schedule,
    generate_workload,
    session_keys,
)

__all__ = [
    "BACKENDS",
    "BackendAdapter",
    "DISPATCH_MODES",
    "FleetEngine",
    "FleetMetrics",
    "FleetSnapshot",
    "InstanceSnapshot",
    "InstanceStore",
    "LOG_POLICIES",
    "Mailbox",
    "OverflowPolicy",
    "SCENARIOS",
    "WorkloadSpec",
    "diff_against_hierarchical",
    "diff_against_standalone",
    "encode_schedule",
    "generate_workload",
    "hierarchical_traces",
    "make_backend",
    "session_keys",
    "shard_of",
    "standalone_traces",
]
