"""Fleet execution plane: sharded, batched serving of many machine instances.

Scales the paper's single-machine deployment story (§4) to a population:
instances are partitioned by session key across shards
(:mod:`repro.serve.store`), events queue in bounded per-shard mailboxes
(:mod:`repro.serve.mailbox`) and are dispatched in batches over the
machine's flat dispatch table (:mod:`repro.serve.fleet`), with
snapshot/restore, backpressure and a metrics surface
(:mod:`repro.serve.metrics`).  Both execution backends — interpreter and
compiled generated class — plug in through :mod:`repro.serve.adapter`;
:mod:`repro.serve.workload` fabricates arrival patterns and
:mod:`repro.serve.differential` proves fleet runs identical to standalone
single-instance runs.  :mod:`repro.serve.scenario` layers virtual time on
top: per-model timers, machine-driven routing between instances, and
fault injection with snapshot-replay recovery.
:mod:`repro.serve.loadgen` offers open/closed-loop load with
measured-service latency replay, feeding the telemetry plane
(:mod:`repro.obs`) that any engine accepts via
``FleetEngine(telemetry=...)``.  :mod:`repro.serve.vector` adds the
optional numpy-backed gather/scatter dispatch kernel
(``make_fleet(mode="vector")``); ``HAS_NUMPY`` reports whether it can
run here.
"""

from repro.serve.adapter import BACKENDS, BackendAdapter, make_backend
from repro.serve.api import (
    ENCODINGS,
    Fleet,
    MODEL_FACTORIES,
    fleet_machine,
    make_fleet,
)
from repro.serve.differential import (
    diff_against_hierarchical,
    diff_against_standalone,
    diff_fleets,
    hierarchical_traces,
    standalone_traces,
)
from repro.obs.telemetry import FleetTelemetry
from repro.serve.fleet import DISPATCH_MODES, FleetEngine, FleetSnapshot
from repro.serve.mpfleet import EncodedFleetSchedule, MultiprocessFleet
from repro.serve.recovery import (
    FleetRecoveringError,
    PartitionCheckpoint,
    RecoveryPolicy,
    RecoveryTelemetry,
    WorkerJournal,
)
from repro.serve.loadgen import (
    Arrival,
    ClosedLoopSpec,
    LoadReport,
    OpenLoopSpec,
    generate_open_loop,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.mailbox import Mailbox, OverflowPolicy
from repro.serve.metrics import FleetMetrics
from repro.serve.scenario import (
    GroupTopology,
    RouteRule,
    Scenario,
    ScenarioEngine,
    ScenarioFaultPlan,
    ScenarioMetrics,
    ScenarioProfile,
    ScenarioSnapshot,
    TimedEvent,
    TimerRule,
    run_scenario,
    scenario_traces,
)
from repro.serve.store import (
    LOG_POLICIES,
    InstanceSnapshot,
    InstanceStore,
    shard_of,
)
from repro.serve.vector import (
    HAS_NUMPY,
    NUMPY_UNAVAILABLE_REASON,
    VectorKernel,
    VectorSchedule,
    require_numpy,
)
from repro.serve.workload import (
    SCENARIOS,
    ScenarioSpec,
    SessionSimulator,
    WorkloadSpec,
    encode_schedule,
    generate_scenario,
    generate_workload,
    session_keys,
)

__all__ = [
    "Arrival",
    "BACKENDS",
    "BackendAdapter",
    "ClosedLoopSpec",
    "DISPATCH_MODES",
    "ENCODINGS",
    "EncodedFleetSchedule",
    "Fleet",
    "FleetEngine",
    "FleetMetrics",
    "FleetRecoveringError",
    "FleetSnapshot",
    "FleetTelemetry",
    "HAS_NUMPY",
    "NUMPY_UNAVAILABLE_REASON",
    "MODEL_FACTORIES",
    "MultiprocessFleet",
    "LoadReport",
    "OpenLoopSpec",
    "GroupTopology",
    "InstanceSnapshot",
    "InstanceStore",
    "LOG_POLICIES",
    "Mailbox",
    "OverflowPolicy",
    "PartitionCheckpoint",
    "RecoveryPolicy",
    "RecoveryTelemetry",
    "RouteRule",
    "SCENARIOS",
    "Scenario",
    "ScenarioEngine",
    "ScenarioFaultPlan",
    "ScenarioMetrics",
    "ScenarioProfile",
    "ScenarioSnapshot",
    "ScenarioSpec",
    "SessionSimulator",
    "TimedEvent",
    "TimerRule",
    "VectorKernel",
    "VectorSchedule",
    "WorkerJournal",
    "WorkloadSpec",
    "diff_against_hierarchical",
    "diff_against_standalone",
    "diff_fleets",
    "encode_schedule",
    "fleet_machine",
    "generate_open_loop",
    "generate_scenario",
    "generate_workload",
    "hierarchical_traces",
    "make_backend",
    "make_fleet",
    "require_numpy",
    "run_closed_loop",
    "run_open_loop",
    "run_scenario",
    "scenario_traces",
    "session_keys",
    "shard_of",
    "standalone_traces",
]
