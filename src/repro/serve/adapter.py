"""Common adapter over the two execution backends (paper §4.2 spectrum).

The fleet can back its instances with either end of the deployment
spectrum — the :class:`~repro.runtime.interp.MachineInterpreter` walking
the machine representation, or an instance of the generated class produced
by :func:`~repro.runtime.compile.compile_machine`.  Both already speak the
same protocol (``receive`` / ``get_state`` / ``is_finished`` / ``reset`` /
``sent``); the adapter's job is uniform construction and restoration, plus
amortising compilation: one :class:`~repro.runtime.cache.GeneratedCodeCache`
entry serves *every* instance of the same machine parameters, so spawning
a million compiled-backend sessions compiles exactly once.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import DeploymentError
from repro.core.machine import StateMachine
from repro.runtime.cache import GeneratedCodeCache, canonical_parameter_key
from repro.runtime.compile import compile_machine
from repro.runtime.interp import MachineInterpreter

#: Backend kinds the fleet accepts.
BACKENDS = ("interp", "compiled")

#: Process-wide cache of compiled machine classes, shared by every fleet
#: that does not bring its own cache.  Unbounded: the set of distinct
#: machine parameters in one process is small and an eviction would force
#: a pointless recompilation.
_SHARED_COMPILED_CACHE = GeneratedCodeCache(max_entries=None)


class BackendAdapter:
    """Uniform construction/restoration of protocol-identical instances."""

    def __init__(self, kind: str, machine: StateMachine, factory):
        self.kind = kind
        self.machine = machine
        self._factory = factory

    def new_instance(self):
        """A fresh instance in the machine's start state."""
        return self._factory()

    def restore_instance(self, instance, state_name: str, actions) -> None:
        """Force ``instance`` to a snapshotted state and action log."""
        instance.set_state(state_name)
        instance.sent[:] = actions


def make_backend(
    kind: str,
    machine: StateMachine,
    cache: Optional[GeneratedCodeCache] = None,
) -> BackendAdapter:
    """Build the adapter for a backend kind.

    ``interp`` instances share the one machine representation; ``compiled``
    instances share one generated class, produced at most once per machine
    parameters via ``cache`` (default: the process-wide shared cache).
    """
    if kind == "interp":
        # Validate once here, not once per spawned instance.
        machine.check_integrity()
        return BackendAdapter(
            kind, machine, lambda: MachineInterpreter(machine, validate=False)
        )
    if kind == "compiled":
        from repro.runtime.export import machine_fingerprint

        store = cache if cache is not None else _SHARED_COMPILED_CACHE
        # The canonical parameter key keeps the entry hashable whatever
        # shape machine.parameters takes (nested dicts, lists, sets,
        # unhashable user objects) and independent of dict ordering.
        key = (
            machine.name,
            canonical_parameter_key(machine.parameters),
            machine_fingerprint(machine),
        )
        compiled = store.get_or_generate(key, lambda: compile_machine(machine))
        return BackendAdapter(kind, machine, compiled.new_instance)
    raise DeploymentError(f"unknown backend {kind!r}; choose from {BACKENDS}")
