"""The fleet execution engine: many machine instances behind one API.

The paper's deployment story (§4) generates, compiles and binds a *single*
state machine; this module is the production-scale counterpart: it hosts
thousands-to-millions of instances of one generated machine, partitioned
by session key across shards, and dispatches events in batches.

Two dispatch modes expose the architectural choice the benchmarks measure:

* ``naive`` — every event is delivered individually to a per-instance
  backend object (a :class:`~repro.runtime.interp.MachineInterpreter` or a
  compiled generated-class instance, selected by ``backend``): one full
  protocol walk per event.
* ``batched`` — events are queued and whole batches are dispatched in one
  pass over the machine's precomputed
  :class:`~repro.core.machine.FlatDispatchTable`, specialised at fleet
  construction into two flat arrays: ``jump`` (premultiplied next-state
  offset, ``-1`` when the message is inapplicable) and ``acts`` (the
  transition's action tuple, with ``None`` marking a protocol-completing
  transition when auto-recycling).  Per event the loop does one dict
  lookup, one addition, two list indexings — no interpreter walk, no
  method dispatch.

Both modes produce identical per-instance state/action traces (the
differential tests assert this against standalone interpreter replays), so
the batched plane is a pure throughput optimisation.

Event intake is two-tier.  :meth:`FleetEngine.post` routes single events
into per-shard bounded :class:`~repro.serve.mailbox.Mailbox` queues —
backpressure domain per shard, with *shed* (drop and count) or *block*
(drain inline, the synchronous form of blocking the producer) overflow
policies — and :meth:`FleetEngine.drain_shard` dispatches a shard's queue
in one pass.  :meth:`FleetEngine.run` additionally treats an already
materialised event list as one arrival batch: when no mailbox bound is
configured there is nothing for per-shard queueing to enforce in a single
process, so the batch is dispatched directly against the sharded store's
global session index, skipping the per-event routing hash entirely.

Snapshot/restore captures every instance's ``(key, state, action log)``
for recycling and failover; recycling itself rides the ``reset()``
protocol both backends implement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import DeploymentError
from repro.core.machine import StateMachine
from repro.opt import IndexedMachine, as_pipeline
from repro.runtime.cache import GeneratedCodeCache
from repro.serve.adapter import BACKENDS, make_backend
from repro.serve.mailbox import Mailbox, OverflowPolicy
from repro.serve.metrics import FleetMetrics
from repro.serve.store import (
    ACTIONS,
    BACKEND,
    STATE,
    InstanceSnapshot,
    InstanceStore,
    shard_of,
)
from repro.serve.workload import session_keys

#: Event dispatch modes.
DISPATCH_MODES = ("naive", "batched")


@dataclass(frozen=True)
class FleetSnapshot:
    """Portable state of a whole fleet at a quiescent point.

    Pending (queued, undelivered) events are *not* part of a snapshot:
    :meth:`FleetEngine.snapshot` drains all mailboxes first so the capture
    is consistent.
    """

    machine_name: str
    instances: tuple[InstanceSnapshot, ...]


class FleetEngine:
    """Host a population of instances of one machine; dispatch events to them."""

    def __init__(
        self,
        machine: StateMachine,
        *,
        shards: int = 8,
        backend: str = "interp",
        mode: str = "batched",
        mailbox_capacity: Optional[int] = None,
        overflow: OverflowPolicy = OverflowPolicy.SHED,
        auto_recycle: bool = False,
        cache: Optional[GeneratedCodeCache] = None,
        optimize=None,
    ):
        if mode not in DISPATCH_MODES:
            raise DeploymentError(
                f"unknown dispatch mode {mode!r}; choose from {DISPATCH_MODES}"
            )
        if backend not in BACKENDS:
            raise DeploymentError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        self._machine = machine
        self._mode = mode
        self._backend_kind = backend
        self._auto_recycle = auto_recycle
        # The shared indexed IR is the fleet's source of truth: the
        # dispatch arrays are specialised from its int arrays, and an
        # optimize= pipeline (a repro.opt.PassPipeline, a level, or a
        # pass-list spec) runs over it before anything is built.
        self._indexed = IndexedMachine.from_machine(machine)
        pipeline = as_pipeline(optimize)
        if pipeline is not None:
            self._indexed, self.opt_report = pipeline.run(self._indexed)
        else:
            self.opt_report = None
        # Materialised lazily from the IR: only the naive backend and the
        # serving_machine accessor ever need the full object graph.
        self._serving_machine: Optional[StateMachine] = None
        self._table = self._indexed.dispatch_table()
        self._width = self._table.width
        self._columns = self._table.message_index
        self._final = self._table.final
        self._start = self._indexed.start * self._width
        # The specialised jump/acts arrays are only read by the batched
        # dispatch loop; naive fleets execute through backend objects.
        if mode == "batched":
            self._jump, self._acts = self._specialise_table()
        else:
            self._jump = self._acts = None
        # Backend objects only exist on the naive path; the batched path
        # executes instances as (premultiplied state, action log) records.
        # Naive backends run the *serving* (optimized) machine so both
        # modes report identical state names under one optimize setting.
        self._adapter = (
            make_backend(backend, self.serving_machine, cache)
            if mode == "naive"
            else None
        )
        self._store = InstanceStore(self._table, shards=shards)
        self._mailboxes = [
            Mailbox(capacity=mailbox_capacity, policy=overflow)
            for _ in range(shards)
        ]
        self._bounded = mailbox_capacity is not None
        self.metrics = FleetMetrics()

    def _specialise_table(self) -> tuple[list[int], list]:
        """Specialise the indexed IR into the two hot-loop arrays.

        ``jump[offset]`` is the next state premultiplied by the alphabet
        width (``-1``: message inapplicable).  ``acts[offset]`` is the
        action tuple; under auto-recycling a protocol-completing
        transition instead jumps straight to the start state and carries
        the ``None`` sentinel (its actions would be wiped by the
        immediate ``reset()`` anyway, exactly as in a standalone replay).

        Works from ``self._table`` — itself specialised straight from the
        shared :class:`~repro.opt.IndexedMachine` arrays, so action names
        arrive already stripped by the shared
        :func:`~repro.core.machine.strip_action_prefix` contract.
        """
        table = self._table
        width = self._width
        final = table.final
        auto = self._auto_recycle
        jump: list[int] = []
        acts: list = []
        for entry in table.entries:
            if entry is None:
                jump.append(-1)
                acts.append(())
            elif auto and final[entry[0]]:
                jump.append(self._start)
                acts.append(None)
            else:
                jump.append(entry[0] * width)
                acts.append(entry[1])
        return jump, acts

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def machine(self) -> StateMachine:
        """The machine the fleet was constructed with (pre-optimization)."""
        return self._machine

    @property
    def serving_machine(self) -> StateMachine:
        """The machine actually served (optimized when ``optimize=`` ran)."""
        if self._serving_machine is None:
            self._serving_machine = (
                self._machine
                if self.opt_report is None
                else self._indexed.to_machine()
            )
        return self._serving_machine

    @property
    def indexed_machine(self) -> IndexedMachine:
        """The shared IR the dispatch arrays were specialised from."""
        return self._indexed

    @property
    def state_map(self) -> Optional[dict]:
        """Original -> served state-name map when an optimizer merged states.

        ``None`` when no pipeline ran or the run was an identity — the
        differential harness then compares state names directly.
        """
        if self.opt_report is None or self.opt_report.identity:
            return None
        return self.opt_report.state_map

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def backend(self) -> str:
        return self._backend_kind

    @property
    def auto_recycle(self) -> bool:
        return self._auto_recycle

    @property
    def shard_count(self) -> int:
        return self._store.shard_count

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def shard_id(self, key: str) -> int:
        """The shard a session key routes to (stable across engines)."""
        return self._store.shard_id(key)

    def shard_sizes(self) -> list[int]:
        """Instance population per shard."""
        return self._store.shard_sizes()

    def depths(self) -> list[int]:
        """Current mailbox depth per shard; also recorded into metrics."""
        depths = [len(box) for box in self._mailboxes]
        self.metrics.observe_depths(depths)
        return depths

    def dropped_per_shard(self) -> list[int]:
        """Events shed per shard since construction."""
        return [box.dropped for box in self._mailboxes]

    # ------------------------------------------------------------------
    # instance lifecycle
    # ------------------------------------------------------------------

    def spawn(self, key: str) -> None:
        """Create one instance at the machine's start state."""
        backend = self._adapter.new_instance() if self._adapter is not None else None
        self._store.spawn(key, backend)
        self.metrics.instances_spawned += 1

    def spawn_many(self, count: int, prefix: str = "session") -> list[str]:
        """Create ``count`` instances with generated session keys.

        The keys come from :func:`repro.serve.workload.session_keys`, so a
        generated workload targets exactly the instances spawned here.
        """
        keys = session_keys(count, prefix)
        for key in keys:
            self.spawn(key)
        return keys

    def recycle(self, key: str) -> None:
        """Return one instance to the start state (the ``reset()`` protocol)."""
        rec = self._store.locate(key)
        if self._mode == "naive":
            rec[BACKEND].reset()
        else:
            rec[STATE] = self._start
            rec[ACTIONS].clear()
        self.metrics.instances_recycled += 1

    def trace(self, key: str) -> InstanceSnapshot:
        """The instance's current state name and full action log."""
        rec = self._store.locate(key)
        if self._mode == "naive":
            instance = rec[BACKEND]
            return InstanceSnapshot(key, instance.get_state(), tuple(instance.sent))
        return InstanceSnapshot(
            key,
            self._table.state_names[rec[STATE] // self._width],
            tuple(action for chunk in rec[ACTIONS] for action in chunk),
        )

    def is_finished(self, key: str) -> bool:
        """Whether the instance has reached a final state."""
        rec = self._store.locate(key)
        if self._mode == "naive":
            return rec[BACKEND].is_finished()
        return self._final[rec[STATE] // self._width]

    # ------------------------------------------------------------------
    # event intake
    # ------------------------------------------------------------------

    def post(self, key: str, message: str) -> bool:
        """Queue one event for batched dispatch; returns acceptance.

        Routing is a stable hash of the key; existence of the instance and
        validity of the message are checked at dispatch time, keeping the
        intake path to a hash, a bound check and an append.  Under the
        ``block`` policy a full mailbox is drained inline (the synchronous
        form of blocking the producer) and the event is then accepted.
        """
        shard_id = shard_of(key, len(self._mailboxes))
        mailbox = self._mailboxes[shard_id]
        if mailbox.offer((key, message)):
            self.metrics.events_offered += 1
            return True
        if mailbox.policy is OverflowPolicy.BLOCK:
            # The incoming event is enqueued even when the inline drain
            # raises for bad previously-queued events (the drain empties
            # the mailbox either way) — the error must not lose it.
            try:
                self.drain_shard(shard_id)
            finally:
                mailbox.offer((key, message))
                self.metrics.events_offered += 1
            return True
        self.metrics.events_dropped += 1
        return False

    def deliver(self, key: str, message: str) -> bool:
        """Dispatch one event immediately, bypassing the mailboxes.

        This is the per-event path — full routing, dispatch and metrics
        accounting for a single event; in ``naive`` mode one complete
        backend protocol walk.  Returns whether a transition fired.
        """
        rec = self._store.locate(key)
        metrics = self.metrics
        if self._mode == "naive":
            instance = rec[BACKEND]
            try:
                fired = instance.receive(message)
            except ValueError as exc:
                # Compiled generated classes raise raw ValueError for an
                # unknown message; normalise to the API's error type.
                raise DeploymentError(f"unknown message {message!r}") from exc
            metrics.events_dispatched += 1
            if fired:
                metrics.transitions_fired += 1
                if self._auto_recycle and instance.is_finished():
                    instance.reset()
                    metrics.instances_recycled += 1
            else:
                metrics.events_ignored += 1
            return fired
        try:
            offset = rec[STATE] + self._columns[message]
        except KeyError:
            raise DeploymentError(f"unknown message {message!r}") from None
        metrics.events_dispatched += 1
        next_state = self._jump[offset]
        if next_state < 0:
            metrics.events_ignored += 1
            return False
        acts = self._acts[offset]
        if acts:
            rec[ACTIONS].append(acts)
        elif acts is None:
            rec[ACTIONS].clear()
            metrics.instances_recycled += 1
        rec[STATE] = next_state
        metrics.transitions_fired += 1
        return True

    # ------------------------------------------------------------------
    # batched dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, batch) -> None:
        """Dispatch a batch of ``(key, message)`` events in one pass.

        A bad event (unknown instance or message) does not poison the
        batch: dispatch resumes with the events queued behind it, and one
        :class:`~repro.core.errors.DeploymentError` naming the rejected
        events is raised after the whole batch has been processed — so a
        programming error is still loud, but never loses valid traffic.
        """
        metrics = self.metrics
        ignored = 0
        recycled = 0
        rejected: list[tuple[str, str]] = []
        # Iterating an explicit iterator lets the except clause resume the
        # loop exactly after a failing event, at zero cost to the hot path.
        events = iter(batch)
        key = message = None
        if self._mode == "batched":
            index = self._store.index
            columns = self._columns
            jump = self._jump
            acts_table = self._acts
            while True:
                try:
                    # rec[0] is STATE, rec[1] is ACTIONS: literal indices keep
                    # the loop free of global-name lookups.
                    for key, message in events:
                        rec = index[key]
                        offset = rec[0] + columns[message]
                        next_state = jump[offset]
                        if next_state >= 0:
                            acts = acts_table[offset]
                            if acts:
                                rec[1].append(acts)
                            elif acts is None:
                                rec[1].clear()
                                recycled += 1
                            rec[0] = next_state
                        else:
                            ignored += 1
                    break
                except KeyError:
                    rejected.append((key, message))
            fired = len(batch) - len(rejected) - ignored
        else:
            index = self._store.index
            auto = self._auto_recycle
            fired = 0
            while True:
                try:
                    # rec[2] is BACKEND (see store record layout).
                    for key, message in events:
                        instance = index[key][2]
                        if instance.receive(message):
                            fired += 1
                            if auto and instance.is_finished():
                                instance.reset()
                                recycled += 1
                        else:
                            ignored += 1
                    break
                except (KeyError, ValueError, DeploymentError):
                    rejected.append((key, message))
        metrics.events_dispatched += len(batch) - len(rejected)
        metrics.transitions_fired += fired
        metrics.events_ignored += ignored
        metrics.instances_recycled += recycled
        if rejected:
            shown = ", ".join(f"({k!r}, {m!r})" for k, m in rejected[:3])
            suffix = f" (+{len(rejected) - 3} more)" if len(rejected) > 3 else ""
            raise DeploymentError(
                f"dispatch rejected {len(rejected)} event(s) with unknown "
                f"instance or message: {shown}{suffix}"
            )

    def drain_shard(self, shard_id: int) -> int:
        """Dispatch every queued event of one shard in a single pass."""
        batch = self._mailboxes[shard_id].drain()
        if not batch:
            return 0
        # The batch is drained at this point, so it counts even when
        # _dispatch raises for bad events after processing the rest.
        self.metrics.batches_drained += 1
        self._dispatch(batch)
        return len(batch)

    def drain_all(self) -> int:
        """Drain every shard; returns the number of events dispatched.

        A shard whose batch contains bad events still raises, but only
        after every shard has been drained — one failing shard does not
        strand traffic queued behind it in the others.
        """
        total = 0
        errors: list[str] = []
        for shard_id in range(len(self._mailboxes)):
            try:
                total += self.drain_shard(shard_id)
            except DeploymentError as exc:
                errors.append(str(exc))
        if errors:
            raise DeploymentError("; ".join(errors))
        return total

    def run(self, events) -> FleetMetrics:
        """Feed a whole workload through the engine's dispatch mode.

        Both modes first drain anything already queued (FIFO with
        previously posted traffic), then dispatch ``events`` as one
        arrival batch when the mailboxes are unbounded, or route them
        through :meth:`post`/:meth:`drain_all` when a capacity bound (and
        its overflow policy) is in force — intake is mode-independent, so
        bounded fleets shed/block identically in both modes.  Inside the
        batch, ``naive`` still performs one full backend protocol walk
        per event (the baseline the benchmarks measure) while ``batched``
        runs the flat-table loop.
        """
        self.drain_all()
        if not self._bounded:
            batch = events if isinstance(events, list) else list(events)
            if batch:
                self.metrics.events_offered += len(batch)
                self.metrics.batches_drained += 1
                self._dispatch(batch)
            return self.metrics
        # Bounded: identical intake for both modes — capacity and overflow
        # policy apply the same way, so bounded naive and bounded batched
        # fleets shed/block identically and stay trace-identical.  Errors
        # from inline drains (bad queued events under BLOCK) are collected
        # so they never strand the traffic still to be posted.
        errors: list[str] = []
        post = self.post
        for key, message in events:
            try:
                post(key, message)
            except DeploymentError as exc:
                errors.append(str(exc))
        try:
            self.drain_all()
        except DeploymentError as exc:
            errors.append(str(exc))
        if errors:
            raise DeploymentError("; ".join(errors))
        return self.metrics

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> FleetSnapshot:
        """Capture every instance's state after draining all mailboxes."""
        self.drain_all()
        instances = tuple(self.trace(key) for key in self._store.keys())
        self.metrics.snapshots_taken += 1
        return FleetSnapshot(machine_name=self._machine.name, instances=instances)

    def restore(self, snapshot: FleetSnapshot) -> None:
        """Rebuild the instance population from a snapshot.

        The current population and any still-queued events are discarded.
        Restoring a snapshot from a different machine raises
        :class:`~repro.core.errors.DeploymentError`.  Snapshots taken
        from an unoptimized fleet restore into an optimized one of the
        same machine: state names resolve through ``state_map``, so an
        instance parked in a merged-away state lands on the state that
        represents it.
        """
        if snapshot.machine_name != self._machine.name:
            raise DeploymentError(
                f"snapshot is for machine {snapshot.machine_name!r}, "
                f"this fleet serves {self._machine.name!r}"
            )
        state_index = self._table.state_index
        state_map = self.state_map
        resolved: dict[str, str] = {}
        for inst in snapshot.instances:
            name = inst.state
            if state_map is not None:
                name = state_map.get(name, name)
            if name not in state_index:
                raise DeploymentError(
                    f"snapshot state {inst.state!r} does not exist in "
                    f"machine {self._machine.name!r}"
                )
            resolved[inst.key] = name
        for mailbox in self._mailboxes:
            mailbox.drain()
        self._store.clear()
        for inst in snapshot.instances:
            backend = (
                self._adapter.new_instance() if self._adapter is not None else None
            )
            rec = self._store.spawn(inst.key, backend)
            if self._mode == "naive":
                self._adapter.restore_instance(
                    backend, resolved[inst.key], inst.actions
                )
            else:
                rec[STATE] = state_index[resolved[inst.key]] * self._width
                rec[ACTIONS] = [tuple(inst.actions)] if inst.actions else []
        self.metrics.snapshots_restored += 1
