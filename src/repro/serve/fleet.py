"""The fleet execution engine: many machine instances behind one API.

The paper's deployment story (§4) generates, compiles and binds a *single*
state machine; this module is the production-scale counterpart: it hosts
thousands-to-millions of instances of one generated machine, partitioned
by session key across shards, and dispatches events in batches.

Five dispatch modes expose the architectural spectrum the benchmarks
measure — each step removes one more layer of per-event work:

* ``naive`` — every event is delivered individually to a per-instance
  backend object (a :class:`~repro.runtime.interp.MachineInterpreter` or a
  compiled generated-class instance, selected by ``backend``): one full
  protocol walk per event.
* ``batched`` — events are queued as ``(key, message)`` string pairs and
  whole batches are dispatched in one pass over the ``jump``/``acts``
  arrays specialised from the shared
  :class:`~repro.opt.IndexedMachine` IR.  Per event the loop still pays
  one key-dict probe and one message-dict probe.
* ``encoded`` — events are *interned at intake*: the session key resolves
  to its dense store slot and the message to its column id once, so
  mailboxes and arrival batches carry ``(slot, column)`` int pairs and
  the inner loop is pure int arithmetic on two flat arrays
  (``offset = states[slot] + column; next = jump[offset]``) — no hashing,
  no string in sight.
* ``grouped`` — the encoded loop, with each batch first split into
  *rounds* (round *r* holds every slot's *r*-th event, preserving
  per-instance order exactly) and each round sorted by column, so the
  ``jump`` rows are walked in sequential column order.
* ``vector`` — the encoded plane with the Python bytecode loop removed:
  the states column is a flat numpy array and each grouped round
  executes as one gather/scatter over the jump table
  (:mod:`repro.serve.vector`).  Requires numpy (a soft dependency —
  construction raises the canonical error without it); the encoded
  path remains the always-on fallback and differential oracle.

All modes produce identical per-instance state/action traces (the
differential tests assert this against standalone interpreter replays), so
the batched/encoded planes are pure throughput optimisations.

``log_policy`` controls what the hot loop does with fired actions —
per-event tuple appends dominate profile time at 10k+ instances:
``full`` (default) retains every action chunk and is required for traces,
snapshots and differential comparison; ``count`` keeps only a per-slot
count of performed actions; ``off`` mutates nothing per event.

Event intake is two-tier.  :meth:`FleetEngine.post` routes single events
into per-shard bounded :class:`~repro.serve.mailbox.Mailbox` queues —
backpressure domain per shard, with *shed* (drop and count) or *block*
(drain inline, the synchronous form of blocking the producer) overflow
policies — and :meth:`FleetEngine.drain_shard` dispatches a shard's queue
in one pass.  Routing never re-hashes an interned key: the shard id is
memoized per slot at spawn time.  :meth:`FleetEngine.run` additionally
treats an already materialised event list as one arrival batch (encoded
once, for the encoded modes); :meth:`FleetEngine.run_encoded` accepts a
schedule that is *already* ``(slot, column)`` pairs, so a generator can
pay the interning cost once per workload instead of once per run.

Snapshot/restore captures every instance's ``(key, state, action log)``
for recycling and failover; recycling itself rides the ``reset()``
protocol both backends implement, and :meth:`FleetEngine.despawn` returns
an instance's slot to the store's free list for reuse.

Telemetry is opt-in and engine-external:
``FleetEngine(telemetry=FleetTelemetry())`` attaches a
:mod:`repro.obs` context and the engine feeds it — per-event mailbox
wait (post to drain) into ``fleet_queue_latency_seconds``, per-batch
dispatch wall time and size into ``fleet_batch_*``, and (when the
context carries a trace log) a trace id minted at :meth:`post` /
:meth:`encode` and recorded through shed and dispatch decisions.  The
cost model is deliberate: the encoded hot loop is untouched — batches
pay two clock reads and two histogram observations *per batch* — while
per-event stamping exists only on the mailbox path, which is already
the slower intake tier.  The default ``telemetry=None`` leaves every
path exactly as before.  Shard mailbox depths, by contrast, are always
observed: every drain records the drained batch's depth into
:class:`~repro.serve.metrics.FleetMetrics`, so ``shard_depths`` /
``peak_shard_depth`` are live without caller polling.
"""

from __future__ import annotations

import warnings
from array import array
from dataclasses import dataclass
from operator import itemgetter
from time import perf_counter
from typing import Optional

from repro.core.errors import DeploymentError
from repro.core.machine import StateMachine
from repro.obs.telemetry import FleetTelemetry
from repro.opt import IndexedMachine, as_pipeline
from repro.runtime.cache import GeneratedCodeCache
from repro.serve.adapter import BACKENDS, make_backend
from repro.serve.mailbox import Mailbox, OverflowPolicy
from repro.serve.metrics import FleetMetrics
from repro.serve.store import (
    LOG_POLICIES,
    InstanceSnapshot,
    InstanceStore,
    shard_of,
)
from repro.serve.vector import VectorKernel, VectorSchedule, require_numpy
from repro.serve.workload import session_keys

#: Event dispatch modes.
DISPATCH_MODES = ("naive", "batched", "encoded", "grouped", "vector")

#: Schedule encodings :meth:`FleetEngine.run` accepts.  ``auto`` sniffs
#: the batch (a flat int ``array`` dispatches as ``flat``, int-pair
#: batches as ``pairs``, everything else as ``events``); the explicit
#: names skip the sniff for callers that already know.
ENCODINGS = ("auto", "events", "pairs", "flat")

#: Modes whose mailboxes and arrival batches carry ``(slot, column)`` pairs.
_ENCODED_MODES = frozenset({"encoded", "grouped", "vector"})

_BY_COLUMN = itemgetter(1)


def raise_rejected(rejected: list[tuple[str, str]]) -> None:
    """Raise the canonical unknown instance/message dispatch error.

    One message shape for every fleet implementation — the in-process
    engine and the multiprocess fleet both reject through here, so a
    caller sees identical errors whichever side of the process boundary
    the validation ran on.
    """
    shown = ", ".join(f"({k!r}, {m!r})" for k, m in rejected[:3])
    suffix = f" (+{len(rejected) - 3} more)" if len(rejected) > 3 else ""
    raise DeploymentError(
        f"dispatch rejected {len(rejected)} event(s) with unknown "
        f"instance or message: {shown}{suffix}"
    )


@dataclass(frozen=True)
class FleetSnapshot:
    """Portable state of a whole fleet at a quiescent point.

    Pending (queued, undelivered) events are *not* part of a snapshot:
    :meth:`FleetEngine.snapshot` drains all mailboxes first so the capture
    is consistent.

    ``lost`` is the manifest of a *partial* snapshot: keys whose shard
    partition was unavailable at capture time
    (``MultiprocessFleet.snapshot(allow_partial=True)``).  A snapshot
    with a non-empty manifest refuses to restore unless the caller
    explicitly accepts the loss with ``restore(..., allow_partial=True)``.
    """

    machine_name: str
    instances: tuple[InstanceSnapshot, ...]
    lost: tuple[str, ...] = ()


class FleetEngine:
    """Host a population of instances of one machine; dispatch events to them."""

    def __init__(
        self,
        machine: StateMachine,
        *,
        shards: int = 8,
        backend: str = "interp",
        mode: str = "batched",
        mailbox_capacity: Optional[int] = None,
        overflow: OverflowPolicy = OverflowPolicy.SHED,
        auto_recycle: bool = False,
        cache: Optional[GeneratedCodeCache] = None,
        optimize=None,
        log_policy: str = "full",
        telemetry: Optional[FleetTelemetry] = None,
    ):
        if mode not in DISPATCH_MODES:
            raise DeploymentError(
                f"unknown dispatch mode {mode!r}; choose from {DISPATCH_MODES}"
            )
        if backend not in BACKENDS:
            raise DeploymentError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        if log_policy not in LOG_POLICIES:
            raise DeploymentError(
                f"unknown log policy {log_policy!r}; choose from {LOG_POLICIES}"
            )
        if mode == "naive" and log_policy != "full":
            raise DeploymentError(
                "naive-mode backends always retain their action logs; "
                f"log_policy {log_policy!r} needs a table-dispatch mode"
            )
        if mode == "vector":
            # Fail here, not at first dispatch: numpy is a soft
            # dependency and a deployment can still pick a scalar mode.
            require_numpy("dispatch mode 'vector'")
        self._machine = machine
        self._mode = mode
        self._encoded_intake = mode in _ENCODED_MODES
        self._backend_kind = backend
        self._auto_recycle = auto_recycle
        self._log_policy = log_policy
        # The shared indexed IR is the fleet's source of truth: the
        # dispatch arrays are specialised from its int arrays, and an
        # optimize= pipeline (a repro.opt.PassPipeline, a level, or a
        # pass-list spec) runs over it before anything is built.
        self._indexed = IndexedMachine.from_machine(machine)
        pipeline = as_pipeline(optimize)
        if pipeline is not None:
            self._indexed, self.opt_report = pipeline.run(self._indexed)
        else:
            self.opt_report = None
        # Materialised lazily from the IR: only the naive backend and the
        # serving_machine accessor ever need the full object graph.
        self._serving_machine: Optional[StateMachine] = None
        self._table = self._indexed.dispatch_table()
        self._width = self._table.width
        self._columns = self._table.message_index
        self._final = self._table.final
        self._start = self._indexed.start * self._width
        # The specialised jump/acts arrays serve every table-dispatch
        # mode; naive fleets execute through backend objects instead.
        if mode == "naive":
            self._jump = self._acts = None
        else:
            self._jump, self._acts = self._indexed.jump_arrays(auto_recycle)
        # Backend objects only exist on the naive path; the table modes
        # execute instances as columns of the slot-indexed store.
        # Naive backends run the *serving* (optimized) machine so all
        # modes report identical state names under one optimize setting.
        self._adapter = (
            make_backend(backend, self.serving_machine, cache)
            if mode == "naive"
            else None
        )
        self._store = InstanceStore(
            self._table,
            shards=shards,
            log_policy=log_policy,
            vector=(mode == "vector"),
        )
        # The vector kernel shares the scalar jump/acts tables.
        self._kernel = (
            VectorKernel(
                self._store, self._jump, self._acts, self._width, log_policy
            )
            if mode == "vector"
            else None
        )
        self._mailboxes = [
            Mailbox(capacity=mailbox_capacity, policy=overflow)
            for _ in range(shards)
        ]
        self._bounded = mailbox_capacity is not None
        self.metrics = FleetMetrics()
        self._telemetry = telemetry
        #: Per-shard post() timestamps, parallel to the mailbox contents;
        #: only stamped when telemetry is attached, consumed at drain.
        self._post_times: list[list[float]] = [[] for _ in range(shards)]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def machine(self) -> StateMachine:
        """The machine the fleet was constructed with (pre-optimization)."""
        return self._machine

    @property
    def serving_machine(self) -> StateMachine:
        """The machine actually served (optimized when ``optimize=`` ran)."""
        if self._serving_machine is None:
            self._serving_machine = (
                self._machine
                if self.opt_report is None
                else self._indexed.to_machine()
            )
        return self._serving_machine

    @property
    def indexed_machine(self) -> IndexedMachine:
        """The shared IR the dispatch arrays were specialised from."""
        return self._indexed

    @property
    def state_map(self) -> Optional[dict]:
        """Original -> served state-name map when an optimizer merged states.

        ``None`` when no pipeline ran or the run was an identity — the
        differential harness then compares state names directly.
        """
        if self.opt_report is None or self.opt_report.identity:
            return None
        return self.opt_report.state_map

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def backend(self) -> str:
        return self._backend_kind

    @property
    def auto_recycle(self) -> bool:
        return self._auto_recycle

    @property
    def log_policy(self) -> str:
        return self._log_policy

    @property
    def telemetry(self) -> Optional[FleetTelemetry]:
        """The attached telemetry context (``None`` when uninstrumented)."""
        return self._telemetry

    def telemetry_registry(self):
        """The telemetry metrics registry (``None`` when uninstrumented).

        The protocol-level accessor: multiprocess fleets merge their
        workers' registries here, so exposition code asks any fleet the
        same question instead of reaching for ``.telemetry.registry``.
        """
        return None if self._telemetry is None else self._telemetry.registry

    def close(self) -> None:
        """Release resources; a no-op for the in-process engine.

        Part of the :class:`~repro.serve.api.Fleet` protocol so callers
        can manage any fleet with one shutdown path (the multiprocess
        fleet tears down worker processes here).
        """

    def __enter__(self) -> "FleetEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def shard_count(self) -> int:
        return self._store.shard_count

    @property
    def store(self) -> InstanceStore:
        """The columnar instance store backing this fleet.

        Exposed for planes layered on top of the engine (the scenario
        plane reads the timer columns and shard membership directly);
        treat it as read-mostly — lifecycle goes through
        :meth:`spawn`/:meth:`despawn`.
        """
        return self._store

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def shard_id(self, key: str) -> int:
        """The shard a session key routes to (stable across engines)."""
        return self._store.shard_id(key)

    def shard_sizes(self) -> list[int]:
        """Instance population per shard."""
        return self._store.shard_sizes()

    def depths(self) -> list[int]:
        """Current mailbox depth per shard; also recorded into metrics."""
        depths = [len(box) for box in self._mailboxes]
        self.metrics.observe_depths(depths)
        return depths

    def dropped_per_shard(self) -> list[int]:
        """Events shed per shard since construction."""
        return [box.dropped for box in self._mailboxes]

    # ------------------------------------------------------------------
    # instance lifecycle
    # ------------------------------------------------------------------

    def spawn(self, key: str) -> int:
        """Create one instance at the machine's start state; returns its slot."""
        backend = self._adapter.new_instance() if self._adapter is not None else None
        slot = self._store.spawn(key, backend)
        self.metrics.instances_spawned += 1
        return slot

    def spawn_many(self, count: int, prefix: str = "session") -> list[str]:
        """Create ``count`` instances with generated session keys.

        The keys come from :func:`repro.serve.workload.session_keys`, so a
        generated workload targets exactly the instances spawned here.
        """
        keys = session_keys(count, prefix)
        for key in keys:
            self.spawn(key)
        return keys

    def despawn(self, key: str) -> None:
        """Remove one instance; its slot returns to the free list for reuse.

        Events still queued for the key are *not* purged: on the
        string-keyed path they surface as unknown-instance rejects at
        dispatch; on the encoded path, pairs already interned for the
        slot would be delivered to the slot's next occupant — drain
        before despawning when traffic may be in flight.
        """
        self._store.release(key)
        self.metrics.instances_released += 1

    def recycle(self, key: str) -> None:
        """Return one instance to the start state (the ``reset()`` protocol)."""
        store = self._store
        slot = store.slot(key)
        if self._mode == "naive":
            store.backends[slot].reset()
        else:
            store.states[slot] = self._start
            if self._log_policy == "full":
                store.logs[slot].clear()
            elif self._log_policy == "count":
                store.counts[slot] = 0
        self.metrics.instances_recycled += 1

    def state_name(self, key: str) -> str:
        """The instance's current state name (works under every log policy)."""
        slot = self._store.slot(key)
        if self._mode == "naive":
            return self._store.backends[slot].get_state()
        return self._table.state_names[self._store.states[slot] // self._width]

    def action_count(self, key: str) -> int:
        """Number of actions the instance has performed since its last reset.

        Available under ``full`` (counted from the retained log) and
        ``count`` (the per-slot counter); ``off`` retains nothing.
        """
        store = self._store
        slot = store.slot(key)
        if self._mode == "naive":
            return len(store.backends[slot].sent)
        if self._log_policy == "full":
            return sum(len(chunk) for chunk in store.logs[slot])
        if self._log_policy == "count":
            return store.counts[slot]
        raise DeploymentError(
            "log_policy 'off' retains no action information; "
            "use 'count' or 'full'"
        )

    def actions_since(self, key: str, start: int = 0) -> tuple[str, ...]:
        """The instance's actions from index ``start`` onward, in fire order.

        The incremental form of :meth:`trace` for observers that poll
        after every batch (the scenario plane routes each *new* action
        once): callers remember the count they have seen and pass it as
        ``start``.  Requires a retained log — ``naive`` backends always
        have one; table modes need ``log_policy='full'``.
        """
        store = self._store
        slot = store.slot(key)
        if self._mode == "naive":
            return tuple(store.backends[slot].sent[start:])
        if self._log_policy != "full":
            raise DeploymentError(
                f"log_policy {self._log_policy!r} does not retain action "
                "logs; actions_since needs log_policy='full'"
            )
        out: list[str] = []
        skip = start
        for chunk in store.logs[slot]:
            if skip >= len(chunk):
                skip -= len(chunk)
                continue
            out.extend(chunk[skip:] if skip else chunk)
            skip = 0
        return tuple(out)

    def trace(self, key: str) -> InstanceSnapshot:
        """The instance's current state name and full action log."""
        store = self._store
        slot = store.slot(key)
        if self._mode == "naive":
            instance = store.backends[slot]
            return InstanceSnapshot(key, instance.get_state(), tuple(instance.sent))
        if self._log_policy != "full":
            raise DeploymentError(
                f"log_policy {self._log_policy!r} does not retain action "
                "logs; traces and snapshots need log_policy='full'"
            )
        return InstanceSnapshot(
            key,
            self._table.state_names[store.states[slot] // self._width],
            tuple(action for chunk in store.logs[slot] for action in chunk),
        )

    def is_finished(self, key: str) -> bool:
        """Whether the instance has reached a final state."""
        slot = self._store.slot(key)
        if self._mode == "naive":
            return self._store.backends[slot].is_finished()
        return self._final[self._store.states[slot] // self._width]

    # ------------------------------------------------------------------
    # event intake
    # ------------------------------------------------------------------

    def encode(self, events) -> list[tuple[int, int]]:
        """Intern ``(key, message)`` events to ``(slot, column)`` pairs.

        The encoded serve path's batch half: keys resolve through the
        store's intern table and messages through the IR's message index
        exactly once, so :meth:`run_encoded` downstream never touches a
        string.  Slot ids are fleet-specific — encode against the fleet
        that will run the schedule.  Unknown keys or messages raise one
        :class:`~repro.core.errors.DeploymentError` naming them.

        With tracing attached, the whole schedule is minted one
        contiguous trace-id block (event *i* owns ``start + i``) and a
        single ``encode`` record marks the block — O(1) telemetry for
        an arbitrarily large schedule, which is what keeps the encoded
        path inside its overhead budget.
        """
        pairs, rejected = self._encode_batch(events)
        if rejected:
            self._raise_rejected(rejected)
        telemetry = self._telemetry
        if telemetry is not None and telemetry.trace is not None and pairs:
            ids = telemetry.trace.mint_range(len(pairs))
            telemetry.trace.record(
                ids.start,
                perf_counter(),
                "encode",
                detail=f"events={len(pairs)} ids={ids.start}..{ids.stop - 1}",
            )
        return pairs

    def encode_flat(self, events) -> array:
        """Intern events to a flat ``[slot, col, slot, col, ...]`` array.

        The allocation-free twin of :meth:`encode`: one machine-int
        buffer instead of one tuple per event, so a consumer holding many
        encoded batches — the scenario wheel keeps one per future instant
        — pays O(1) objects, not O(events), to build, keep and discard
        each.  Same validation contract as :meth:`encode`; dispatch with
        ``run(flat, encoding="flat")``.

        A ``vector`` fleet returns a
        :class:`~repro.serve.vector.VectorSchedule` instead of the raw
        buffer: the batch's per-instance ordering rounds are computed
        here, at encode time, so repeated runs of the schedule pay only
        the gather/scatter.  The schedule carries the flat buffer as
        ``.flat``, supports ``+`` concatenation, and ``run`` accepts it
        anywhere a flat array is accepted.
        """
        slot_of = self._store.slot_of
        columns = self._columns
        flat = array("q")
        append = flat.append
        rejected: list[tuple[str, str]] = []
        for key, message in events:
            try:
                slot = slot_of[key]
                col = columns[message]
            except KeyError:
                rejected.append((key, message))
            else:
                append(slot)
                append(col)
        if rejected:
            self._raise_rejected(rejected)
        if self._kernel is not None:
            return self._kernel.schedule_flat(flat)
        return flat

    def _encode_batch(self, events):
        """``(pairs, rejected)`` — bad events are collected, not raised."""
        slot_of = self._store.slot_of
        columns = self._columns
        pairs: list[tuple[int, int]] = []
        rejected: list[tuple[str, str]] = []
        append = pairs.append
        for key, message in events:
            try:
                append((slot_of[key], columns[message]))
            except KeyError:
                rejected.append((key, message))
        return pairs, rejected

    def _offer(self, shard_id: int, event, source: Optional[str] = None) -> bool:
        """Offer one event to a shard mailbox, applying the overflow policy."""
        mailbox = self._mailboxes[shard_id]
        if mailbox.offer(event, source):
            self.metrics.events_offered += 1
            if self._telemetry is not None:
                self._post_times[shard_id].append(perf_counter())
            return True
        if mailbox.policy is OverflowPolicy.BLOCK:
            # The incoming event is enqueued even when the inline drain
            # raises for bad previously-queued events (the drain empties
            # the mailbox either way) — the error must not lose it.
            try:
                self.drain_shard(shard_id)
            finally:
                mailbox.offer(event, source)
                self.metrics.events_offered += 1
                if self._telemetry is not None:
                    self._post_times[shard_id].append(perf_counter())
            return True
        self.metrics.events_dropped += 1
        return False

    def post(
        self,
        key: str,
        message: str,
        source: Optional[str] = None,
        trace_id: Optional[int] = None,
    ) -> bool:
        """Queue one event for batched dispatch; returns acceptance.

        Routing never re-hashes an interned key: the slot lookup yields
        the shard id memoized at spawn time (unknown keys fall back to
        the hash so the existence error still surfaces at dispatch, on
        the right shard).  In the encoded modes the event is interned
        here — the mailbox carries a ``(slot, column)`` pair — so an
        unknown key or message raises at intake instead.  Under the
        ``block`` policy a full mailbox is drained inline (the
        synchronous form of blocking the producer) and the event is then
        accepted.  ``source`` tags the enqueue's provenance in the shard
        mailbox (the scenario plane marks timed and routed traffic).

        With tracing attached, the event gets a trace id — minted here,
        or the caller-propagated ``trace_id`` when the event already has
        one (the scenario plane mints at schedule time) — and a ``post``
        record; an event refused under the ``shed`` policy additionally
        records ``shed``, so dropped traffic stays traceable.
        """
        store = self._store
        slot = store.slot_of.get(key)
        if self._encoded_intake:
            if slot is None:
                raise DeploymentError(f"unknown instance {key!r}")
            try:
                event = (slot, self._columns[message])
            except KeyError:
                raise DeploymentError(f"unknown message {message!r}") from None
            shard_id = store.shard_ids[slot]
        else:
            event = (key, message)
            shard_id = (
                store.shard_ids[slot]
                if slot is not None
                else shard_of(key, len(self._mailboxes))
            )
        telemetry = self._telemetry
        if telemetry is None or telemetry.trace is None:
            return self._offer(shard_id, event, source)
        trace = telemetry.trace
        if trace_id is None:
            trace_id = trace.mint()
        trace.record(
            trace_id, perf_counter(), "post", key=key, message=message, detail=source
        )
        accepted = self._offer(shard_id, event, source)
        if not accepted:
            trace.record(
                trace_id, perf_counter(), "shed", key=key, message=message
            )
        return accepted

    def deliver(self, key: str, message: str) -> bool:
        """Dispatch one event immediately, bypassing the mailboxes.

        This is the per-event path — full routing, dispatch and metrics
        accounting for a single event; in ``naive`` mode one complete
        backend protocol walk.  Returns whether a transition fired.  An
        unknown instance and an unknown message both raise
        :class:`~repro.core.errors.DeploymentError`, whatever the mode
        or backend.
        """
        store = self._store
        slot = store.slot(key)
        metrics = self.metrics
        if self._mode == "naive":
            instance = store.backends[slot]
            try:
                fired = instance.receive(message)
            except (ValueError, DeploymentError) as exc:
                # Compiled generated classes raise raw ValueError for an
                # unknown message, the interpreter its own DeploymentError;
                # normalise both to one API error shape.
                raise DeploymentError(f"unknown message {message!r}") from exc
            metrics.events_dispatched += 1
            if fired:
                metrics.transitions_fired += 1
                if self._auto_recycle and instance.is_finished():
                    instance.reset()
                    metrics.instances_recycled += 1
            else:
                metrics.events_ignored += 1
            return fired
        try:
            offset = store.states[slot] + self._columns[message]
        except KeyError:
            raise DeploymentError(f"unknown message {message!r}") from None
        metrics.events_dispatched += 1
        next_state = self._jump[offset]
        if next_state < 0:
            metrics.events_ignored += 1
            return False
        acts = self._acts[offset]
        policy = self._log_policy
        if acts:
            if policy == "full":
                store.logs[slot].append(acts)
            elif policy == "count":
                store.counts[slot] += len(acts)
        elif acts is None:
            if policy == "full":
                store.logs[slot].clear()
            elif policy == "count":
                store.counts[slot] = 0
            metrics.instances_recycled += 1
        store.states[slot] = next_state
        metrics.transitions_fired += 1
        return True

    # ------------------------------------------------------------------
    # batched dispatch
    # ------------------------------------------------------------------

    def _raise_rejected(self, rejected: list[tuple[str, str]]) -> None:
        raise_rejected(rejected)

    def _dispatch(self, batch) -> None:
        """Dispatch a batch of ``(key, message)`` events in one pass.

        A bad event (unknown instance or message) does not poison the
        batch: dispatch resumes with the events queued behind it, and one
        :class:`~repro.core.errors.DeploymentError` naming the rejected
        events is raised after the whole batch has been processed — so a
        programming error is still loud, but never loses valid traffic.
        """
        metrics = self.metrics
        store = self._store
        ignored = 0
        recycled = 0
        rejected: list[tuple[str, str]] = []
        # Iterating an explicit iterator lets the except clause resume the
        # loop exactly after a failing event, at zero cost to the hot path.
        events = iter(batch)
        key = message = None
        if self._mode == "naive":
            slot_of = store.slot_of
            backends = store.backends
            auto = self._auto_recycle
            fired = 0
            while True:
                try:
                    for key, message in events:
                        instance = backends[slot_of[key]]
                        if instance.receive(message):
                            fired += 1
                            if auto and instance.is_finished():
                                instance.reset()
                                recycled += 1
                        else:
                            ignored += 1
                    break
                except (KeyError, ValueError, DeploymentError):
                    rejected.append((key, message))
        elif self._log_policy == "full":
            slot_of = store.slot_of
            states = store.states
            logs = store.logs
            columns = self._columns
            jump = self._jump
            acts_table = self._acts
            while True:
                try:
                    for key, message in events:
                        slot = slot_of[key]
                        offset = states[slot] + columns[message]
                        next_state = jump[offset]
                        if next_state >= 0:
                            acts = acts_table[offset]
                            if acts:
                                logs[slot].append(acts)
                            elif acts is None:
                                logs[slot].clear()
                                recycled += 1
                            states[slot] = next_state
                        else:
                            ignored += 1
                    break
                except KeyError:
                    rejected.append((key, message))
            fired = len(batch) - len(rejected) - ignored
        else:
            # count/off policies share the encoded inner loops: intern the
            # batch (collecting bad events), then run pure int dispatch.
            pairs, rejected = self._encode_batch(batch)
            self._dispatch_pairs(pairs)
            if rejected:
                self._raise_rejected(rejected)
            return
        metrics.events_dispatched += len(batch) - len(rejected)
        metrics.transitions_fired += fired
        metrics.events_ignored += ignored
        metrics.instances_recycled += recycled
        if rejected:
            self._raise_rejected(rejected)

    def _group_rounds(self, pairs) -> list[list]:
        """Split an encoded batch into column-sorted rounds.

        Round *r* holds every slot's *r*-th event of the batch, so
        per-slot event order is preserved exactly; within a round every
        slot appears at most once, so sorting the round by column is
        free of ordering hazards and turns the ``jump`` access pattern
        sequential (all events of one message column dispatch together).
        """
        rounds: list[list] = []
        occurrence: dict[int, int] = {}
        get = occurrence.get
        for pair in pairs:
            slot = pair[0]
            nth = get(slot, 0)
            occurrence[slot] = nth + 1
            if nth == len(rounds):
                rounds.append([])
            rounds[nth].append(pair)
        for rnd in rounds:
            rnd.sort(key=_BY_COLUMN)
        return rounds

    def _dispatch_pairs(self, pairs) -> None:
        """Dispatch a batch of pre-encoded ``(slot, column)`` pairs."""
        if self._kernel is not None:
            self._kernel.dispatch(self._kernel.schedule_pairs(pairs), self.metrics)
        elif self._mode == "grouped":
            for rnd in self._group_rounds(pairs):
                self._run_pairs(rnd)
        else:
            self._run_pairs(pairs)

    def _run_pairs(self, pairs, count: Optional[int] = None) -> None:
        """The encoded hot loop: pure int arithmetic on two flat arrays.

        Pairs are trusted (interned by :meth:`encode` / :meth:`post`), so
        there is no error path inside the loop; the three variants differ
        only in what they do with a fired transition's actions.  ``count``
        is required when ``pairs`` is a one-shot iterable (the flat path)
        rather than a sized sequence.
        """
        if count is None:
            count = len(pairs)
        metrics = self.metrics
        store = self._store
        states = store.states
        jump = self._jump
        acts_table = self._acts
        ignored = 0
        recycled = 0
        policy = self._log_policy
        if policy == "full":
            logs = store.logs
            for slot, col in pairs:
                offset = states[slot] + col
                next_state = jump[offset]
                if next_state >= 0:
                    acts = acts_table[offset]
                    if acts:
                        logs[slot].append(acts)
                    elif acts is None:
                        logs[slot].clear()
                        recycled += 1
                    states[slot] = next_state
                else:
                    ignored += 1
        elif policy == "count":
            counts = store.counts
            for slot, col in pairs:
                offset = states[slot] + col
                next_state = jump[offset]
                if next_state >= 0:
                    acts = acts_table[offset]
                    if acts:
                        counts[slot] += len(acts)
                    elif acts is None:
                        counts[slot] = 0
                        recycled += 1
                    states[slot] = next_state
                else:
                    ignored += 1
        else:  # "off": no per-event log mutation at all
            for slot, col in pairs:
                offset = states[slot] + col
                next_state = jump[offset]
                if next_state >= 0:
                    if acts_table[offset] is None:
                        recycled += 1
                    states[slot] = next_state
                else:
                    ignored += 1
        metrics.events_dispatched += count
        metrics.transitions_fired += count - ignored
        metrics.events_ignored += ignored
        metrics.instances_recycled += recycled

    def drain_shard(self, shard_id: int) -> int:
        """Dispatch every queued event of one shard in a single pass.

        The drained batch's depth is recorded into :attr:`metrics`
        automatically, so ``shard_depths``/``peak_shard_depth`` are
        live without caller polling.  With telemetry attached the pass
        is wall-clocked (two clock reads per batch) and every drained
        event's mailbox wait lands in ``fleet_queue_latency_seconds``.
        """
        batch = self._mailboxes[shard_id].drain()
        if not batch:
            return 0
        # The batch is drained at this point, so it counts even when
        # _dispatch raises for bad events after processing the rest.
        self.metrics.batches_drained += 1
        self.metrics.observe_depth(shard_id, len(batch))
        telemetry = self._telemetry
        if telemetry is None:
            if self._encoded_intake:
                self._dispatch_pairs(batch)
            else:
                self._dispatch(batch)
            return len(batch)
        times = self._post_times[shard_id]
        self._post_times[shard_id] = []
        started = perf_counter()
        try:
            if self._encoded_intake:
                self._dispatch_pairs(batch)
            else:
                self._dispatch(batch)
        finally:
            telemetry.observe_batch(len(batch), perf_counter() - started)
            observe = telemetry.queue_latency.observe
            for stamp in times:
                observe(started - stamp)
        return len(batch)

    def drain_all(self) -> int:
        """Drain every shard; returns the number of events dispatched.

        A shard whose batch contains bad events still raises, but only
        after every shard has been drained — one failing shard does not
        strand traffic queued behind it in the others.
        """
        total = 0
        errors: list[str] = []
        for shard_id, mailbox in enumerate(self._mailboxes):
            if not mailbox:
                # An empty shard would drain to nothing anyway; skipping
                # it keeps back-to-back drains (every encoded dispatch
                # call starts with one) allocation-free.
                continue
            try:
                total += self.drain_shard(shard_id)
            except DeploymentError as exc:
                errors.append(str(exc))
        if errors:
            raise DeploymentError("; ".join(errors))
        return total

    def run(self, events, encoding: str = "auto") -> FleetMetrics:
        """Feed a whole workload through the engine — the one entry point.

        ``encoding`` names what ``events`` carries:

        * ``"events"`` — ``(key, message)`` string pairs (any mode).
        * ``"pairs"`` — pre-interned ``(slot, column)`` int pairs from
          :meth:`encode` (encoded modes only; pairs are trusted).
        * ``"flat"`` — a flat ``[slot, col, slot, col, ...]`` int array
          from :meth:`encode_flat` (encoded modes only).
        * ``"auto"`` (default) — sniff the batch: a flat int ``array``
          dispatches as ``flat``, a batch whose first element is an int
          pair as ``pairs``, everything else as ``events``.

        Every path first drains anything already queued (FIFO with
        previously posted traffic), then dispatches ``events`` as one
        arrival batch when the mailboxes are unbounded — with bad events
        collected and raised after the valid traffic dispatched — or
        routes them through :meth:`post`/:meth:`drain_all` when a
        capacity bound (and its overflow policy) is in force.
        """
        if encoding not in ENCODINGS:
            raise DeploymentError(
                f"unknown encoding {encoding!r}; choose from {ENCODINGS}"
            )
        if encoding == "auto":
            if isinstance(events, (array, VectorSchedule)):
                encoding = "flat"
            else:
                events = events if isinstance(events, list) else list(events)
                first = events[0] if events else None
                encoding = (
                    "pairs"
                    if first is not None and not isinstance(first[0], str)
                    else "events"
                )
        if encoding == "flat":
            return self._run_flat(events)
        if encoding == "pairs":
            return self._run_pairs_schedule(events)
        return self._run_events(events)

    def _run_events(self, events) -> FleetMetrics:
        """:meth:`run` body for ``(key, message)`` string batches."""
        self.drain_all()
        if not self._bounded:
            batch = events if isinstance(events, list) else list(events)
            if batch:
                self.metrics.events_offered += len(batch)
                self.metrics.batches_drained += 1
                started = perf_counter()
                try:
                    if self._encoded_intake:
                        pairs, rejected = self._encode_batch(batch)
                        self._dispatch_pairs(pairs)
                        if rejected:
                            self._raise_rejected(rejected)
                    else:
                        self._dispatch(batch)
                finally:
                    if self._telemetry is not None:
                        self._telemetry.observe_batch(
                            len(batch), perf_counter() - started
                        )
            return self.metrics
        # Bounded: identical intake for every mode — capacity and overflow
        # policy apply the same way, so bounded fleets shed/block
        # identically and stay trace-identical across modes.  Errors from
        # intake (encoded modes reject unknown keys/messages at post) and
        # from inline drains (bad queued events under BLOCK) are collected
        # so they never strand the traffic still to be posted.
        errors: list[str] = []
        post = self.post
        for key, message in events:
            try:
                post(key, message)
            except DeploymentError as exc:
                errors.append(str(exc))
        try:
            self.drain_all()
        except DeploymentError as exc:
            errors.append(str(exc))
        if errors:
            raise DeploymentError("; ".join(errors))
        return self.metrics

    def run_encoded(self, pairs) -> FleetMetrics:
        """Deprecated alias for :meth:`run` with ``encoding="pairs"``."""
        warnings.warn(
            "FleetEngine.run_encoded is deprecated; "
            'use run(pairs, encoding="pairs")',
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(pairs, encoding="pairs")

    def _run_pairs_schedule(self, pairs) -> FleetMetrics:
        """:meth:`run` body for pre-encoded ``(slot, column)`` schedules.

        The zero-string serve path: the schedule comes from
        :meth:`encode` (or
        :func:`repro.serve.workload.encode_schedule`) against *this*
        fleet — slot ids are fleet-specific — and dispatch goes straight
        to the int hot loop.  Only the encoded modes accept pairs; pairs
        are trusted, exactly as documented on :meth:`encode`.
        """
        if not self._encoded_intake:
            raise DeploymentError(
                f"a pre-encoded pair schedule needs an encoded dispatch mode "
                f"('encoded', 'grouped' or 'vector'); this fleet "
                f"dispatches {self._mode!r}"
            )
        self.drain_all()
        if not self._bounded:
            batch = pairs if isinstance(pairs, list) else list(pairs)
            if batch:
                self.metrics.events_offered += len(batch)
                self.metrics.batches_drained += 1
                started = perf_counter()
                self._dispatch_pairs(batch)
                if self._telemetry is not None:
                    self._telemetry.observe_batch(
                        len(batch), perf_counter() - started
                    )
            return self.metrics
        shard_ids = self._store.shard_ids
        offer = self._offer
        for pair in pairs:
            offer(shard_ids[pair[0]], pair)
        self.drain_all()
        return self.metrics

    def run_encoded_flat(self, flat) -> FleetMetrics:
        """Deprecated alias for :meth:`run` with ``encoding="flat"``."""
        warnings.warn(
            "FleetEngine.run_encoded_flat is deprecated; "
            'use run(flat, encoding="flat")',
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(flat, encoding="flat")

    def _run_flat(self, flat) -> FleetMetrics:
        """:meth:`run` body for flat ``[slot, col, ...]`` schedules.

        The ``pairs`` contract, minus per-event objects: pairs are
        formed inside ``zip``, whose result tuple the interpreter
        recycles, so the hot loop neither allocates nor frees anything
        per event.  Bounded and grouped fleets need real pair objects (to
        queue, to sort into rounds) and take the ``pairs``
        path; ``zip`` hands them freshly materialized pairs.
        """
        if not self._encoded_intake:
            raise DeploymentError(
                f"a flat encoded schedule needs an encoded dispatch mode "
                f"('encoded', 'grouped' or 'vector'); this fleet "
                f"dispatches {self._mode!r}"
            )
        if self._kernel is not None:
            schedule = self._kernel.schedule_flat(flat)
            if self._bounded:
                it = iter(schedule.flat)
                return self._run_pairs_schedule(list(zip(it, it)))
            self.drain_all()
            if schedule.count:
                self.metrics.events_offered += schedule.count
                self.metrics.batches_drained += 1
                started = perf_counter()
                self._kernel.dispatch(schedule, self.metrics)
                if self._telemetry is not None:
                    self._telemetry.observe_batch(
                        schedule.count, perf_counter() - started
                    )
            return self.metrics
        if self._bounded or self._mode == "grouped":
            it = iter(flat)
            return self._run_pairs_schedule(list(zip(it, it)))
        self.drain_all()
        count = len(flat) // 2
        if count:
            self.metrics.events_offered += count
            self.metrics.batches_drained += 1
            started = perf_counter()
            it = iter(flat)
            self._run_pairs(zip(it, it), count)
            if self._telemetry is not None:
                self._telemetry.observe_batch(count, perf_counter() - started)
        return self.metrics

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self, allow_partial: bool = False) -> FleetSnapshot:
        """Capture every instance's state after draining all mailboxes.

        ``allow_partial`` is accepted for protocol uniformity with the
        multiprocess fleet; an in-process engine cannot lose a
        partition, so its snapshots are always whole.
        """
        self.drain_all()
        instances = tuple(self.trace(key) for key in self._store.keys())
        self.metrics.snapshots_taken += 1
        return FleetSnapshot(machine_name=self._machine.name, instances=instances)

    def restore(
        self, snapshot: FleetSnapshot, allow_partial: bool = False
    ) -> None:
        """Rebuild the instance population from a snapshot.

        The current population — including any free slots accumulated by
        :meth:`despawn` — and any still-queued events are discarded; the
        snapshot's instances are interned afresh in snapshot order, so
        per-key traces survive whatever spawn order and slot layout the
        source fleet had.  Restoring a snapshot from a different machine
        raises :class:`~repro.core.errors.DeploymentError`.  Snapshots
        taken from an unoptimized fleet restore into an optimized one of
        the same machine: state names resolve through ``state_map``, so
        an instance parked in a merged-away state lands on the state
        that represents it.
        """
        if snapshot.machine_name != self._machine.name:
            raise DeploymentError(
                f"snapshot is for machine {snapshot.machine_name!r}, "
                f"this fleet serves {self._machine.name!r}"
            )
        if getattr(snapshot, "lost", ()) and not allow_partial:
            raise DeploymentError(
                f"snapshot is partial: {len(snapshot.lost)} instance(s) "
                "from lost partitions are missing; pass allow_partial=True "
                "to restore the survivors"
            )
        state_index = self._table.state_index
        state_map = self.state_map
        resolved: dict[str, str] = {}
        for inst in snapshot.instances:
            name = inst.state
            if state_map is not None:
                name = state_map.get(name, name)
            if name not in state_index:
                raise DeploymentError(
                    f"snapshot state {inst.state!r} does not exist in "
                    f"machine {self._machine.name!r}"
                )
            resolved[inst.key] = name
        for mailbox in self._mailboxes:
            mailbox.drain()
        self._post_times = [[] for _ in self._mailboxes]
        store = self._store
        store.clear()
        policy = self._log_policy
        for inst in snapshot.instances:
            backend = (
                self._adapter.new_instance() if self._adapter is not None else None
            )
            slot = store.spawn(inst.key, backend)
            if self._mode == "naive":
                self._adapter.restore_instance(
                    backend, resolved[inst.key], inst.actions
                )
            else:
                store.states[slot] = state_index[resolved[inst.key]] * self._width
                if policy == "full":
                    store.logs[slot] = (
                        [tuple(inst.actions)] if inst.actions else []
                    )
                elif policy == "count":
                    store.counts[slot] = len(inst.actions)
        self.metrics.snapshots_restored += 1
