"""Vectorized batch dispatch kernel over the columnar fleet store.

The encoded hot path is pure int arithmetic (``offset = states[slot] +
col; next = jump[offset]``) but still executes one Python bytecode
iteration per event; this module executes a whole dispatch round as
numpy gather/scatter over the same jump table the scalar loop walks:

* **gather** — ``offsets = states[slots] + cols`` and
  ``next = jump[offsets]`` pull every event's transition in two array
  reads;
* **scatter** — ``states[slots] = next`` writes every fired transition
  back in one pass.

A gather/scatter round is only race-free when each slot appears at most
once, so a batch is first split into *occurrence rounds* — round *r*
holds every slot's *r*-th event, exactly the per-instance ordering rounds
``grouped`` dispatch established — and the rounds execute sequentially.
Round splitting is itself vectorized (a stable radix argsort of the slot
column; slot ids below 2**16 sort as ``uint16``, where numpy's stable
sort is an O(n) radix pass) and happens once per schedule at *encode*
time: :class:`VectorSchedule` carries the pre-split per-round arrays, so
a repeated ``run`` pays only the gathers — the same "intern once per
workload" contract the encoded plane already has.

The non-vectorizable edges are masked out and post-processed scalar-side:

* **inapplicable messages** never branch: the kernel's jump variant maps
  a ``-1`` (message inapplicable) entry to the *current* premultiplied
  state, so the scatter is unconditional; the ignored count comes from
  one boolean gather.
* **action logging** (``log_policy='full'``/``'count'``) gathers an
  actions-present mask and walks only the matching events in Python,
  appending the identical action tuples the scalar loop appends — traces
  stay byte-identical.
* **finish-state auto-recycle** gathers the recycle mask (transitions
  whose ``acts`` sentinel is ``None``) and clears those slots' logs
  scalar-side, mirroring the encoded loop exactly.
* **unknown instances/messages** never reach the kernel: interning at
  intake (``encode``/``encode_flat``/``post``) rejects them with the
  canonical :class:`~repro.core.errors.DeploymentError`, exactly as on
  every other encoded path.

numpy is a *soft* dependency and this module is the single import guard:
everything else asks :data:`HAS_NUMPY` / :func:`require_numpy`.  Without
numpy (or with ``REPRO_NO_NUMPY`` set, which CI uses to exercise the
fallback) a ``mode='vector'`` fleet raises the canonical
:class:`~repro.core.errors.DeploymentError` at construction and the pure
-Python encoded path — which stays the differential oracle for the
kernel — serves unchanged.
"""

from __future__ import annotations

import os
from array import array

from repro.core.errors import DeploymentError

__all__ = [
    "HAS_NUMPY",
    "NUMPY_UNAVAILABLE_REASON",
    "StateColumn",
    "VectorKernel",
    "VectorSchedule",
    "require_numpy",
]

if os.environ.get("REPRO_NO_NUMPY"):
    _np = None
    NUMPY_UNAVAILABLE_REASON: str | None = (
        "numpy disabled via REPRO_NO_NUMPY (fallback-path testing)"
    )
else:
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY
        _np = None
        NUMPY_UNAVAILABLE_REASON = (
            "numpy is not installed (pip install 'repro[vector]')"
        )
    else:
        NUMPY_UNAVAILABLE_REASON = None

#: Whether the vectorized kernel can run in this environment.
HAS_NUMPY = _np is not None

#: Slot/column ids sort as uint16 (numpy's O(n) stable radix path) below
#: this; larger populations fall back to the comparison argsort.
_RADIX_LIMIT = 1 << 16


def require_numpy(feature: str = "vector dispatch") -> None:
    """Raise the canonical error when the soft numpy dependency is absent."""
    if not HAS_NUMPY:
        raise DeploymentError(f"{feature} needs numpy: {NUMPY_UNAVAILABLE_REASON}")


class StateColumn:
    """The store's ``states`` column as a growable flat numpy array.

    Scalar accesses (``deliver``, ``state_name``, restore) keep the exact
    list semantics — ``__getitem__`` returns a plain ``int`` so snapshots
    stay bit-identical with list-backed fleets — while the kernel gathers
    and scatters against the raw :attr:`data` buffer directly.  Growth is
    amortized doubling; only indices below ``len(self)`` are ever live,
    exactly like the list column.
    """

    __slots__ = ("data", "size")

    def __init__(self) -> None:
        require_numpy("the vectorized states column")
        self.data = _np.zeros(64, dtype=_np.int64)
        self.size = 0

    def append(self, value: int) -> None:
        if self.size == len(self.data):
            grown = _np.empty(2 * len(self.data), dtype=_np.int64)
            grown[: self.size] = self.data
            self.data = grown
        self.data[self.size] = value
        self.size += 1

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, slot: int) -> int:
        return int(self.data[slot])

    def __setitem__(self, slot: int, value: int) -> None:
        self.data[slot] = value


def _occurrence_rounds(slots, cols):
    """Split a batch into per-instance occurrence rounds.

    Returns ``[(slots_r, cols_r), ...]`` where round *r* holds every
    slot's *r*-th event of the batch in original arrival order — the
    exact round structure :meth:`FleetEngine._group_rounds` produces,
    computed with array passes instead of a Python loop.  Within a round
    every slot is unique, so gather/scatter execution is race-free.
    """
    n = len(slots)
    if n == 0:
        return []
    top = int(slots.max()) + 1
    counts = _np.bincount(slots, minlength=top)
    if int(counts.max()) <= 1:
        return [(slots, cols)]
    # Occurrence index of each event among its slot's events: stable-sort
    # by slot, then each event's rank inside its (contiguous) slot group
    # is its position minus the group's start, scattered back to arrival
    # order.  Group starts come from the exclusive prefix sum of the
    # per-slot counts — no comparisons, no accumulate scan.
    sort_key = slots.astype(_np.uint16) if top <= _RADIX_LIMIT else slots
    order = _np.argsort(sort_key, kind="stable")
    positions = _np.arange(n, dtype=_np.int64)
    group_starts = _np.repeat(_np.cumsum(counts) - counts, counts)
    occurrence = _np.empty(n, dtype=_np.int64)
    occurrence[order] = positions - group_starts
    # Regroup by occurrence round, preserving arrival order within each.
    rounds_total = int(occurrence.max()) + 1
    occ_key = (
        occurrence.astype(_np.uint16)
        if rounds_total <= _RADIX_LIMIT
        else occurrence
    )
    by_round = _np.argsort(occ_key, kind="stable")
    bounds = _np.cumsum(_np.bincount(occurrence, minlength=rounds_total))
    rounds = []
    start = 0
    for end in bounds:
        end = int(end)
        picked = by_round[start:end]
        rounds.append((slots[picked], cols[picked]))
        start = end
    return rounds


class VectorSchedule:
    """A pre-encoded schedule with its round structure already computed.

    The vector twin of the flat ``array('q')`` schedule: built once at
    encode time from interned ``(slot, column)`` ids, it carries the flat
    buffer (for bounded-mailbox fallbacks and cross-checks) plus the
    per-round numpy arrays the kernel gathers over, so dispatch never
    pays the round split.  Schedules are fleet-specific — encode against
    the fleet that will run the schedule.
    """

    __slots__ = ("flat", "rounds", "count")

    def __init__(self, flat: array):
        require_numpy("a vector schedule")
        self.flat = flat
        buffer = _np.frombuffer(flat, dtype=_np.int64) if len(flat) else None
        if buffer is None:
            self.rounds = []
            self.count = 0
        else:
            slots = _np.ascontiguousarray(buffer[0::2])
            cols = _np.ascontiguousarray(buffer[1::2])
            self.rounds = _occurrence_rounds(slots, cols)
            self.count = len(slots)

    def __len__(self) -> int:
        return self.count

    def __add__(self, other: "VectorSchedule") -> "VectorSchedule":
        merged = array("q", self.flat)
        merged.extend(other.flat)
        return VectorSchedule(merged)


class VectorKernel:
    """Execute encoded batches as gather/scatter over the jump table.

    Built by a ``mode='vector'`` :class:`~repro.serve.fleet.FleetEngine`
    from the same ``jump``/``acts`` arrays the scalar encoded loop uses;
    the kernel precomputes three per-offset arrays so a dispatch round is
    pure array arithmetic:

    * ``jump`` — next premultiplied state, with ``-1`` (inapplicable)
      entries remapped to the offset's *own* premultiplied state so the
      scatter needs no mask;
    * ``flags`` — ``int8``, 1 where the message is inapplicable, 2 where
      the transition carries the auto-recycle sentinel (the two are
      disjoint), so both counters come out of *one* gather per round;
    * ``logged`` / ``recycles`` — booleans marking the offsets that need
      scalar-side post-processing (action retention, auto-recycle).
    """

    __slots__ = (
        "_store",
        "_policy",
        "_acts",
        "_jump",
        "_flags",
        "_ignored",
        "_logged",
        "_recycles",
        "_any_logged",
        "_any_recycles",
        "_any_flags",
    )

    def __init__(self, store, jump, acts, width: int, log_policy: str):
        require_numpy()
        self._store = store
        self._policy = log_policy
        self._acts = acts
        offsets = _np.arange(len(jump), dtype=_np.int64)
        raw = _np.asarray(jump, dtype=_np.int64)
        inapplicable = raw < 0
        # Remap inapplicable entries to the offset's own premultiplied
        # state (offset // width * width) so the round scatter needs no
        # mask: an ignored event rewrites the state it read.
        self._jump = _np.where(inapplicable, offsets - (offsets % width), raw)
        self._ignored = inapplicable
        self._logged = _np.fromiter(
            (entry is not None and len(entry) > 0 for entry in acts),
            dtype=_np.bool_,
            count=len(acts),
        )
        self._recycles = _np.fromiter(
            (entry is None for entry in acts), dtype=_np.bool_, count=len(acts)
        )
        self._flags = (
            self._ignored.astype(_np.int8) + 2 * self._recycles.astype(_np.int8)
        )
        self._any_logged = bool(self._logged.any()) and log_policy != "off"
        self._any_recycles = bool(self._recycles.any())
        self._any_flags = bool(inapplicable.any()) or self._any_recycles

    # ------------------------------------------------------------------
    # schedule construction
    # ------------------------------------------------------------------

    def schedule_flat(self, flat) -> VectorSchedule:
        """Wrap a flat ``[slot, col, ...]`` buffer as a ready schedule."""
        if isinstance(flat, VectorSchedule):
            return flat
        return VectorSchedule(flat if isinstance(flat, array) else array("q", flat))

    def schedule_pairs(self, pairs) -> VectorSchedule:
        """Wrap a ``(slot, column)`` pair batch as a ready schedule."""
        flat = array("q")
        for slot, col in pairs:
            flat.append(slot)
            flat.append(col)
        return VectorSchedule(flat)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def dispatch(self, schedule: VectorSchedule, metrics) -> None:
        """Run every round of a schedule; update the fleet counters.

        Counter semantics are identical to the scalar encoded loop:
        ``events_dispatched`` counts the batch, ``transitions_fired``
        excludes inapplicable messages, ``instances_recycled`` counts
        protocol-completing transitions under auto-recycle.
        """
        states = self._store.states.data
        jump = self._jump
        flags = self._flags
        ignored = 0
        recycled = 0
        # ``off`` never retains actions and a recycle only bumps the
        # counter, so the pure-array flags path covers it; ``full``/
        # ``count`` drop to the masked scalar walk per round.
        scalar_edges = self._any_logged or (
            self._any_recycles and self._policy != "off"
        )
        check_flags = self._any_flags and not scalar_edges
        for slots, cols in schedule.rounds:
            offsets = states[slots] + cols
            states[slots] = jump[offsets]
            if scalar_edges:
                ignored += int(_np.count_nonzero(self._ignored[offsets]))
                recycled += self._post_process(slots, offsets)
            elif check_flags:
                hit = flags[offsets]
                total = int(hit.sum())
                if total:
                    dropped = int(_np.count_nonzero(hit & 1))
                    ignored += dropped
                    recycled += (total - dropped) >> 1
        metrics.events_dispatched += schedule.count
        metrics.transitions_fired += schedule.count - ignored
        metrics.events_ignored += ignored
        metrics.instances_recycled += recycled

    def _post_process(self, slots, offsets) -> int:
        """Scalar-side handling of the masked edges of one round.

        Only the events whose offsets carry retained actions (under
        ``full``/``count``) or the auto-recycle sentinel are touched;
        everything else stayed inside the vector path.  Appends the
        identical action tuples the scalar loop appends, in the identical
        per-slot order (rounds run sequentially; a slot appears at most
        once per round).
        """
        store = self._store
        acts_table = self._acts
        policy = self._policy
        if self._any_logged:
            mask = self._logged[offsets]
            if mask.any():
                picked_slots = slots[mask].tolist()
                picked_offsets = offsets[mask].tolist()
                if policy == "full":
                    logs = store.logs
                    for slot, offset in zip(picked_slots, picked_offsets):
                        logs[slot].append(acts_table[offset])
                else:  # "count"
                    counts = store.counts
                    for slot, offset in zip(picked_slots, picked_offsets):
                        counts[slot] += len(acts_table[offset])
        recycled = 0
        if self._any_recycles:
            mask = self._recycles[offsets]
            if mask.any():
                recycled_slots = slots[mask].tolist()
                recycled = len(recycled_slots)
                if policy == "full":
                    logs = store.logs
                    for slot in recycled_slots:
                        logs[slot].clear()
                elif policy == "count":
                    counts = store.counts
                    for slot in recycled_slots:
                        counts[slot] = 0
        return recycled
