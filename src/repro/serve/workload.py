"""Synthetic event workloads for fleet benchmarks and differential tests.

A workload is a *recorded schedule*: a plain list of ``(session_key,
message)`` events, so the identical stream can be replayed through a fleet
and through standalone interpreters and the traces compared exactly.

The generator simulates each session's protocol position against the
machine's flat dispatch table and mostly sends messages that are enabled
in the session's current state (so transitions actually fire), mixed with
a configurable fraction of arbitrary-message noise (exercising the
ignored-event path).  Sessions that complete the protocol are recycled to
the start state — matching a fleet run with ``auto_recycle=True``.

Arrival scenarios:

* ``uniform`` — every event targets a uniformly random session;
* ``hotkey``  — a small hot set of sessions receives most of the traffic
  (skew stresses a single shard's mailbox and dispatch batch);
* ``burst``   — one session receives a run of consecutive events before
  the next session is drawn (bursty arrival, deep per-shard batches).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import SimulationError
from repro.core.machine import StateMachine

#: Supported arrival scenarios.
SCENARIOS = ("uniform", "hotkey", "burst")


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic workload."""

    scenario: str = "uniform"
    instances: int = 1000
    events: int = 10_000
    seed: int = 0
    #: Probability an event carries an arbitrary (possibly inapplicable)
    #: message instead of one enabled in the session's current state.
    noise: float = 0.1
    #: ``hotkey``: fraction of sessions forming the hot set, and the share
    #: of traffic they receive.
    hot_fraction: float = 0.1
    hot_share: float = 0.9
    #: ``burst``: mean run length of consecutive events to one session.
    burst_length: int = 16


def session_keys(count: int, prefix: str = "session") -> list[str]:
    """The canonical key naming used by ``FleetEngine.spawn_many``."""
    return [f"{prefix}-{i:07d}" for i in range(count)]


def encode_schedule(fleet, schedule) -> list[tuple[int, int]]:
    """Intern a recorded ``(key, message)`` schedule for one fleet.

    The encoded serve path's generator half: session keys resolve to
    their dense store slots and messages to their column ids *once per
    schedule*, producing the ``(slot, column)`` int pairs that
    ``fleet.run(pairs, encoding="pairs")`` dispatches without touching a string.
    Slot ids are fleet-specific — the returned pairs are only meaningful
    for ``fleet`` (with its current population); re-encode after a
    restore or despawn churn.
    """
    return fleet.encode(schedule)


@dataclass(frozen=True)
class ScenarioSpec:
    """Parameters of a generated timed scenario (see ``generate_scenario``)."""

    #: Topology shape: ``groups`` disjoint groups of ``group_size`` members.
    groups: int = 4
    group_size: int = 4
    seed: int = 0
    #: Kick arrival window: each kick lands on an integer tick in
    #: ``[0, spread)`` — several events share an instant, so the wheel
    #: batches them.
    spread: float = 40.0
    #: Extra arbitrary-message events, as a fraction of the kick count
    #: (exercises the ignored-event path under timed delivery).
    noise: float = 0.0
    #: Virtual time the scenario runs to (must cover routing cascades
    #: and timer fires seeded inside the arrival window).
    until: float = 400.0
    snapshot_every: float | None = None


def generate_scenario(machine: StateMachine, profile, spec: ScenarioSpec, faults=None):
    """Produce a :class:`~repro.serve.scenario.Scenario` for ``machine``.

    The timed analogue of :func:`generate_workload`: a regular group
    topology, ``profile.kicks_per_member`` kick messages per member at
    seeded integer ticks inside the arrival window, plus a seeded
    fraction of arbitrary-message noise.  Everything downstream (timer
    fires, routed fan-out, fault draws) is derived deterministically by
    the scenario engine from the returned schedule and ``spec.seed``.
    """
    # Imported here, not at module top: the fleet engine imports this
    # module, and the scenario plane sits above the fleet.
    from repro.serve.scenario import GroupTopology, Scenario, TimedEvent

    if spec.groups < 1 or spec.group_size < 1:
        raise SimulationError("scenario needs >= 1 group of >= 1 member")
    if spec.spread < 1:
        raise SimulationError("scenario spread must be >= 1 tick")
    if not 0.0 <= spec.noise <= 1.0:
        raise SimulationError("noise must be in [0, 1]")
    if not profile.kicks:
        raise SimulationError(
            "profile declares no kick messages; generate_scenario needs some"
        )
    topology = GroupTopology.regular(spec.groups, spec.group_size)
    rng = random.Random(spec.seed)
    ticks = int(spec.spread)
    events = [
        TimedEvent(float(rng.randrange(ticks)), key, kick)
        for key in topology.keys
        for _ in range(profile.kicks_per_member)
        for kick in profile.kicks
    ]
    messages = machine.dispatch_table().messages
    for _ in range(int(spec.noise * len(events))):
        events.append(
            TimedEvent(
                float(rng.randrange(ticks)),
                topology.keys[rng.randrange(len(topology.keys))],
                messages[rng.randrange(len(messages))],
            )
        )
    events.sort(key=lambda event: event.time)
    return Scenario(
        profile=profile,
        topology=topology,
        events=tuple(events),
        faults=faults,
        seed=spec.seed,
        until=spec.until,
        snapshot_every=spec.snapshot_every,
    )


class SessionSimulator:
    """Per-session protocol positions over a machine's dispatch table.

    The message-choosing core shared by :func:`generate_workload` and the
    load generators (:mod:`repro.serve.loadgen`): each session tracks its
    simulated state; :meth:`next_message` mostly draws a message enabled
    in that state (so transitions actually fire), mixed with a ``noise``
    fraction of arbitrary messages, and advances the position — mirroring
    a fleet run with ``auto_recycle=True`` (completed sessions restart).

    Draws come from the caller's ``rng`` in a fixed order (one draw for
    the noise coin unless the state has no enabled messages, then one for
    the message pick), so schedules are reproducible per seed.
    """

    __slots__ = ("_table", "_enabled", "_rng", "_noise", "_state")

    def __init__(self, machine: StateMachine, keys, rng, noise: float = 0.1):
        if not 0.0 <= noise <= 1.0:
            raise SimulationError("noise must be in [0, 1]")
        table = machine.dispatch_table()
        self._table = table
        # Enabled messages per state, precomputed once.
        self._enabled: list[tuple[str, ...]] = [
            tuple(
                table.messages[col]
                for col in range(table.width)
                if table.entries[row * table.width + col] is not None
            )
            for row in range(len(table.state_names))
        ]
        self._rng = rng
        self._noise = noise
        self._state = {key: table.start_index for key in keys}

    def next_message(self, key: str) -> str:
        """Draw the session's next message and advance its position."""
        table = self._table
        rng = self._rng
        state = self._state[key]
        options = self._enabled[state]
        if not options or rng.random() < self._noise:
            message = table.messages[rng.randrange(table.width)]
        else:
            message = options[rng.randrange(len(options))]
        entry = table.entries[state * table.width + table.message_index[message]]
        if entry is not None:
            # Mirror auto-recycling: completed sessions restart.
            self._state[key] = (
                table.start_index if table.final[entry[0]] else entry[0]
            )
        return message


def generate_workload(
    machine: StateMachine, spec: WorkloadSpec
) -> list[tuple[str, str]]:
    """Produce a recorded event schedule for ``machine`` under ``spec``."""
    if spec.scenario not in SCENARIOS:
        raise SimulationError(
            f"unknown workload scenario {spec.scenario!r}; choose from {SCENARIOS}"
        )
    if spec.instances < 1 or spec.events < 0:
        raise SimulationError("workload needs >= 1 instance and >= 0 events")
    if not 0.0 < spec.hot_fraction <= 1.0 or not 0.0 <= spec.hot_share <= 1.0:
        raise SimulationError(
            "hot_fraction must be in (0, 1] and hot_share in [0, 1]"
        )
    if spec.burst_length < 1:
        raise SimulationError("burst_length must be >= 1")

    rng = random.Random(spec.seed)
    keys = session_keys(spec.instances)
    sessions = SessionSimulator(machine, keys, rng, spec.noise)

    hot_count = max(1, int(spec.instances * spec.hot_fraction))
    burst_key: str | None = None
    burst_left = 0

    def next_key() -> str:
        nonlocal burst_key, burst_left
        if spec.scenario == "uniform":
            return keys[rng.randrange(spec.instances)]
        if spec.scenario == "hotkey":
            if rng.random() < spec.hot_share:
                return keys[rng.randrange(hot_count)]
            return keys[rng.randrange(spec.instances)]
        # burst
        if burst_left <= 0 or burst_key is None:
            burst_key = keys[rng.randrange(spec.instances)]
            burst_left = rng.randint(1, 2 * spec.burst_length)
        burst_left -= 1
        return burst_key

    schedule: list[tuple[str, str]] = []
    for _ in range(spec.events):
        key = next_key()
        schedule.append((key, sessions.next_message(key)))
    return schedule
