"""Journal, checkpoint and supervision primitives for partition recovery.

The multiprocess fleet loses a whole shard partition when its worker
process dies; this module supplies the pieces that make that loss
*temporary*.  The design splits cleanly across the process boundary:

Parent side
    :class:`WorkerJournal` — a write-ahead log of the exact wire request
    tuples sent to one worker since its last checkpoint.  Bulk dispatch
    journals *before* fan-out (the entry is the same flat ``array('q')``
    buffer that crosses the pipe, so journaling costs one list append on
    the hot path); lifecycle operations journal *after* their reply
    (their effect died with the worker when no reply came, so a caller
    retry after recovery is exactly-once).  Replaying checkpoint +
    journal against a fresh worker therefore applies every acknowledged
    operation exactly once.

Worker side
    :func:`partition_checkpoint` / :func:`rehydrate` — capture and
    rebuild a partition at its *exact* slot layout: occupied slots in
    order, plus the free-list stack.  Layout-exactness is what makes the
    journal replayable verbatim (slot ids in journaled flat buffers stay
    valid) and keeps pre-encoded
    :class:`~repro.serve.mpfleet.EncodedFleetSchedule` objects usable
    across a recovery — slot assignment in the store is a deterministic
    function of (layout, operation sequence).

Shared
    :class:`FleetRecoveringError` — the transient flavour of
    :class:`~repro.core.errors.DeploymentError` raised while a partition
    is rehydrating; it carries a ``retry_after`` hint the gateway turns
    into ``503 + Retry-After``.  :class:`RecoveryPolicy` bounds the
    respawn retry/backoff loop, and :class:`RecoveryTelemetry` is the
    observability plane: MTTR histogram, restart/replay/checkpoint
    counters and die→respawn→replay→resume trace causality, all built on
    the existing :mod:`repro.obs` instruments.

The supervisor loop itself lives in
:class:`~repro.serve.mpfleet.MultiprocessFleet` (it owns the worker
handles and the population map); this module never imports ``mpfleet``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

from repro.core.errors import DeploymentError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceLog
from repro.serve.metrics import FleetMetrics

__all__ = [
    "FleetRecoveringError",
    "PartitionCheckpoint",
    "RecoveryPolicy",
    "RecoveryTelemetry",
    "WorkerJournal",
    "combine_metrics",
    "partition_checkpoint",
    "rehydrate",
]


class FleetRecoveringError(DeploymentError):
    """A partition is being rehydrated; retry shortly.

    Subclasses :class:`DeploymentError` so existing handlers keep
    working, but carries enough structure (``worker_id``,
    ``retry_after``) for callers that want to degrade gracefully instead
    of failing — the gateway maps this to ``503`` with a ``Retry-After``
    header, and programmatic callers can block on
    :meth:`~repro.serve.mpfleet.MultiprocessFleet.await_recovery`.
    """

    def __init__(self, message: str, *, worker_id: int, retry_after: float):
        super().__init__(message)
        self.worker_id = worker_id
        self.retry_after = retry_after


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounds for the supervisor's respawn loop."""

    #: Respawn attempts per death before the partition is declared lost.
    max_restarts: int = 3
    #: Delay before the first respawn attempt (seconds).
    backoff_s: float = 0.05
    #: Multiplier applied to the delay after each failed attempt.
    backoff_factor: float = 2.0
    #: ``Retry-After`` hint carried by :class:`FleetRecoveringError`.
    retry_after_s: float = 1.0


@dataclass(frozen=True)
class PartitionCheckpoint:
    """A worker partition frozen at its exact slot layout, columnar.

    Column ``i`` describes slot ``i``: ``keys[i]`` is the session key
    (``None`` when the slot was on the free list), ``states[i]`` its
    state name (``""`` for free slots), ``actions[i]`` the retained
    action log (present under ``log_policy='full'`` and for naive
    backends) and ``counts[i]`` the action count (``'count'`` policy);
    ``free`` is the free-list stack bottom-to-top.  The layout is
    columnar rather than one record object per slot because checkpoints
    cross the worker pipe on the dispatch clock: flat tuples pickle as
    memoized strings instead of thousands of per-slot object
    reconstructions, which keeps the cadence tax on hot-path throughput
    near zero.

    The parent attaches the worker's *effective* metrics and telemetry
    registry at capture time — they become the restart baseline of the
    next incarnation, so merged fleet counters stay monotonic across a
    die→respawn cycle.
    """

    keys: tuple[Optional[str], ...] = ()
    states: tuple[str, ...] = ()
    actions: tuple[tuple[str, ...], ...] = ()
    counts: tuple[int, ...] = ()
    free: tuple[int, ...] = ()
    metrics: FleetMetrics = field(default_factory=FleetMetrics)
    registry: Optional[MetricsRegistry] = None


class WorkerJournal:
    """Write-ahead log of one worker's wire traffic since its checkpoint.

    Entries are ``(request_tuple, event_count)`` pairs holding the exact
    tuples sent over the pipe — for bulk dispatch that is a reference to
    the already-interned flat buffer, so the hot-path cost is one
    append.  ``events`` counts journaled dispatch events since the last
    checkpoint; the owning fleet checkpoints (and truncates) when it
    crosses ``checkpoint_every``.
    """

    __slots__ = ("checkpoint", "ops", "events")

    def __init__(self, checkpoint: Optional[PartitionCheckpoint] = None):
        self.checkpoint = checkpoint if checkpoint is not None else PartitionCheckpoint()
        self.ops: list[tuple[tuple, int]] = []
        self.events = 0

    def append(self, request: tuple, events: int = 0) -> None:
        self.ops.append((request, events))
        self.events += events

    def truncate(self, checkpoint: PartitionCheckpoint) -> None:
        """Install a fresh checkpoint; everything before it is obsolete."""
        self.checkpoint = checkpoint
        self.ops = []
        self.events = 0


def combine_metrics(base: FleetMetrics, fresh: FleetMetrics) -> FleetMetrics:
    """A worker's effective counters: restart baseline + this incarnation.

    Unlike :meth:`FleetMetrics.merge` (which *concatenates*
    ``shard_depths`` because each worker owns disjoint shards), both
    operands here describe the *same* partition at different times:
    counters add, the depth gauge takes the fresher observation, the
    peak takes the maximum.
    """
    merged = FleetMetrics()
    merged.merge(base)
    merged.shard_depths = []
    merged.peak_shard_depth = 0
    merged.merge(fresh)
    merged.shard_depths = list(fresh.shard_depths or base.shard_depths)
    merged.peak_shard_depth = max(base.peak_shard_depth, fresh.peak_shard_depth)
    return merged


def combine_registries(
    base: Optional[MetricsRegistry], fresh: Optional[MetricsRegistry]
) -> Optional[MetricsRegistry]:
    """Effective telemetry registry of one worker across restarts."""
    if base is None and fresh is None:
        return None
    merged = MetricsRegistry()
    if base is not None:
        merged.merge(base)
    if fresh is not None:
        merged.merge(fresh)
    return merged


# ---------------------------------------------------------------------------
# worker-side capture / rebuild (runs inside the worker process)
# ---------------------------------------------------------------------------


def partition_checkpoint(engine) -> PartitionCheckpoint:
    """Freeze a worker engine's partition at its exact slot layout.

    Unlike :meth:`FleetEngine.snapshot` this works under every log
    policy (capturing whatever the store retains), preserves slot
    numbering and the free-list stack, and deliberately does *not* count
    as a user-visible snapshot in the metrics — checkpoints are
    infrastructure, and a supervised fleet must report the same counters
    as an unsupervised twin.
    """
    store = engine._store
    keys = tuple(store.key_of)
    free = tuple(store.free_slots)
    if engine.mode == "naive":
        states = []
        actions = []
        for slot, key in enumerate(keys):
            if key is None:
                states.append("")
                actions.append(())
            else:
                backend = store.backends[slot]
                states.append(backend.get_state())
                actions.append(tuple(backend.sent))
        return PartitionCheckpoint(
            keys=keys, states=tuple(states), actions=tuple(actions), free=free
        )
    names = engine._table.state_names
    width = engine._width
    packed = store.states
    states = tuple(
        "" if key is None else names[packed[slot] // width]
        for slot, key in enumerate(keys)
    )
    policy = engine.log_policy
    if policy == "full":
        logs = store.logs
        actions = tuple(
            ()
            if key is None
            else tuple(action for chunk in logs[slot] for action in chunk)
            for slot, key in enumerate(keys)
        )
        return PartitionCheckpoint(
            keys=keys, states=states, actions=actions, free=free
        )
    if policy == "count":
        return PartitionCheckpoint(
            keys=keys, states=states, counts=tuple(store.counts), free=free
        )
    return PartitionCheckpoint(keys=keys, states=states, free=free)


def rehydrate(engine, checkpoint: PartitionCheckpoint) -> None:
    """Rebuild a fresh worker engine at a checkpoint's exact layout.

    Occupied slots are respawned in slot order, free slots are filled
    with placeholders and released in recorded stack order — afterwards
    ``store.free_slots == checkpoint.free`` and every key sits at its
    original slot, so journaled flat schedules (and future spawns, which
    pop the same stack) replay verbatim.  Metrics are deliberately left
    untouched: the parent accounts for pre-checkpoint history via the
    restart baseline, and journal replay re-counts the rest.
    """
    store = engine._store
    adapter = engine._adapter
    naive = engine.mode == "naive"
    policy = engine.log_policy
    state_index = engine._table.state_index
    width = engine._width
    for mailbox in engine._mailboxes:
        mailbox.drain()
    store.clear()
    states = checkpoint.states
    actions_col = checkpoint.actions
    counts_col = checkpoint.counts
    for slot, key in enumerate(checkpoint.keys):
        backend = adapter.new_instance() if adapter is not None else None
        if key is None:
            spawned = store.spawn(f"\x00rehydrate-free-{slot}", backend)
        else:
            spawned = store.spawn(key, backend)
        if spawned != slot:
            raise DeploymentError(
                f"rehydrate layout drift: slot {slot} spawned as {spawned}"
            )
        if key is None:
            continue
        state = states[slot]
        if naive:
            adapter.restore_instance(
                backend, state, actions_col[slot] if actions_col else ()
            )
            continue
        if state not in state_index:
            raise DeploymentError(
                f"checkpoint state {state!r} does not exist in "
                f"machine {engine.machine.name!r}"
            )
        store.states[slot] = state_index[state] * width
        if policy == "full":
            actions = actions_col[slot] if actions_col else ()
            store.logs[slot] = [actions] if actions else []
        elif policy == "count":
            store.counts[slot] = counts_col[slot] if counts_col else 0
    for slot in checkpoint.free:
        placeholder = store.key_of[slot]
        if placeholder is None or not placeholder.startswith("\x00rehydrate-free-"):
            raise DeploymentError(
                f"rehydrate layout drift: slot {slot} is not free in the "
                "checkpoint layout"
            )
        store.release(placeholder)


# ---------------------------------------------------------------------------
# recovery observability (parent side)
# ---------------------------------------------------------------------------


class RecoveryTelemetry:
    """The supervisor's observability plane, on stock obs instruments.

    One registry (restart/replay/checkpoint counters, a
    ``workers_recovering`` gauge and the MTTR histogram
    ``fleet_recovery_seconds``) plus one :class:`TraceLog` whose records
    chain die→respawn→replay→resume under the death's trace id, so one
    ``trace_event(tid)`` read reconstructs the whole incident.
    """

    def __init__(self, trace_capacity: int = 4096):
        self.registry = MetricsRegistry()
        self.trace = TraceLog(capacity=trace_capacity)
        self._restarts = self.registry.counter(
            "fleet_worker_restarts_total",
            "worker processes respawned by the supervisor",
        )
        self._replayed = self.registry.counter(
            "fleet_events_replayed_total",
            "journaled events replayed into respawned workers",
        )
        self._checkpoints = self.registry.counter(
            "fleet_checkpoints_total", "partition checkpoints taken"
        )
        self._failures = self.registry.counter(
            "fleet_recovery_failures_total",
            "recoveries abandoned after exhausting the restart policy",
        )
        self._recovering = self.registry.gauge(
            "fleet_workers_recovering", "workers currently rehydrating"
        )
        self._mttr = self.registry.histogram(
            "fleet_recovery_seconds",
            "worker death to resumed service (MTTR)",
        )

    def worker_died(self, wid: int, recovering: int) -> int:
        """Record a death; returns the incident's trace id."""
        tid = self.trace.mint()
        self._recovering.set(recovering)
        self.trace.record(
            tid, perf_counter(), "worker_die", detail=f"worker={wid}"
        )
        return tid

    def respawned(self, tid: int, wid: int, attempt: int) -> None:
        self._restarts.add()
        self.trace.record(
            tid,
            perf_counter(),
            "worker_respawn",
            parent_id=tid,
            detail=f"worker={wid} attempt={attempt}",
        )

    def replayed(self, tid: int, wid: int, ops: int, events: int) -> None:
        self._replayed.add(events)
        self.trace.record(
            tid,
            perf_counter(),
            "worker_replay",
            parent_id=tid,
            detail=f"worker={wid} ops={ops} events={events}",
        )

    def resumed(self, tid: int, wid: int, mttr_s: float, recovering: int) -> None:
        self._mttr.observe(mttr_s)
        self._recovering.set(recovering)
        self.trace.record(
            tid,
            perf_counter(),
            "worker_resume",
            parent_id=tid,
            detail=f"worker={wid} mttr_s={mttr_s:.6f}",
        )

    def failed(self, tid: int, wid: int, reason: str, recovering: int) -> None:
        self._failures.add()
        self._recovering.set(recovering)
        self.trace.record(
            tid,
            perf_counter(),
            "worker_lost",
            parent_id=tid,
            detail=f"worker={wid}: {reason}",
        )

    def checkpointed(self, wid: int) -> None:
        self._checkpoints.add()
