"""Command-line interface: generate machines and render artefacts.

Mirrors the paper's Fig 6 usage from a shell::

    repro-fsm generate -r 4                  # Table 1 row for r=4
    repro-fsm generate -r 40 --engine lazy   # frontier engine: no 2^5 r^2 blow-up
    repro-fsm table1                         # the whole Table 1
    repro-fsm render -r 4 --format text      # Fig 14 artefact
    repro-fsm render -r 4 --format source    # generated Python (Fig 16)
    repro-fsm render -r 4 --format dot -o commit.dot
    repro-fsm describe -r 4 --state T/2/F/0/F/F/F
    repro-fsm export -r 4 -o commit_r4.py    # §4.3 copy-into-codebase
    repro-fsm modelcheck -r 4 --silent 1     # exhaustive peer-set check
    repro-fsm serve-bench --instances 10000 --events 100000 --shards 16
                                             # fleet plane: naive vs batched
    repro-fsm flatten --model session --format outline
                                             # hierarchical design, outlined
    repro-fsm flatten --model commit -r 7 --engine lazy --format stats
                                             # flattening blow-up factors
    repro-fsm optimize --model commit-hsm --opt 3
                                             # pass pipeline: per-pass deltas
    repro-fsm serve-bench --instances 10000 --opt prune,merge
                                             # fleet on an optimized machine
    repro-fsm serve-scenario --model commit --faults kill-shard --seed 7
                                             # interacting fleet under faults
    repro-fsm serve-scenario --metrics prom  # merged fleet+scenario metrics
    repro-fsm serve-watch --events 50000 --interval 10000
                                             # live telemetry over a workload
    repro-fsm serve --workers 4 --instances 100 --port 8080
                                             # HTTP/WebSocket gateway over a
                                             # process-parallel fleet
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.flatten_stats import (
    DEFAULT_STATS_OPT,
    flatten_blowup,
    format_flatten_table,
)
from repro.analysis.peerset_check import check_contending_updates, check_single_update
from repro.analysis.stats import format_table1, table1, table1_row
from repro.core.pipeline import ENGINES, generate_with_engine
from repro.models import HIERARCHICAL_MODELS, build_hierarchical_model
from repro.models.chandra_toueg import CoordinatorRoundModel
from repro.models.chandra_toueg import scenario_profile as ct_scenario_profile
from repro.models.commit import CommitModel, fault_tolerance
from repro.obs import (
    FleetTelemetry,
    fleet_registry,
    render_json,
    render_prometheus,
    scenario_registry,
)
from repro.models.commit import scenario_profile as commit_scenario_profile
from repro.opt import PASSES, format_pass_table, parse_opt_spec, standard_pipeline
from repro.render.dot import DotRenderer
from repro.render.hsm import HierarchicalDotRenderer, HierarchicalOutlineRenderer
from repro.render.html import HtmlRenderer
from repro.render.markdown import MarkdownRenderer
from repro.render.scxml import ScxmlRenderer
from repro.render.source import JavaSourceRenderer, PythonSourceRenderer
from repro.render.text import TextRenderer
from repro.render.xml import XmlRenderer
from repro.runtime.export import export_machine_module
from repro.serve import (
    DISPATCH_MODES,
    HAS_NUMPY,
    LOG_POLICIES,
    NUMPY_UNAVAILABLE_REASON,
    ScenarioFaultPlan,
    ScenarioSpec,
    WorkloadSpec,
    diff_against_standalone,
    diff_fleets,
    encode_schedule,
    generate_scenario,
    generate_workload,
    make_fleet,
    run_scenario,
)
from repro.serve.adapter import BACKENDS as SERVE_BACKENDS
from repro.serve.workload import SCENARIOS as SERVE_SCENARIOS

_RENDERERS = {
    "text": TextRenderer,
    "source": PythonSourceRenderer,
    "java": JavaSourceRenderer,
    "dot": DotRenderer,
    "xml": XmlRenderer,
    "scxml": ScxmlRenderer,
    "html": HtmlRenderer,
    "markdown": MarkdownRenderer,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-fsm",
        description="Generate and render commit-protocol state machines "
        "(Kirby/Dearle/Norcross, DSN 2007).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_engine_flag(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--engine",
            choices=ENGINES,
            default="eager",
            help="generation engine: 'eager' enumerates the full 2^5 r^2 "
            "product space then prunes (paper §3.4); 'lazy' expands only "
            "states reachable from the start state via a BFS frontier, "
            "making large replication factors feasible (default: eager)",
        )

    def add_opt_flag(subparser: argparse.ArgumentParser, default=None) -> None:
        subparser.add_argument(
            "--opt",
            default=default,
            metavar="LEVEL|PASSES",
            help="optimization pipeline over the machine: a level 0-3 "
            f"('full' = 3), 'none', or pass names from {list(PASSES)} "
            "joined with commas, e.g. 'prune,merge' "
            f"(default: {default if default is not None else 'no optimization'})",
        )

    generate = commands.add_parser(
        "generate", help="generate a machine and print its pipeline counts"
    )
    generate.add_argument("-r", "--replication-factor", type=int, default=4)
    add_engine_flag(generate)
    add_opt_flag(generate)

    table1_cmd = commands.add_parser("table1", help="regenerate the paper's Table 1")
    add_engine_flag(table1_cmd)

    render = commands.add_parser("render", help="render a machine artefact")
    render.add_argument("-r", "--replication-factor", type=int, default=4)
    render.add_argument(
        "--format", choices=sorted(_RENDERERS), default="text", dest="fmt"
    )
    render.add_argument("-o", "--output", help="write to a file instead of stdout")
    add_engine_flag(render)

    describe = commands.add_parser(
        "describe", help="print the Fig 14 description of one state"
    )
    describe.add_argument("-r", "--replication-factor", type=int, default=4)
    describe.add_argument(
        "--state", required=True, help="state name, e.g. T/2/F/0/F/F/F"
    )
    add_engine_flag(describe)

    export = commands.add_parser(
        "export", help="export a standalone generated module (paper §4.3)"
    )
    export.add_argument("-r", "--replication-factor", type=int, default=4)
    export.add_argument("-o", "--output", required=True, help="target .py file")
    add_engine_flag(export)

    modelcheck = commands.add_parser(
        "modelcheck", help="exhaustively check a peer set of generated FSMs"
    )
    modelcheck.add_argument("-r", "--replication-factor", type=int, default=4)
    modelcheck.add_argument(
        "--silent", type=int, default=0, help="members that are Byzantine-silent"
    )
    modelcheck.add_argument(
        "--contention",
        type=int,
        metavar="FIRST_HALF",
        help="check two contending updates with this many first-voters for A",
    )
    modelcheck.add_argument("--max-states", type=int, default=500_000)
    add_engine_flag(modelcheck)

    flatten = commands.add_parser(
        "flatten",
        help="flatten a bundled hierarchical model into a plain machine "
        "(stats, hierarchy-aware rendering, or flat artefacts)",
    )
    flatten.add_argument(
        "--model",
        choices=HIERARCHICAL_MODELS,
        default="session",
        help="bundled hierarchical model (default: session)",
    )
    flatten.add_argument(
        "-r",
        "--replication-factor",
        type=int,
        default=4,
        help="size of the embedded commit machine (commit model only)",
    )
    flatten.add_argument(
        "--format",
        choices=["stats", "outline", "dot"]
        + [f"flat-{name}" for name in sorted(_RENDERERS)],
        default="stats",
        dest="fmt",
        help="'stats' prints blow-up factors for both flatten engines; "
        "'outline'/'dot' render the hierarchy itself (text outline, "
        "clustered Graphviz); 'flat-*' renders the flattened machine "
        "with the corresponding flat renderer",
    )
    flatten.add_argument("-o", "--output", help="write to a file instead of stdout")
    add_engine_flag(flatten)
    add_opt_flag(flatten)

    optimize = commands.add_parser(
        "optimize",
        help="run the optimization pass pipeline over a machine and "
        "report per-pass deltas (states, transitions, action pools)",
    )
    optimize.add_argument(
        "--model",
        choices=("commit", "session-hsm", "commit-hsm"),
        default="commit",
        help="machine to optimize: the generated commit machine, or a "
        "flattened bundled hierarchical model (default: commit)",
    )
    optimize.add_argument("-r", "--replication-factor", type=int, default=4)
    optimize.add_argument(
        "--format",
        choices=["report"] + [f"flat-{name}" for name in sorted(_RENDERERS)],
        default="report",
        dest="fmt",
        help="'report' prints the per-pass delta table; 'flat-*' renders "
        "the optimized machine with the corresponding flat renderer",
    )
    optimize.add_argument("-o", "--output", help="write to a file instead of stdout")
    add_engine_flag(optimize)
    add_opt_flag(optimize, default="3")

    def add_metrics_flag(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--metrics",
            choices=("prom", "json"),
            default=None,
            help="attach the telemetry plane (queue-latency and batch "
            "histograms, event tracing) and print the metrics registry "
            "after the run, in Prometheus text or JSON exposition",
        )

    serve_bench = commands.add_parser(
        "serve-bench",
        help="benchmark the fleet execution plane: naive per-event dispatch "
        "vs sharded+batched dispatch over a synthetic workload",
    )
    serve_bench.add_argument("-r", "--replication-factor", type=int, default=4)
    serve_bench.add_argument(
        "--shards", type=int, default=8, help="instance partitions (default: 8)"
    )
    serve_bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run each mode on a process-parallel fleet with this many "
        "worker processes instead of the in-process engine",
    )
    serve_bench.add_argument(
        "--instances", type=int, default=10_000, help="machine instances hosted"
    )
    serve_bench.add_argument(
        "--events", type=int, default=100_000, help="events in the workload"
    )
    serve_bench.add_argument(
        "--backend",
        choices=SERVE_BACKENDS,
        default="interp",
        help="execution backend for the naive per-event baseline",
    )
    serve_bench.add_argument(
        "--workload",
        choices=SERVE_SCENARIOS,
        default="uniform",
        help="arrival pattern (default: uniform)",
    )
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.add_argument(
        "--encoded",
        action="store_true",
        help="also measure the encoded and grouped slot-indexed dispatch "
        "modes (events pre-interned to (slot, column) int pairs)",
    )
    serve_bench.add_argument(
        "--dispatch",
        action="append",
        choices=DISPATCH_MODES,
        metavar="MODE",
        help="measure an additional dispatch mode (repeatable); "
        "'--dispatch vector' adds the numpy gather/scatter kernel, "
        "skipped with a note when numpy is unavailable",
    )
    serve_bench.add_argument(
        "--log-policy",
        choices=LOG_POLICIES,
        default="full",
        dest="log_policy",
        help="action-log retention for the table-dispatch modes (default: "
        "full; 'count'/'off' trade the trace away for throughput, so the "
        "differential check is skipped for them)",
    )
    add_metrics_flag(serve_bench)
    add_engine_flag(serve_bench)
    add_opt_flag(serve_bench)

    serve_scenario = commands.add_parser(
        "serve-scenario",
        help="run an interacting timed scenario on the fleet — per-model "
        "timers, machine-driven routing between peers, optional fault "
        "injection — differentially checked against a naive fleet",
    )
    serve_scenario.add_argument(
        "--model",
        choices=("commit", "chandra-toueg"),
        default="commit",
        help="protocol to run as interacting groups (default: commit)",
    )
    serve_scenario.add_argument(
        "-r",
        "--replication-factor",
        type=int,
        default=4,
        help="commit peer-set size: group size and machine parameter",
    )
    serve_scenario.add_argument(
        "-n",
        "--processes",
        type=int,
        default=5,
        help="chandra-toueg process-set size: group size and machine parameter",
    )
    serve_scenario.add_argument(
        "--groups", type=int, default=20, help="interacting groups (default: 20)"
    )
    serve_scenario.add_argument(
        "--mode",
        choices=DISPATCH_MODES,
        default="encoded",
        help="dispatch mode of the measured fleet (default: encoded)",
    )
    serve_scenario.add_argument(
        "--backend", choices=SERVE_BACKENDS, default="interp"
    )
    serve_scenario.add_argument("--shards", type=int, default=8)
    serve_scenario.add_argument("--seed", type=int, default=0)
    serve_scenario.add_argument(
        "--spread",
        type=float,
        default=40.0,
        help="kick arrival window in virtual time units (default: 40)",
    )
    serve_scenario.add_argument(
        "--until",
        type=float,
        default=600.0,
        help="virtual time the scenario runs to (default: 600)",
    )
    serve_scenario.add_argument(
        "--noise",
        type=float,
        default=0.0,
        help="arbitrary-message noise as a fraction of the kick count",
    )
    serve_scenario.add_argument(
        "--faults",
        default=None,
        metavar="KINDS",
        help="comma-joined fault kinds from {kill-shard, drop, duplicate, "
        "delay}: kill-shard fail-stops one shard mid-burst and restores "
        "from snapshot; the rest disturb routed messages at 5%% each",
    )
    serve_scenario.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the differential check against a naive fleet",
    )
    add_metrics_flag(serve_scenario)
    add_engine_flag(serve_scenario)

    serve_watch = commands.add_parser(
        "serve-watch",
        help="run a workload through a telemetered fleet in intervals, "
        "printing a live status line per interval and the full metrics "
        "registry at the end",
    )
    serve_watch.add_argument("-r", "--replication-factor", type=int, default=4)
    serve_watch.add_argument("--shards", type=int, default=8)
    serve_watch.add_argument(
        "--instances", type=int, default=1_000, help="machine instances hosted"
    )
    serve_watch.add_argument(
        "--events", type=int, default=50_000, help="events in the workload"
    )
    serve_watch.add_argument(
        "--interval",
        type=int,
        default=10_000,
        help="events posted per observation interval (default: 10000)",
    )
    serve_watch.add_argument(
        "--workload",
        choices=SERVE_SCENARIOS,
        default="uniform",
        help="arrival pattern (default: uniform)",
    )
    serve_watch.add_argument("--seed", type=int, default=0)
    serve_watch.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        dest="fmt",
        help="final exposition format (default: prom)",
    )
    add_engine_flag(serve_watch)

    serve = commands.add_parser(
        "serve",
        help="serve a fleet over HTTP/WebSocket: spawn, deliver, snapshot "
        "and scrape /metrics against an in-process or process-parallel "
        "fleet (see docs/architecture.md for the endpoint list)",
    )
    serve.add_argument(
        "--model",
        choices=("commit", "chandra-toueg", "termination", "threshold-sig"),
        default="commit",
        help="bundled model to host (default: commit)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes; omit for the in-process engine",
    )
    serve.add_argument("--shards", type=int, default=None)
    serve.add_argument("--mode", choices=DISPATCH_MODES, default="batched")
    serve.add_argument(
        "--backend", choices=SERVE_BACKENDS, default="interp"
    )
    serve.add_argument(
        "--log-policy", choices=LOG_POLICIES, default="full", dest="log_policy"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="listening port; 0 binds an ephemeral port (default: 8080)",
    )
    serve.add_argument(
        "--port-file",
        default=None,
        dest="port_file",
        help="write the bound port to this file once listening (the "
        "reliable way to discover a --port 0 binding)",
    )
    serve.add_argument(
        "--instances",
        type=int,
        default=0,
        help="pre-spawn this many instances before serving (default: 0)",
    )
    serve.add_argument(
        "--allow-remote-shutdown",
        action="store_true",
        dest="allow_remote_shutdown",
        help="enable POST /shutdown (off by default: anyone who can reach "
        "the port could stop the gateway)",
    )
    serve.add_argument(
        "--no-telemetry",
        action="store_true",
        dest="no_telemetry",
        help="skip the per-worker telemetry instruments (slightly faster; "
        "/metrics then carries only the FleetMetrics counters)",
    )
    serve.add_argument(
        "--journal",
        action="store_true",
        help="enable the write-ahead journal and self-healing supervisor "
        "(multiprocess only: requires --workers); a SIGKILLed worker is "
        "respawned and its partition rehydrated from checkpoint + journal "
        "replay while callers see 503 + Retry-After",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=50_000,
        dest="checkpoint_every",
        help="journaled events between partition checkpoints when "
        "--journal is on (default: 50000)",
    )
    serve.add_argument(
        "--read-timeout",
        type=float,
        default=30.0,
        dest="read_timeout",
        help="seconds a connection may stall mid-request before the "
        "gateway answers 408 and closes it (default: 30)",
    )
    serve.add_argument(
        "--max-body",
        type=int,
        default=1 << 20,
        dest="max_body",
        help="largest accepted request body in bytes; beyond it the "
        "gateway answers 413 without reading the body (default: 1MiB)",
    )
    serve.add_argument("-r", "--replication-factor", type=int, default=4)
    add_engine_flag(serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "generate":
        pipeline = parse_opt_spec(args.opt)
        if pipeline is None:
            row = table1_row(args.replication_factor, engine=args.engine)
            print(
                f"f={row.f} r={row.r} [{args.engine}]: {row.initial_states} initial "
                f"states, {row.pruned_states} reachable, {row.final_states} after "
                f"merging ({row.generation_time_s:.3f}s)"
            )
            return 0
        # One generation serves both the Table 1 line and the optimizer.
        machine, report = generate_with_engine(
            CommitModel(args.replication_factor),
            args.engine,
            optimize=pipeline,
        )
        print(
            f"f={fault_tolerance(args.replication_factor)} "
            f"r={args.replication_factor} [{args.engine}]: "
            f"{report.initial_states} initial states, "
            f"{report.reachable_states} reachable, {report.merged_states} after "
            f"merging ({report.total_time:.3f}s)"
        )
        print(f"optimization pipeline {pipeline.name} -> {len(machine)} states:")
        print(format_pass_table(report.opt_report))
        return 0

    if args.command == "table1":
        print(format_table1(table1(engine=args.engine)))
        return 0

    if args.command == "render":
        machine = CommitModel(args.replication_factor).generate_state_machine(
            engine=args.engine
        )
        renderer = _RENDERERS[args.fmt]()
        text = renderer.render(machine)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {args.output}")
        else:
            print(text)
        return 0

    if args.command == "describe":
        machine = CommitModel(args.replication_factor).generate_state_machine(
            engine=args.engine
        )
        if args.state not in machine:
            print(f"unknown state {args.state!r}", file=sys.stderr)
            return 1
        renderer = TextRenderer(include_header=False)
        print(renderer.render_state(machine.get_state(args.state)))
        return 0

    if args.command == "export":
        machine = CommitModel(args.replication_factor).generate_state_machine(
            engine=args.engine
        )
        path = export_machine_module(machine, args.output)
        print(f"exported {machine.name} to {path}")
        return 0

    if args.command == "flatten":
        return _flatten(args)

    if args.command == "optimize":
        return _optimize(args)

    if args.command == "serve-bench":
        return _serve_bench(args)

    if args.command == "serve-scenario":
        return _serve_scenario(args)

    if args.command == "serve":
        return _serve(args)
    if args.command == "serve-watch":
        return _serve_watch(args)

    if args.command == "modelcheck":
        if args.contention is not None:
            result = check_contending_updates(
                args.replication_factor,
                first_half=args.contention,
                max_states=args.max_states,
                engine=args.engine,
            )
        else:
            result = check_single_update(
                args.replication_factor,
                silent_members=args.silent,
                max_states=args.max_states,
                engine=args.engine,
            )
        print(
            f"explored {result.states_explored} system states"
            f"{' (truncated)' if result.truncated else ''}"
        )
        print(
            f"quiescent outcomes: {result.quiescent_states} "
            f"(finished={result.all_finished_quiescent}, "
            f"deadlocked={result.deadlocked_quiescent}, "
            f"partial={result.partial_outcomes})"
        )
        for outcome, count in sorted(result.outcome_counts.items()):
            print(f"  outcome {outcome}: {count}")
        print(f"safe={result.safe} always-terminates={result.always_terminates}")
        return 0 if result.safe else 1

    return 1  # pragma: no cover - argparse enforces the command set


def _emit(text: str, output) -> int:
    """Write an artefact to ``output`` (announcing it) or print it."""
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {output}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def _flatten(args) -> int:
    """Flatten (or render) one bundled hierarchical model."""
    model = build_hierarchical_model(
        args.model, args.replication_factor, engine=args.engine
    )
    if args.fmt == "stats":
        # Stats always show the optimization recovery (the 'opt' column):
        # with no --opt, the default prune+merge+compaction pipeline runs.
        optimize = args.opt if args.opt is not None else DEFAULT_STATS_OPT
        reports = [
            flatten_blowup(model, engine, optimize=optimize) for engine in ENGINES
        ]
        text = format_flatten_table(reports) + "\n"
    elif args.fmt == "outline":
        text = HierarchicalOutlineRenderer().render(model)
    elif args.fmt == "dot":
        text = HierarchicalDotRenderer().render(model)
    else:
        machine = model.flatten(engine=args.engine, optimize=args.opt)
        renderer = _RENDERERS[args.fmt.removeprefix("flat-")]()
        text = renderer.render(machine)
    return _emit(text, args.output)


def _optimize(args) -> int:
    """Run a pass pipeline over one machine and report (or render) it."""
    if args.model == "commit":
        machine = CommitModel(args.replication_factor).generate_state_machine(
            engine=args.engine
        )
    else:
        hsm_name = "session" if args.model == "session-hsm" else "commit"
        machine = build_hierarchical_model(
            hsm_name, args.replication_factor, engine=args.engine
        ).flatten(engine=args.engine)
    pipeline = parse_opt_spec(args.opt)
    if pipeline is None:  # --opt none: run the (empty) identity pipeline
        pipeline = standard_pipeline(0)
    optimized, report = pipeline.optimize_machine(machine)

    if args.fmt == "report":
        renamed = sum(
            1 for original, final in report.state_map.items() if original != final
        )
        lines = [
            f"{machine.name}: {len(machine)} states, "
            f"{machine.transition_count()} transitions "
            f"[pipeline {pipeline.name}]",
            format_pass_table(report),
            f"optimized: {len(optimized)} states, "
            f"{optimized.transition_count()} transitions "
            f"({len(machine) - len(optimized)} removed, {renamed} renamed by "
            f"merging, {report.total_time * 1000:.2f}ms)",
        ]
        text = "\n".join(lines) + "\n"
    else:
        renderer = _RENDERERS[args.fmt.removeprefix("flat-")]()
        text = renderer.render(optimized)
    return _emit(text, args.output)


def _serve_bench(args) -> int:
    """Run one fleet dispatch-mode comparison and print the result.

    ``naive`` and ``batched`` are always measured; ``--encoded`` adds the
    ``encoded`` and ``grouped`` slot-indexed modes, whose schedules are
    interned to ``(slot, column)`` pairs once, outside the timed region;
    ``--dispatch`` appends further modes (``vector`` measures the numpy
    gather/scatter kernel on a pre-split schedule, and is skipped with a
    note when numpy is unavailable).  ``--log-policy`` applies to every
    table-dispatch mode; reduced policies retain no trace, so their rows
    skip the differential check.
    """
    import time

    machine = CommitModel(args.replication_factor).generate_state_machine(
        engine=args.engine
    )
    spec = WorkloadSpec(
        scenario=args.workload,
        instances=args.instances,
        events=args.events,
        seed=args.seed,
    )
    events = generate_workload(machine, spec)
    opt_note = f", opt {args.opt}" if args.opt else ""
    print(
        f"machine {machine.name} [{args.engine}]: {len(machine)} states; "
        f"workload {args.workload}: {args.instances} instances, "
        f"{len(events)} events, {args.shards} shards, "
        f"backend {args.backend}, log {args.log_policy}{opt_note}"
    )

    modes = ["naive", "batched"]
    if args.encoded:
        modes += ["encoded", "grouped"]
    for extra in args.dispatch or []:
        if extra not in modes:
            modes.append(extra)
    if "vector" in modes and not HAS_NUMPY:
        modes.remove("vector")
        print(f"  vector   skipped: {NUMPY_UNAVAILABLE_REASON}")
    elapsed: dict[str, float] = {}
    for mode in modes:
        policy = "full" if mode == "naive" else args.log_policy
        fleet = make_fleet(
            machine,
            shards=args.shards,
            workers=args.workers,
            backend=args.backend,
            mode=mode,
            auto_recycle=True,
            optimize=args.opt,
            log_policy=policy,
            telemetry=FleetTelemetry() if args.metrics else None,
        )
        keys = fleet.spawn_many(args.instances)
        if mode == "vector" and args.workers is None:
            # The vector plane's pre-encoded form: rounds are split at
            # encode time, so the timed region is pure gather/scatter.
            schedule = fleet.encode_flat(events)
            started = time.perf_counter()
            fleet.run(schedule, encoding="flat")
        elif mode in ("encoded", "grouped", "vector"):
            pairs = encode_schedule(fleet, events)
            started = time.perf_counter()
            fleet.run(pairs, encoding="pairs")
        else:
            started = time.perf_counter()
            fleet.run(events)
        elapsed[mode] = time.perf_counter() - started
        if policy == "full":
            mismatched = diff_against_standalone(fleet, keys, events)
            verdict = "ok" if not mismatched else "MISMATCH"
        else:
            mismatched = []
            verdict = f"skipped (log {policy})"
        metrics = fleet.metrics
        print(
            f"  {mode:8s} "
            f"{metrics.events_per_second(elapsed[mode]):>12,.0f} ev/s  "
            f"({elapsed[mode]:.3f}s, {metrics.transitions_fired} fired, "
            f"{metrics.events_ignored} ignored, "
            f"{metrics.instances_recycled} recycled, "
            f"differential {verdict})"
        )
        if mismatched:
            print(f"  {len(mismatched)} mismatched traces", file=sys.stderr)
            fleet.close()
            return 1
        # Harvest the registry before close (a multiprocess fleet's
        # worker registries are only reachable while workers live).
        registry = fleet_registry(fleet) if args.metrics else None
        fleet.close()
    print(f"  speedup  {elapsed['naive'] / elapsed['batched']:.2f}x (batched/naive)")
    if args.encoded:
        print(
            f"  encoded  {elapsed['batched'] / elapsed['encoded']:.2f}x batched, "
            f"grouped {elapsed['batched'] / elapsed['grouped']:.2f}x batched"
        )
    if "vector" in elapsed:
        vector_note = (
            f", {elapsed['encoded'] / elapsed['vector']:.2f}x encoded"
            if "encoded" in elapsed
            else ""
        )
        print(
            f"  vector   {elapsed['batched'] / elapsed['vector']:.2f}x "
            f"batched{vector_note}"
        )
    if args.metrics:
        # The registry of the last measured fleet (metrics are per-fleet).
        print(_render_registry(registry, args.metrics), end="")
    return 0


def _render_registry(registry, fmt: str) -> str:
    """One metrics registry in the requested exposition format."""
    if fmt == "prom":
        return render_prometheus(registry)
    return render_json(registry) + "\n"


#: Per-copy disturbance rate used for each requested message-fault kind.
_SCENARIO_FAULT_RATE = 0.05


def _parse_scenario_faults(spec: str | None, until: float):
    """Build a :class:`ScenarioFaultPlan` from the ``--faults`` flag."""
    if not spec:
        return None
    kinds = {token.strip() for token in spec.split(",") if token.strip()}
    known = {"kill-shard", "drop", "duplicate", "delay"}
    unknown = kinds - known
    if unknown:
        raise SystemExit(
            f"unknown fault kind(s) {sorted(unknown)}; choose from {sorted(known)}"
        )
    rate = _SCENARIO_FAULT_RATE
    return ScenarioFaultPlan(
        # Mid-burst: late enough for traffic to be in flight, early
        # enough that the replay after restore still completes.
        kill_at=until / 3 if "kill-shard" in kinds else None,
        drop=rate if "drop" in kinds else 0.0,
        duplicate=rate if "duplicate" in kinds else 0.0,
        delay=rate if "delay" in kinds else 0.0,
    )


def _serve_scenario(args) -> int:
    """Run one interacting scenario, report metrics, differentially verify."""
    import time

    if args.model == "commit":
        machine = CommitModel(args.replication_factor).generate_state_machine(
            engine=args.engine
        )
        profile = commit_scenario_profile()
        group_size = args.replication_factor
    else:
        machine = CoordinatorRoundModel(args.processes).generate_state_machine(
            engine=args.engine
        )
        profile = ct_scenario_profile()
        group_size = args.processes
    faults = _parse_scenario_faults(args.faults, args.until)
    spec = ScenarioSpec(
        groups=args.groups,
        group_size=group_size,
        seed=args.seed,
        spread=args.spread,
        noise=args.noise,
        until=args.until,
    )
    scenario = generate_scenario(machine, profile, spec, faults=faults)
    print(
        f"machine {machine.name} [{args.engine}]: {len(machine)} states; "
        f"scenario: {args.groups} groups x {group_size}, "
        f"{len(scenario.events)} timed kicks over {args.spread:g} units, "
        f"until t={args.until:g}, seed {args.seed}, "
        f"faults {args.faults or 'none'}"
    )
    fleet = make_fleet(
        machine,
        mode=args.mode,
        backend=args.backend,
        shards=args.shards,
        telemetry=FleetTelemetry() if args.metrics else None,
    )
    started = time.perf_counter()
    engine = run_scenario(fleet, scenario)
    elapsed = time.perf_counter() - started
    m = engine.metrics
    finished = sum(1 for key in scenario.topology.keys if fleet.is_finished(key))
    print(
        f"  [{args.mode}/{args.backend}] {m.events_delivered} deliveries in "
        f"{elapsed:.3f}s ({m.external_delivered} external, "
        f"{m.routed_delivered} routed, {m.timers_fired} timer) over "
        f"{m.instants} instants"
    )
    print(
        f"  timers: {m.timers_armed} armed, {m.timers_cancelled} cancelled, "
        f"{m.timers_fired} fired; routed copies: {m.messages_routed} "
        f"({m.messages_dropped} dropped, {m.messages_duplicated} duplicated, "
        f"{m.messages_delayed} delayed)"
    )
    if m.shards_killed:
        print(
            f"  faults: {m.shards_killed} shard(s) killed "
            f"({m.instances_lost} instances lost), "
            f"{m.snapshots_restored} snapshot restore(s)"
        )
    print(f"  finished: {finished}/{len(scenario.topology)} instances")
    if args.metrics:
        # One merged blob: fleet counters and histograms plus the
        # scenario engine's timer/routing/fault counters.
        print(_render_registry(scenario_registry(engine), args.metrics), end="")
    if args.no_verify:
        return 0
    oracle = make_fleet(machine, mode="naive", shards=args.shards)
    run_scenario(oracle, scenario)
    mismatched = diff_fleets(fleet, oracle, scenario.topology.keys)
    if mismatched:
        print(
            f"  differential MISMATCH: {len(mismatched)} diverging traces "
            f"(e.g. {mismatched[:3]})",
            file=sys.stderr,
        )
        return 1
    print(f"  differential vs naive fleet: ok ({len(scenario.topology)} traces)")
    return 0


def _serve_watch(args) -> int:
    """Post a workload in intervals, watching the telemetry registry fill.

    Every interval's events go through the mailbox path (``post`` then
    ``drain_all``), so the queue-latency histograms, batch timings and
    shard-depth gauges all engage; one status line summarises each
    interval and the full registry is rendered at the end.
    """
    import time

    machine = CommitModel(args.replication_factor).generate_state_machine(
        engine=args.engine
    )
    spec = WorkloadSpec(
        scenario=args.workload,
        instances=args.instances,
        events=args.events,
        seed=args.seed,
    )
    events = generate_workload(machine, spec)
    telemetry = FleetTelemetry()
    fleet = make_fleet(
        machine,
        shards=args.shards,
        mode="encoded",
        auto_recycle=True,
        telemetry=telemetry,
    )
    fleet.spawn_many(args.instances)
    print(
        f"machine {machine.name} [{args.engine}]: {len(machine)} states; "
        f"watching {len(events)} events over intervals of {args.interval} "
        f"({args.instances} instances, {args.shards} shards)"
    )
    queue = telemetry.queue_latency
    for start in range(0, len(events), args.interval):
        part = events[start : start + args.interval]
        started = time.perf_counter()
        for key, message in part:
            fleet.post(key, message)
        fleet.drain_all()
        elapsed = time.perf_counter() - started
        print(
            f"  t+{start + len(part):>8d}  {len(part) / elapsed:>12,.0f} ev/s  "
            f"queue p50 {queue.quantile(0.5):.2e}s  "
            f"p99 {queue.quantile(0.99):.2e}s  "
            f"peak depth {fleet.metrics.peak_shard_depth}"
        )
    print(_render_registry(fleet_registry(fleet), args.fmt), end="")
    return 0


def _serve(args) -> int:
    """Serve one fleet behind the HTTP/WebSocket gateway until shutdown."""
    from repro.serve.gateway import FleetGateway

    if args.journal and not args.workers:
        print(
            "--journal needs a process-parallel fleet; pass --workers N",
            file=sys.stderr,
        )
        return 2
    if args.model == "commit":
        model = CommitModel(args.replication_factor)
    else:
        model = args.model
    supervision = (
        {"journal": True, "checkpoint_every": args.checkpoint_every}
        if args.journal
        else {}
    )
    fleet = make_fleet(
        model,
        mode=args.mode,
        backend=args.backend,
        workers=args.workers,
        shards=args.shards,
        log_policy=args.log_policy,
        telemetry=None if args.no_telemetry else True,
        engine=args.engine,
        **supervision,
    )
    try:
        if args.instances:
            fleet.spawn_many(args.instances)
        where = (
            f"{args.workers} worker process(es)"
            if args.workers
            else "in-process engine"
        )
        gateway = FleetGateway(
            fleet,
            host=args.host,
            port=args.port,
            allow_remote_shutdown=args.allow_remote_shutdown,
            read_timeout=args.read_timeout,
            max_body=args.max_body,
        )

        def announce(url: str) -> None:
            print(
                f"serving {fleet.machine.name} [{args.mode}/{args.backend}] "
                f"on {where}: {len(fleet)} instance(s) at {url}",
                flush=True,
            )

        try:
            gateway.run_blocking(announce=announce, port_file=args.port_file)
        except KeyboardInterrupt:
            pass
    finally:
        fleet.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
