"""Textual FSM representation (paper Fig 14).

For each state the renderer emits the encoded state name, the automatically
generated commentary (derived from the annotations the abstract model
recorded), and the outgoing transitions with their actions::

    state: T/2/F/0/F/F/F
    --------------------
    Description:

    Have received initial update from client.
    ...

    Transitions:

     message: VOTE
      action: ->vote
      action: ->commit
      transition to: T/3/T/0/T/F/F
"""

from __future__ import annotations

from repro.core.machine import StateMachine
from repro.core.state import State
from repro.render.base import Renderer, display_action, display_message


class TextRenderer(Renderer):
    """Render a machine (or a single state) in the paper's textual format."""

    def __init__(self, include_header: bool = True):
        self._include_header = include_header

    def render(self, machine: StateMachine) -> str:
        sections: list[str] = []
        if self._include_header:
            sections.append(self._header(machine))
        for state in machine.states:
            sections.append(self.render_state(state))
        return "\n".join(sections)

    def render_state(self, state: State) -> str:
        """One Fig 14 block for a single state."""
        lines: list[str] = []
        title = f"state: {state.name}"
        lines.append(title)
        lines.append("-" * len(title))
        lines.append("Description:")
        lines.append("")
        for annotation in state.annotations:
            lines.append(annotation)
        if state.final:
            lines.append("")
            lines.append("This is a finish state: the operation has completed.")
        lines.append("")
        lines.append("")
        lines.append("Transitions:")
        lines.append("")
        if not state.transitions:
            lines.append(" (none)")
        for transition in state.transitions:
            lines.append(f" message: {display_message(transition.message)}")
            for action in transition.actions:
                lines.append(f"  action: {display_action(action)}")
            lines.append(f"  transition to: {transition.target_name}")
            lines.append("")
        return "\n".join(lines)

    def _header(self, machine: StateMachine) -> str:
        lines = [
            f"state machine: {machine.name}",
            f"messages: {', '.join(display_message(m) for m in machine.messages)}",
            f"states: {len(machine)}",
            f"start state: {machine.start_state.name}",
        ]
        finish = machine.finish_state
        if finish is not None:
            lines.append(f"finish state: {finish.name}")
        lines.append("=" * max(len(line) for line in lines))
        lines.append("")
        return "\n".join(lines)
