"""Shared renderer infrastructure.

A renderer turns the abstract FSM representation produced by the generation
pipeline into a concrete artefact (paper §3.5): text, diagram, source code
or documentation.  All renderers implement :class:`Renderer`; shared display
conventions (message names in upper case with spaces, action names with the
``->`` prefix of Fig 14) live here so artefacts stay consistent.
"""

from __future__ import annotations

from repro.core.machine import StateMachine


class Renderer:
    """Base class: render a :class:`StateMachine` to a string artefact."""

    def render(self, machine: StateMachine) -> str:
        """Produce the artefact text for ``machine``."""
        raise NotImplementedError

    def render_to_file(self, machine: StateMachine, path: str) -> str:
        """Render and write to ``path``; returns the path for chaining."""
        text = self.render(machine)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return path


def display_message(message: str) -> str:
    """Message name as shown in artefacts: ``not_free`` -> ``NOT FREE``."""
    return message.replace("_", " ").upper()


def display_action(action: str) -> str:
    """Action name as shown in artefacts: ``->not_free`` -> ``->not free``."""
    if action.startswith("->"):
        return "->" + action[2:].replace("_", " ")
    return action.replace("_", " ")


def python_identifier(name: str) -> str:
    """A lowercase identifier fragment for a message or action name."""
    cleaned = "".join(ch if ch.isalnum() else "_" for ch in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned.lower()


def camel_case(name: str) -> str:
    """CamelCase fragment for Java-style method names: ``not_free`` -> ``NotFree``."""
    return "".join(part.capitalize() for part in name.split("_") if part)
