"""Textual EFSM description: the Fig 14 analogue for extended machines.

Renders an :class:`~repro.core.efsm.Efsm` as readable text — states,
guarded transitions with their conditions and variable updates — so the
9-state commit EFSM can be reviewed the way Fig 14's FSM text is::

    state: F/F/F/T/F
    ----------------
     message: VOTE
      guard: votes_received + 1 >= 2f+1
      update: votes_received += 1
      action: ->not free
      action: ->vote
      action: ->commit
      transition to: F/T/T/T/T
"""

from __future__ import annotations

from repro.core.efsm import Efsm
from repro.render.base import Renderer, display_action, display_message


class EfsmTextRenderer(Renderer):
    """Render an EFSM in the textual format."""

    def render(self, machine: Efsm) -> str:
        machine.check_integrity()
        sections: list[str] = []
        header = [
            f"extended state machine: {machine.name}",
            f"messages: {', '.join(display_message(m) for m in machine.messages)}",
            "variables: "
            + ", ".join(f"{v.name} (initial {v.initial})" for v in machine.variables),
            f"parameters: {', '.join(machine.parameter_names) or '(none)'}",
            f"states: {len(machine)}",
            f"start state: {machine.start_state.name}",
        ]
        header.append("=" * max(len(line) for line in header))
        header.append("")
        sections.append("\n".join(header))

        for state in machine.states:
            lines = [f"state: {state.name}"]
            lines.append("-" * len(lines[0]))
            if state.final:
                lines.append("This is a finish state: the operation has completed.")
            for annotation in state.annotations:
                lines.append(annotation)
            if not state.transitions:
                lines.append(" (no transitions)")
            for transition in state.transitions:
                lines.append(f" message: {display_message(transition.message)}")
                if transition.guard_text != "always":
                    lines.append(f"  guard: {transition.guard_text}")
                if transition.update_text:
                    lines.append(f"  update: {transition.update_text}")
                for action in transition.actions:
                    lines.append(f"  action: {display_action(action)}")
                lines.append(f"  transition to: {transition.target}")
                lines.append("")
            lines.append("")
            sections.append("\n".join(lines))
        return "\n".join(sections)
