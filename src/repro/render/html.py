"""Self-contained HTML state browser.

A modern counterpart to the paper's diagram artefact (Fig 15): a single
HTML file with no external dependencies that lists every state with its
generated commentary and clickable transitions, so a reviewer can walk the
machine in a browser the way the paper's readers walk Fig 14's text.
"""

from __future__ import annotations

import html

from repro.core.machine import StateMachine
from repro.render.base import Renderer, display_action, display_message

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; }
.meta { color: #555; margin-bottom: 1.5rem; }
.state { border: 1px solid #ccc; border-radius: 6px; padding: .8rem 1rem;
         margin-bottom: .8rem; }
.state.final { border-color: #2a7; background: #f2fbf7; }
.state.start { border-color: #27c; background: #f2f7fd; }
.state h2 { font-size: 1.05rem; font-family: ui-monospace, monospace; margin: 0 0 .4rem; }
.badge { font-size: .7rem; padding: .1rem .4rem; border-radius: 4px;
         margin-left: .5rem; vertical-align: middle; color: white; }
.badge.start { background: #27c; } .badge.final { background: #2a7; }
.annotations { color: #444; font-size: .9rem; margin: 0 0 .5rem 1rem; }
.transition { font-family: ui-monospace, monospace; font-size: .85rem;
              margin-left: 1rem; }
.message { color: #a40; font-weight: 600; }
.action { color: #046; }
a { color: inherit; }
"""


class HtmlRenderer(Renderer):
    """Render a machine as a standalone HTML document."""

    def render(self, machine: StateMachine) -> str:
        machine.check_integrity()
        start_name = machine.start_state.name
        parts: list[str] = []
        parts.append("<!DOCTYPE html>")
        parts.append("<html><head><meta charset='utf-8'>")
        parts.append(f"<title>{html.escape(machine.name)}</title>")
        parts.append(f"<style>{_STYLE}</style></head><body>")
        parts.append(f"<h1>State machine <code>{html.escape(machine.name)}</code></h1>")
        finish = machine.finish_state
        parts.append(
            "<p class='meta'>"
            f"{len(machine)} states &middot; {machine.transition_count()} transitions "
            f"({machine.phase_transition_count()} phase) &middot; messages: "
            + ", ".join(html.escape(display_message(m)) for m in machine.messages)
            + (
                f" &middot; finish: <code>{html.escape(finish.name)}</code>"
                if finish
                else ""
            )
            + "</p>"
        )

        for state in machine.states:
            classes = ["state"]
            badges = []
            if state.name == start_name:
                classes.append("start")
                badges.append("<span class='badge start'>start</span>")
            if state.final:
                classes.append("final")
                badges.append("<span class='badge final'>finish</span>")
            parts.append(
                f"<div class='{' '.join(classes)}' id='{_anchor(state.name)}'>"
            )
            parts.append(f"<h2>{html.escape(state.name)}{''.join(badges)}</h2>")
            if state.annotations:
                parts.append("<ul class='annotations'>")
                for annotation in state.annotations:
                    parts.append(f"<li>{html.escape(annotation)}</li>")
                parts.append("</ul>")
            for transition in state.transitions:
                actions = " ".join(
                    f"<span class='action'>{html.escape(display_action(a))}</span>"
                    for a in transition.actions
                )
                parts.append(
                    "<div class='transition'>"
                    f"<span class='message'>"
                    f"{html.escape(display_message(transition.message))}</span> "
                    f"{actions} &rarr; "
                    f"<a href='#{_anchor(transition.target_name)}'>"
                    f"{html.escape(transition.target_name)}</a></div>"
                )
            parts.append("</div>")

        parts.append("</body></html>")
        return "\n".join(parts) + "\n"


def _anchor(name: str) -> str:
    return "s-" + name.replace("/", "_")
