"""Markdown documentation renderer.

The paper generates documentation artefacts alongside diagrams and source
(§3.5, footnote 3).  This renderer produces a browsable Markdown catalogue:
machine overview, per-state sections with the generated commentary, and a
transition table distinguishing simple from phase transitions.
"""

from __future__ import annotations

from repro.core.machine import StateMachine
from repro.render.base import Renderer, display_action, display_message


class MarkdownRenderer(Renderer):
    """Render a machine as a Markdown document."""

    def __init__(self, title: str | None = None):
        self._title = title

    def render(self, machine: StateMachine) -> str:
        machine.check_integrity()
        lines: list[str] = []
        title = self._title or f"State machine `{machine.name}`"
        lines.append(f"# {title}")
        lines.append("")
        lines.append(self._overview(machine))

        lines.append("## Transition summary")
        lines.append("")
        lines.append("| From | Message | Actions | To | Kind |")
        lines.append("|------|---------|---------|----|------|")
        for state in machine.states:
            for transition in state.transitions:
                actions = (
                    ", ".join(display_action(a) for a in transition.actions) or "—"
                )
                kind = "phase" if transition.is_phase_transition() else "simple"
                lines.append(
                    f"| `{state.name}` | {display_message(transition.message)} "
                    f"| {actions} | `{transition.target_name}` | {kind} |"
                )
        lines.append("")

        lines.append("## States")
        lines.append("")
        for state in machine.states:
            lines.append(f"### `{state.name}`")
            lines.append("")
            badges = []
            if state.name == machine.start_state.name:
                badges.append("**start**")
            if state.final:
                badges.append("**finish**")
            if badges:
                lines.append(" ".join(badges))
                lines.append("")
            for annotation in state.annotations:
                lines.append(f"- {annotation}")
            if state.merged_names and len(state.merged_names) > 1:
                lines.append(
                    f"- Merged from {len(state.merged_names)} equivalent states."
                )
            lines.append("")
        return "\n".join(lines)

    def _overview(self, machine: StateMachine) -> str:
        finish = machine.finish_state
        phase = machine.phase_transition_count()
        total = machine.transition_count()
        rows = [
            ("States", str(len(machine))),
            ("Transitions", f"{total} ({phase} phase, {total - phase} simple)"),
            ("Messages", ", ".join(display_message(m) for m in machine.messages)),
            ("Start state", f"`{machine.start_state.name}`"),
            ("Finish state", f"`{finish.name}`" if finish else "—"),
        ]
        parameters = machine.parameters
        if parameters:
            rows.append(
                (
                    "Parameters",
                    ", ".join(f"{k}={v}" for k, v in sorted(parameters.items())),
                )
            )
        lines = ["| Property | Value |", "|----------|-------|"]
        for key, value in rows:
            lines.append(f"| {key} | {value} |")
        lines.append("")
        return "\n".join(lines)
