"""SCXML renderer: W3C State Chart XML interchange.

SCXML is the standard interchange format for state machines; emitting it
makes generated machines consumable by the wider statechart ecosystem
(visualisers, interpreters, test generators) beyond this library's own
tools.  The mapping:

* each FSM state becomes an ``<state>`` (finals become ``<final>``);
* each transition becomes ``<transition event="..." target="...">`` with
  one ``<raise>`` per action (standard SCXML executable content for
  emitting events);
* state commentary is carried in XML comments so the artefact stays
  self-documenting, as the paper's generated artefacts are.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.core.machine import StateMachine
from repro.render.base import Renderer

#: SCXML namespace (W3C).
SCXML_NS = "http://www.w3.org/2005/07/scxml"


def _state_id(name: str) -> str:
    """SCXML ids must be NCNames: encode the ``/`` separators."""
    return name.replace("/", "_")


def _event_name(action: str) -> str:
    return action[2:] if action.startswith("->") else action


class ScxmlRenderer(Renderer):
    """Render a machine as an SCXML document."""

    def render(self, machine: StateMachine) -> str:
        machine.check_integrity()
        ET.register_namespace("", SCXML_NS)
        root = ET.Element(
            f"{{{SCXML_NS}}}scxml",
            {
                "version": "1.0",
                "initial": _state_id(machine.start_state.name),
                "name": machine.name,
            },
        )

        for state in machine.states:
            tag = "final" if state.final else "state"
            element = ET.SubElement(
                root, f"{{{SCXML_NS}}}{tag}", {"id": _state_id(state.name)}
            )
            for transition in state.transitions:
                t_element = ET.SubElement(
                    element,
                    f"{{{SCXML_NS}}}transition",
                    {
                        "event": transition.message,
                        "target": _state_id(transition.target_name),
                    },
                )
                for action in transition.actions:
                    ET.SubElement(
                        t_element,
                        f"{{{SCXML_NS}}}raise",
                        {"event": _event_name(action)},
                    )

        ET.indent(root)
        return ET.tostring(root, encoding="unicode", xml_declaration=True) + "\n"
