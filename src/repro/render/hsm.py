"""Hierarchy-aware renderers for :class:`~repro.core.hsm.HierarchicalModel`.

Flat renderers draw the *product* of the flattening pipeline; these two
draw the *design*: the composite structure the author wrote, before
inheritance and entry/exit composition are expanded away.

* :class:`HierarchicalDotRenderer` — a Graphviz digraph with one
  ``subgraph cluster_*`` per composite region (``compound=true`` so
  edges can start and end at region borders via ``ltail``/``lhead``);
* :class:`HierarchicalOutlineRenderer` — an indented text outline of the
  tree with per-node transitions and entry/exit actions.
"""

from __future__ import annotations

from repro.core.hsm import CompositeState, HierarchicalModel, LeafState, _Node
from repro.render.base import display_action, display_message


class HierarchicalDotRenderer:
    """Render the hierarchy as a clustered Graphviz ``digraph``.

    Composite regions become clusters; a transition declared on a region
    is drawn once, from (or to) the region border — visually the
    inheritance the flattening pipeline expands into per-leaf copies.
    """

    def __init__(self, include_actions: bool = True, rankdir: str = "TB"):
        self._include_actions = include_actions
        self._rankdir = rankdir

    def render(self, model: HierarchicalModel) -> str:
        model.validate()
        lines: list[str] = []
        lines.append(f"digraph {_quote(model.name)} {{")
        lines.append(f"    rankdir={self._rankdir};")
        lines.append("    compound=true;")
        lines.append("    node [shape=ellipse, fontsize=10];")
        lines.append("    edge [fontsize=9];")
        lines.append('    __start [shape=point, label=""];')
        self._emit_children(model, model.root, lines, indent="    ")
        lines.append(
            f"    __start -> {_quote(model.initial_leaf().flat_name())};"
        )
        for node in model.nodes():
            for transition in node.transitions.values():
                lines.append(self._edge(model, node, transition))
        lines.append("}")
        return "\n".join(lines) + "\n"

    def _emit_children(self, model, composite, lines, indent) -> None:
        for child in composite.children.values():
            if isinstance(child, CompositeState):
                lines.append(f"{indent}subgraph {_quote(_cluster_id(child))} {{")
                label = child.name
                if child.entry_actions:
                    label += "\\nentry: " + ", ".join(
                        display_action(a) for a in child.entry_actions
                    )
                if child.exit_actions:
                    label += "\\nexit: " + ", ".join(
                        display_action(a) for a in child.exit_actions
                    )
                lines.append(f"{indent}    label={_quote(label)};")
                lines.append(f"{indent}    style=rounded;")
                self._emit_children(model, child, lines, indent + "    ")
                lines.append(f"{indent}}}")
            else:
                attributes = []
                if child.final:
                    attributes.append("shape=doublecircle")
                attributes.append(f"label={_quote(child.name)}")
                if child is composite.initial_child:
                    attributes.append("penwidth=2")
                lines.append(
                    f"{indent}{_quote(child.flat_name())} "
                    f"[{', '.join(attributes)}];"
                )

    def _edge(self, model, node, transition) -> str:
        target = model.find(transition.target)
        source_anchor, ltail = _anchor(model, node)
        target_anchor, lhead = _anchor(model, target)
        label = display_message(transition.message)
        if self._include_actions and transition.actions:
            label += "\\n" + "\\n".join(
                display_action(a) for a in transition.actions
            )
        attributes = [f"label={_quote(label)}"]
        if transition.actions:
            attributes.append("style=bold")
        if ltail is not None:
            attributes.append(f"ltail={_quote(ltail)}")
        if lhead is not None:
            attributes.append(f"lhead={_quote(lhead)}")
        return (
            f"    {_quote(source_anchor)} -> {_quote(target_anchor)} "
            f"[{', '.join(attributes)}];"
        )


class HierarchicalOutlineRenderer:
    """Render the hierarchy as an indented text outline."""

    def __init__(self, indent: str = "    "):
        self._indent = indent

    def render(self, model: HierarchicalModel) -> str:
        model.validate()
        lines: list[str] = []
        lines.append(f"hierarchical model: {model.name}")
        lines.append(
            "messages: "
            + ", ".join(display_message(m) for m in model.messages())
        )
        finish = model.finish_name
        if finish is not None:
            lines.append(f"finish: {finish}")
        lines.append("=" * max(len(line) for line in lines))
        self._emit_transitions(model.root, lines, depth=0)
        self._emit_children(model.root, lines, depth=0)
        return "\n".join(lines) + "\n"

    def _emit_children(self, composite: CompositeState, lines, depth) -> None:
        for child in composite.children.values():
            pad = self._indent * depth
            markers = []
            if child is composite.initial_child:
                markers.append("initial")
            if isinstance(child, LeafState) and child.final:
                markers.append("final")
            suffix = f"  ({', '.join(markers)})" if markers else ""
            kind = "region" if isinstance(child, CompositeState) else "state"
            lines.append(f"{pad}{kind} {child.name}{suffix}")
            for phase, actions in (
                ("entry", child.entry_actions),
                ("exit", child.exit_actions),
            ):
                if actions:
                    shown = ", ".join(display_action(a) for a in actions)
                    lines.append(f"{pad}{self._indent}{phase}: {shown}")
            self._emit_transitions(child, lines, depth + 1)
            if isinstance(child, CompositeState):
                self._emit_children(child, lines, depth + 1)

    def _emit_transitions(self, node: _Node, lines, depth) -> None:
        pad = self._indent * depth
        for transition in node.transitions.values():
            shown = f"on {display_message(transition.message)} -> {transition.target}"
            if transition.actions:
                shown += "  [" + ", ".join(
                    display_action(a) for a in transition.actions
                ) + "]"
            lines.append(f"{pad}{self._indent}{shown}")


def _cluster_id(node: CompositeState) -> str:
    """Graphviz cluster name of a composite (``cluster`` prefix required)."""
    return f"cluster_{node.flat_name()}"


def _anchor(model, node) -> tuple[str, str | None]:
    """Concrete node id for an edge endpoint, plus its cluster clip.

    Graphviz cannot attach an edge to a cluster itself: the edge runs to
    a representative node inside it (the initial leaf) and is clipped at
    the border with ``ltail``/``lhead``.
    """
    if isinstance(node, CompositeState):
        # The root is not drawn as a cluster: its transitions (inherited
        # by the whole protocol) run unclipped from the initial leaf.
        clip = _cluster_id(node) if node.parent is not None else None
        return model.initial_leaf(node).flat_name(), clip
    return node.flat_name(), None


def _quote(text: str) -> str:
    """DOT double-quoted string with escaping (literal ``\\n`` preserved)."""
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    escaped = escaped.replace("\\\\n", "\\n")
    return f'"{escaped}"'
