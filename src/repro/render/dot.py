"""Graphviz DOT renderer: state transition diagrams (paper Fig 15).

The paper renders diagrams by exporting XML for a commercial diagramming
tool; the equivalent open artefact is a DOT graph.  Phase transitions
(transitions with actions, the thick arrows of Fig 8) are drawn bold, simple
transitions thin; the start state is marked with an entry arrow and final
states are drawn as double circles.
"""

from __future__ import annotations

from repro.core.machine import StateMachine
from repro.render.base import Renderer, display_action, display_message


class DotRenderer(Renderer):
    """Render a machine as a Graphviz ``digraph``."""

    def __init__(self, include_actions: bool = True, rankdir: str = "TB"):
        self._include_actions = include_actions
        self._rankdir = rankdir

    def render(self, machine: StateMachine) -> str:
        machine.check_integrity()
        lines: list[str] = []
        lines.append(f"digraph {_quote(machine.name)} {{")
        lines.append(f"    rankdir={self._rankdir};")
        lines.append("    node [shape=ellipse, fontsize=10];")
        lines.append("    edge [fontsize=9];")
        lines.append('    __start [shape=point, label=""];')

        for state in machine.states:
            attributes = []
            if state.final:
                attributes.append("shape=doublecircle")
            label = state.name
            attributes.append(f"label={_quote(label)}")
            lines.append(f"    {_quote(state.name)} [{', '.join(attributes)}];")

        lines.append(f"    __start -> {_quote(machine.start_state.name)};")

        for state in machine.states:
            for transition in state.transitions:
                label = display_message(transition.message)
                if self._include_actions and transition.actions:
                    actions = "\\n".join(
                        display_action(action) for action in transition.actions
                    )
                    label = f"{label}\\n{actions}"
                style = "bold" if transition.is_phase_transition() else "solid"
                lines.append(
                    f"    {_quote(state.name)} -> {_quote(transition.target_name)} "
                    f"[label={_quote(label)}, style={style}];"
                )

        lines.append("}")
        return "\n".join(lines) + "\n"


def _quote(text: str) -> str:
    """DOT double-quoted string with escaping.

    Literal ``\\n`` sequences inserted by the renderer for multi-line labels
    are preserved (DOT interprets them as line breaks).
    """
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    escaped = escaped.replace("\\\\n", "\\n")
    return f'"{escaped}"'
