"""Source-code renderer: generates an executable protocol implementation.

This is the paper's most important artefact (§3.5, Figs 16/17/19): the FSM
is rendered as a source module containing one ``receive_<message>`` handler
per message, each dispatching on the current state, performing the
transition's actions and moving to the resultant state.

The renderer is *completely generic* with respect to the algorithm being
modelled (paper §5.1): action strings such as ``->vote`` become calls to
action methods (``self.send_vote()``) supplied by a separate class.  Two
deployment styles are supported:

* **inheritance mode** (the paper's): ``action_base`` names a class the
  generated machine class inherits from; the surrounding application binds
  the name when compiling the module
  (:func:`repro.runtime.compile.compile_machine` does this);
* **standalone mode** (``action_base=None``): the generated class defines
  overridable no-op action methods, so the module runs on its own.

Commentary recorded by the abstract model is embedded as comments, as the
paper notes for its generated Java (§3.5).
"""

from __future__ import annotations

from repro.core.machine import StateMachine
from repro.core.state import State, Transition
from repro.render.base import Renderer, python_identifier
from repro.render.codebuffer import CodeBuffer

#: Actions are rendered as calls to methods with this prefix.
ACTION_METHOD_PREFIX = "send_"


def action_method_name(action: str) -> str:
    """Method called for an action string: ``->not_free`` -> ``send_not_free``."""
    name = action[2:] if action.startswith("->") else action
    return ACTION_METHOD_PREFIX + python_identifier(name)


def machine_class_name(machine: StateMachine) -> str:
    """Default class name derived from the machine name: ``CommitR4Machine``."""
    cleaned = "".join(ch if ch.isalnum() else " " for ch in machine.name)
    parts = [part.capitalize() for part in cleaned.split()]
    return "".join(parts) + "Machine"


#: Emission modes for :class:`PythonSourceRenderer`.
DISPATCH_MODES = ("handlers", "indexed")


class PythonSourceRenderer(Renderer):
    """Render a machine as a Python module implementing the protocol.

    ``dispatch`` selects the emission mode:

    * ``"handlers"`` (the paper's Fig 16 shape, the default) — one
      ``receive_<message>`` method per message, each an if-chain over
      state names;
    * ``"indexed"`` — the module embeds the machine's dense indexed form
      (flat ``NEXT_STATE`` / per-offset action-method tuples, exactly the
      :class:`repro.opt.IndexedMachine` layout) and ``receive`` is index
      arithmetic: two array lookups per event instead of a name scan.
      The public protocol is unchanged — ``receive_<message>`` wrappers,
      ``get_state`` and ``set_state`` still speak state *names*.
    """

    def __init__(
        self,
        class_name: str | None = None,
        action_base: str | None = "ActionsBase",
        include_commentary: bool = True,
        dispatch: str = "handlers",
    ):
        if dispatch not in DISPATCH_MODES:
            raise ValueError(
                f"unknown dispatch mode {dispatch!r}; choose from {DISPATCH_MODES}"
            )
        self._class_name = class_name
        self._action_base = action_base
        self._include_commentary = include_commentary
        self._dispatch = dispatch

    def render(self, machine: StateMachine) -> str:
        machine.check_integrity()
        class_name = self._class_name or machine_class_name(machine)
        buffer = CodeBuffer()

        self._module_header(buffer, machine)
        self._module_constants(buffer, machine)
        if self._dispatch == "indexed":
            self._indexed_constants(buffer, machine)
            self._class_header(buffer, machine, class_name)
            self._indexed_lifecycle_methods(buffer)
            self._indexed_dispatch_method(buffer)
            for message in machine.messages:
                self._indexed_handler_method(buffer, message)
        else:
            self._class_header(buffer, machine, class_name)
            self._lifecycle_methods(buffer)
            self._dispatch_method(buffer, machine)
            for message in machine.messages:
                self._handler_method(buffer, machine, message)
        if self._action_base is None:
            self._default_action_methods(buffer, machine)
        buffer.exit_block()
        return buffer.text()

    # ------------------------------------------------------------------
    # module-level sections
    # ------------------------------------------------------------------

    def _module_header(self, buffer: CodeBuffer, machine: StateMachine) -> None:
        buffer.add_line(
            '"""Generated implementation of state machine: ', machine.name, "."
        )
        buffer.blank()
        buffer.add_line("Produced by repro.render.source.PythonSourceRenderer.")
        buffer.add_line("DO NOT EDIT: regenerate from the abstract model instead.")
        parameters = machine.parameters
        if parameters:
            rendered = ", ".join(
                f"{key}={value!r}" for key, value in sorted(parameters.items())
            )
            buffer.add_line("Generation parameters: ", rendered, ".")
        buffer.add_line('"""')
        buffer.blank()

    def _module_constants(self, buffer: CodeBuffer, machine: StateMachine) -> None:
        buffer.add_line("START_STATE = ", repr(machine.start_state.name))
        finals = sorted(state.name for state in machine.final_states())
        buffer.add_line("FINAL_STATES = frozenset(", repr(finals), ")")
        buffer.add_line("MESSAGES = ", repr(tuple(machine.messages)))
        buffer.add_line("STATE_NAMES = (")
        buffer.increase_indent()
        for state in machine.states:
            buffer.add_line(repr(state.name), ",")
        buffer.decrease_indent()
        buffer.add_line(")")
        buffer.blank()

    def _class_header(
        self, buffer: CodeBuffer, machine: StateMachine, class_name: str
    ) -> None:
        base = self._action_base if self._action_base is not None else "object"
        buffer.enter_block(f"class {class_name}({base}):")
        buffer.add_line('"""Generated protocol implementation for ', machine.name, ".")
        buffer.blank()
        buffer.add_line("Call receive_<message>() (or receive(message)) whenever the")
        buffer.add_line("corresponding protocol message arrives; action methods named")
        buffer.add_line("send_<action>() are invoked for the transition's actions.")
        buffer.add_line('"""')
        buffer.blank()
        buffer.add_line("START_STATE = START_STATE")
        buffer.add_line("FINAL_STATES = FINAL_STATES")
        buffer.add_line("MESSAGES = MESSAGES")
        buffer.blank()

    # ------------------------------------------------------------------
    # lifecycle and dispatch
    # ------------------------------------------------------------------

    def _lifecycle_methods(self, buffer: CodeBuffer) -> None:
        buffer.enter_block("def __init__(self, *args, **kwargs):")
        buffer.add_line("super().__init__(*args, **kwargs)")
        buffer.add_line("self._state = START_STATE")
        buffer.exit_block()
        buffer.blank()
        buffer.enter_block("def get_state(self):")
        buffer.add_line('"""Current state name."""')
        buffer.add_line("return self._state")
        buffer.exit_block()
        buffer.blank()
        buffer.enter_block("def set_state(self, state):")
        buffer.add_line('"""Move to a new state (generated transitions call this)."""')
        buffer.add_line("self._state = state")
        buffer.exit_block()
        buffer.blank()
        buffer.enter_block("def is_finished(self):")
        buffer.add_line('"""Whether the machine has reached a finish state."""')
        buffer.add_line("return self._state in FINAL_STATES")
        buffer.exit_block()
        buffer.blank()
        self._reset_method(buffer, "self._state = START_STATE")

    def _reset_method(self, buffer: CodeBuffer, restore_line: str) -> None:
        """Emit ``reset()``: shared by both dispatch emission modes so the
        clear_sent contract cannot drift between them."""
        buffer.enter_block("def reset(self):")
        buffer.add_line(
            '"""Return to the start state and clear any recorded actions."""'
        )
        buffer.add_line(restore_line)
        buffer.add_line("clear = getattr(self, 'clear_sent', None)")
        buffer.enter_block("if clear is not None:")
        buffer.add_line("clear()")
        buffer.exit_block()
        buffer.exit_block()
        buffer.blank()

    def _dispatch_method(self, buffer: CodeBuffer, machine: StateMachine) -> None:
        buffer.enter_block("def receive(self, message):")
        buffer.add_line(
            '"""Dispatch a message by name; returns True if a transition fired."""'
        )
        for message in machine.messages:
            buffer.enter_block(f"if message == {message!r}:")
            buffer.add_line(f"return self.receive_{python_identifier(message)}()")
            buffer.exit_block()
        buffer.add_line("raise ValueError('unknown message: %r' % (message,))")
        buffer.exit_block()
        buffer.blank()

    # ------------------------------------------------------------------
    # indexed-dispatch emission (dense arrays, repro.opt layout)
    # ------------------------------------------------------------------

    def _indexed_constants(self, buffer: CodeBuffer, machine: StateMachine) -> None:
        from repro.opt import IndexedMachine

        im = IndexedMachine.from_machine(machine)
        width = len(im.messages)
        buffer.add_line("# Dense indexed dispatch arrays (repro.opt.IndexedMachine")
        buffer.add_line("# layout): offset = state_id * WIDTH + message column;")
        buffer.add_line("# NEXT_STATE[offset] is the target state id (-1: ignored)")
        buffer.add_line("# and ACTION_METHODS[offset] the methods to invoke.")
        buffer.add_line("WIDTH = ", str(width))
        buffer.add_line("START_ID = ", str(im.start))
        buffer.add_line(
            "STATE_INDEX = {name: i for i, name in enumerate(STATE_NAMES)}"
        )
        buffer.add_line("MESSAGE_INDEX = {name: i for i, name in enumerate(MESSAGES)}")
        buffer.add_line("FINAL = ", repr(im.final))
        buffer.add_line("NEXT_STATE = (")
        buffer.increase_indent()
        for row in range(len(im.state_names)):
            chunk = im.next_state[row * width : (row + 1) * width]
            buffer.add_line(", ".join(str(t) for t in chunk), ",")
        buffer.decrease_indent()
        buffer.add_line(")")
        buffer.add_line("ACTION_METHODS = (")
        buffer.increase_indent()
        for offset, target in enumerate(im.next_state):
            if target < 0:
                methods: tuple[str, ...] = ()
            else:
                methods = tuple(
                    action_method_name(im.actions[a])
                    for a in im.action_seqs[im.action_seq[offset]]
                )
            buffer.add_line(repr(methods), ",")
        buffer.decrease_indent()
        buffer.add_line(")")
        buffer.blank()

    def _indexed_lifecycle_methods(self, buffer: CodeBuffer) -> None:
        buffer.enter_block("def __init__(self, *args, **kwargs):")
        buffer.add_line("super().__init__(*args, **kwargs)")
        buffer.add_line("self._state_id = START_ID")
        buffer.exit_block()
        buffer.blank()
        buffer.enter_block("def get_state(self):")
        buffer.add_line('"""Current state name."""')
        buffer.add_line("return STATE_NAMES[self._state_id]")
        buffer.exit_block()
        buffer.blank()
        buffer.enter_block("def set_state(self, state):")
        buffer.add_line('"""Move to a named state (snapshot restore calls this)."""')
        buffer.add_line("index = STATE_INDEX.get(state)")
        buffer.enter_block("if index is None:")
        buffer.add_line("raise ValueError('unknown state: %r' % (state,))")
        buffer.exit_block()
        buffer.add_line("self._state_id = index")
        buffer.exit_block()
        buffer.blank()
        buffer.enter_block("def is_finished(self):")
        buffer.add_line('"""Whether the machine has reached a finish state."""')
        buffer.add_line("return FINAL[self._state_id]")
        buffer.exit_block()
        buffer.blank()
        self._reset_method(buffer, "self._state_id = START_ID")

    def _indexed_dispatch_method(self, buffer: CodeBuffer) -> None:
        buffer.enter_block("def receive(self, message):")
        buffer.add_line(
            '"""Dispatch by index arithmetic; returns True if a transition fired."""'
        )
        buffer.add_line("column = MESSAGE_INDEX.get(message)")
        buffer.enter_block("if column is None:")
        buffer.add_line("raise ValueError('unknown message: %r' % (message,))")
        buffer.exit_block()
        buffer.add_line("offset = self._state_id * WIDTH + column")
        buffer.add_line("target = NEXT_STATE[offset]")
        buffer.enter_block("if target < 0:")
        buffer.add_line("# Message not applicable in the current state: ignored.")
        buffer.add_line("return False")
        buffer.exit_block()
        buffer.enter_block("for method in ACTION_METHODS[offset]:")
        buffer.add_line("getattr(self, method)()")
        buffer.exit_block()
        buffer.add_line("self._state_id = target")
        buffer.add_line("return True")
        buffer.exit_block()
        buffer.blank()

    def _indexed_handler_method(self, buffer: CodeBuffer, message: str) -> None:
        buffer.enter_block(f"def receive_{python_identifier(message)}(self):")
        buffer.add_line(f'"""Handle an incoming {message!r} message."""')
        buffer.add_line(f"return self.receive({message!r})")
        buffer.exit_block()
        buffer.blank()

    # ------------------------------------------------------------------
    # per-message handlers (the paper's Fig 16 switch)
    # ------------------------------------------------------------------

    def _handler_method(
        self, buffer: CodeBuffer, machine: StateMachine, message: str
    ) -> None:
        buffer.enter_block(f"def receive_{python_identifier(message)}(self):")
        buffer.add_line(f'"""Handle an incoming {message!r} message."""')
        buffer.add_line("state = self._state")
        for state in machine.states:
            transition = state.get_transition(message)
            if transition is None:
                continue
            buffer.enter_block(f"if state == {state.name!r}:")
            self._commentary(buffer, transition)
            for action in transition.actions:
                buffer.add_line(f"self.{action_method_name(action)}()")
            buffer.add_line(f"self.set_state({transition.target_name!r})")
            buffer.add_line("return True")
            buffer.exit_block()
        buffer.add_line("# Message not applicable in the current state: ignored.")
        buffer.add_line("return False")
        buffer.exit_block()
        buffer.blank()

    def _commentary(self, buffer: CodeBuffer, transition: Transition) -> None:
        if not self._include_commentary:
            return
        for annotation in transition.annotations:
            buffer.add_line("# ", annotation)

    # ------------------------------------------------------------------
    # standalone mode
    # ------------------------------------------------------------------

    def _default_action_methods(
        self, buffer: CodeBuffer, machine: StateMachine
    ) -> None:
        for action in _distinct_actions(machine):
            buffer.enter_block(f"def {action_method_name(action)}(self):")
            buffer.add_line(
                f'"""Perform the {action!r} action (override to implement)."""'
            )
            buffer.exit_block()
            buffer.blank()


class JavaSourceRenderer(Renderer):
    """Render the machine as Java source matching the paper's Fig 16.

    Kept for artefact fidelity (the paper's implementation was Java): the
    output uses the same ``receiveVote()`` / ``switch (getState())`` shape,
    with state names encoded using dashes as in the figure.  The output is
    illustrative; the executable deployment path in this library is the
    Python renderer plus :mod:`repro.runtime.compile`.
    """

    def __init__(self, class_name: str | None = None, include_commentary: bool = False):
        self._class_name = class_name
        self._include_commentary = include_commentary

    def render(self, machine: StateMachine) -> str:
        machine.check_integrity()
        class_name = self._class_name or machine_class_name(machine)
        buffer = CodeBuffer(brace_blocks=True)
        buffer.add_line("// Generated implementation of state machine: ", machine.name)
        buffer.add_line("// DO NOT EDIT: regenerate from the abstract model instead.")
        buffer.enter_block(f"class {class_name}")
        for message in machine.messages:
            self._handler(buffer, machine, message)
        buffer.exit_block()
        return buffer.text()

    def _handler(self, buffer: CodeBuffer, machine: StateMachine, message: str) -> None:
        from repro.render.base import camel_case

        buffer.enter_block(f"void receive{camel_case(message)}()")
        buffer.enter_block("switch (getState())")
        for state in machine.states:
            transition = state.get_transition(message)
            if transition is None:
                continue
            buffer.enter_block(f"case ({_java_state_name(state)}) :")
            if self._include_commentary:
                for annotation in transition.annotations:
                    buffer.add_line("// ", annotation)
            for action in transition.actions:
                buffer.add_line(f"{_java_action_call(action)};")
            target = machine.get_state(transition.target_name)
            buffer.add_line(f"setState({_java_state_name(target)});")
            buffer.add_line("break;")
            buffer.exit_block()
        buffer.exit_block()
        buffer.exit_block()
        buffer.blank()


def _java_state_name(state: State) -> str:
    """Fig 16 encodes state variables with dashes: ``T-1-T-1-F-T-T``."""
    return state.name.replace("/", "-")


def _java_action_call(action: str) -> str:
    from repro.render.base import camel_case

    name = action[2:] if action.startswith("->") else action
    return f"send{camel_case(name)}()"


def _distinct_actions(machine: StateMachine) -> list[str]:
    """All distinct action strings, in first-use order."""
    seen: dict[str, None] = {}
    for _, transition in machine.transitions():
        for action in transition.actions:
            seen.setdefault(action, None)
    return list(seen)
