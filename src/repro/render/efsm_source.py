"""EFSM source renderer: an executable artefact for extended machines.

The paper's abstract promises that the generative approach "can also be
applied to the generation of a single extended finite state machine", and
§5.3 argues EFSMs benefit from the same treatment.  This renderer delivers
the source-level artefact: an :class:`~repro.core.efsm.Efsm` whose guards
and updates are declared as code strings is rendered into a standalone
Python module with one ``receive_<message>`` handler per message, each
testing the transition guards in priority order.

Unlike the FSM renderer's per-state dispatch, parameters (e.g. the
replication factor) are *constructor arguments of the generated class* —
one generated module serves the whole family, which is exactly the EFSM
trade-off of §5.3.
"""

from __future__ import annotations

from repro.core.efsm import Efsm
from repro.core.errors import RenderError
from repro.render.base import Renderer, python_identifier
from repro.render.codebuffer import CodeBuffer
from repro.render.source import action_method_name


def efsm_class_name(efsm: Efsm) -> str:
    """Default class name: ``commit-efsm`` -> ``CommitEfsmMachine``."""
    cleaned = "".join(ch if ch.isalnum() else " " for ch in efsm.name)
    return "".join(part.capitalize() for part in cleaned.split()) + "Machine"


class PythonEfsmRenderer(Renderer):
    """Render an EFSM as a standalone executable Python module.

    Every guarded transition must carry ``guard_code`` /``update_code``
    (or no guard/update at all); callables cannot be rendered to source,
    so an EFSM defined only with lambdas is rejected with a clear error.
    """

    def __init__(self, class_name: str | None = None, action_base: str | None = None):
        self._class_name = class_name
        self._action_base = action_base

    def render(self, machine: Efsm) -> str:
        machine.check_integrity()
        self._check_renderable(machine)
        name = self._class_name or efsm_class_name(machine)
        buffer = CodeBuffer()

        buffer.add_line('"""Generated EFSM implementation: ', machine.name, ".")
        buffer.blank()
        buffer.add_line("Produced by repro.render.efsm_source.PythonEfsmRenderer.")
        buffer.add_line("DO NOT EDIT: regenerate from the EFSM definition instead.")
        buffer.add_line('"""')
        buffer.blank()

        buffer.add_line("START_STATE = ", repr(machine.start_state.name))
        finals = sorted(s.name for s in machine.states if s.final)
        buffer.add_line("FINAL_STATES = frozenset(", repr(finals), ")")
        buffer.add_line("MESSAGES = ", repr(tuple(machine.messages)))
        buffer.add_line(
            "VARIABLES = ", repr({v.name: v.initial for v in machine.variables})
        )
        buffer.add_line("PARAMETERS = ", repr(tuple(machine.parameter_names)))
        buffer.blank()

        base = self._action_base or "object"
        buffer.enter_block(f"class {name}({base}):")
        buffer.add_line('"""Generated EFSM for ', machine.name, ".")
        buffer.blank()
        buffer.add_line("Parameters are constructor keyword arguments; one class")
        buffer.add_line("serves every parameter value (paper 5.3).")
        buffer.add_line('"""')
        buffer.blank()

        buffer.enter_block("def __init__(self, *args, **parameters):")
        buffer.add_line("super().__init__(*args)")
        buffer.enter_block("for required in PARAMETERS:")
        buffer.enter_block("if required not in parameters:")
        buffer.add_line("raise ValueError('missing EFSM parameter: %r' % (required,))")
        buffer.exit_block()
        buffer.exit_block()
        buffer.add_line("self._params = dict(parameters)")
        buffer.add_line("self._vars = dict(VARIABLES)")
        buffer.add_line("self._state = START_STATE")
        buffer.exit_block()
        buffer.blank()

        buffer.enter_block("def get_state(self):")
        buffer.add_line('"""Current state name."""')
        buffer.add_line("return self._state")
        buffer.exit_block()
        buffer.blank()
        buffer.enter_block("def is_finished(self):")
        buffer.add_line('"""Whether a final state has been reached."""')
        buffer.add_line("return self._state in FINAL_STATES")
        buffer.exit_block()
        buffer.blank()
        buffer.enter_block("def variables(self):")
        buffer.add_line('"""Current variable values (copy)."""')
        buffer.add_line("return dict(self._vars)")
        buffer.exit_block()
        buffer.blank()

        buffer.enter_block("def receive(self, message):")
        buffer.add_line('"""Dispatch a message by name; True if a transition fired."""')
        for message in machine.messages:
            buffer.enter_block(f"if message == {message!r}:")
            buffer.add_line(f"return self.receive_{python_identifier(message)}()")
            buffer.exit_block()
        buffer.add_line("raise ValueError('unknown message: %r' % (message,))")
        buffer.exit_block()
        buffer.blank()

        for message in machine.messages:
            self._handler(buffer, machine, message)

        if self._action_base is None:
            for action in _distinct_actions(machine):
                buffer.enter_block(f"def {action_method_name(action)}(self):")
                buffer.add_line(
                    f'"""Perform the {action!r} action (override to implement)."""'
                )
                buffer.exit_block()
                buffer.blank()

        buffer.exit_block()
        return buffer.text()

    def _handler(self, buffer: CodeBuffer, machine: Efsm, message: str) -> None:
        buffer.enter_block(f"def receive_{python_identifier(message)}(self):")
        buffer.add_line(f'"""Handle an incoming {message!r} message."""')
        buffer.add_line("v = self._vars")
        buffer.add_line("p = self._params")
        for state in machine.states:
            transitions = state.transitions_for(message)
            if not transitions:
                continue
            buffer.enter_block(f"if self._state == {state.name!r}:")
            for transition in transitions:
                guard = transition.guard_code
                if guard is not None:
                    buffer.enter_block(f"if {guard}:")
                if transition.update_code:
                    buffer.add_line(transition.update_code)
                for action in transition.actions:
                    buffer.add_line(f"self.{action_method_name(action)}()")
                buffer.add_line(f"self._state = {transition.target!r}")
                buffer.add_line("return True")
                if guard is not None:
                    buffer.exit_block()
            buffer.add_line("return False")
            buffer.exit_block()
        buffer.add_line("# Message not applicable in the current state: ignored.")
        buffer.add_line("return False")
        buffer.exit_block()
        buffer.blank()

    @staticmethod
    def _check_renderable(machine: Efsm) -> None:
        for state in machine.states:
            for transition in state.transitions:
                if transition.guard_code is None and transition.has_guard:
                    raise RenderError(
                        f"EFSM transition {state.name} --{transition.message}--> "
                        f"{transition.target} has a callable guard without "
                        "guard_code; declare guards as code strings to render"
                    )
                if transition.update_code is None and transition.has_update:
                    raise RenderError(
                        f"EFSM transition {state.name} --{transition.message}--> "
                        f"{transition.target} has a callable update without "
                        "update_code; declare updates as code strings to render"
                    )


def _distinct_actions(machine: Efsm) -> list[str]:
    seen: dict[str, None] = {}
    for state in machine.states:
        for transition in state.transitions:
            for action in transition.actions:
                seen.setdefault(action, None)
    return list(seen)
