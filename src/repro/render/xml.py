"""XML diagram-interchange renderer (paper Fig 15).

The paper generates "an XML diagram representation that can be imported
into a diagramming tool" (Borland Together).  We emit a self-contained,
schema-documented XML document carrying the same information — states with
annotations, transitions with actions, start/finish designations — which
any structured diagram consumer (or this library's own parser,
:func:`parse_machine_xml`) can read back.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.core.errors import RenderError
from repro.core.machine import StateMachine
from repro.core.state import State, Transition
from repro.render.base import Renderer


class XmlRenderer(Renderer):
    """Render a machine as an XML diagram-interchange document."""

    def render(self, machine: StateMachine) -> str:
        machine.check_integrity()
        root = ET.Element(
            "stateMachine",
            {
                "name": machine.name,
                "states": str(len(machine)),
                "startState": machine.start_state.name,
            },
        )
        finish = machine.finish_state
        if finish is not None:
            root.set("finishState", finish.name)

        messages = ET.SubElement(root, "messages")
        for message in machine.messages:
            ET.SubElement(messages, "message", {"name": message})

        states = ET.SubElement(root, "states")
        for state in machine.states:
            element = ET.SubElement(
                states,
                "state",
                {"name": state.name, "final": "true" if state.final else "false"},
            )
            for annotation in state.annotations:
                ET.SubElement(element, "annotation").text = annotation
            for transition in state.transitions:
                t_element = ET.SubElement(
                    element,
                    "transition",
                    {"message": transition.message, "target": transition.target_name},
                )
                for action in transition.actions:
                    ET.SubElement(t_element, "action", {"name": action})
                for annotation in transition.annotations:
                    ET.SubElement(t_element, "annotation").text = annotation

        ET.indent(root)
        return ET.tostring(root, encoding="unicode", xml_declaration=True) + "\n"


def parse_machine_xml(text: str) -> StateMachine:
    """Reconstruct a :class:`StateMachine` from :class:`XmlRenderer` output.

    The round-trip loses the component vectors (the XML carries only names),
    so the result is suitable for rendering and runtime interpretation but
    not for further component-level analysis.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise RenderError(f"malformed machine XML: {exc}") from exc
    if root.tag != "stateMachine":
        raise RenderError(f"expected <stateMachine> root, got <{root.tag}>")

    messages = [m.get("name") for m in root.findall("./messages/message")]
    machine = StateMachine(messages, name=root.get("name", "machine"))

    state_elements = root.findall("./states/state")
    for element in state_elements:
        state = State(
            element.get("name"),
            annotations=[a.text or "" for a in element.findall("annotation")],
            final=element.get("final") == "true",
        )
        machine.add_state(state)

    for element in state_elements:
        state = machine.get_state(element.get("name"))
        for t_element in element.findall("transition"):
            state.record_transition(
                Transition(
                    t_element.get("message"),
                    t_element.get("target"),
                    [a.get("name") for a in t_element.findall("action")],
                    [a.text or "" for a in t_element.findall("annotation")],
                )
            )

    machine.set_start(root.get("startState"))
    finish = root.get("finishState")
    if finish is not None:
        machine.set_finish(finish)
    machine.check_integrity()
    return machine
