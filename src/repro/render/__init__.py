"""Artefact renderers for generated state machines (paper §3.5, §4.1).

* :class:`~repro.render.text.TextRenderer` — Fig 14 textual descriptions;
* :class:`~repro.render.source.PythonSourceRenderer` — executable protocol
  implementations (the paper's Fig 16/17/19, retargeted to Python);
* :class:`~repro.render.source.JavaSourceRenderer` — Fig 16-faithful Java;
* :class:`~repro.render.dot.DotRenderer` — Graphviz diagrams (Fig 15);
* :class:`~repro.render.hsm.HierarchicalDotRenderer` and
  :class:`~repro.render.hsm.HierarchicalOutlineRenderer` — clustered
  diagrams and text outlines of hierarchical (unflattened) designs;
* :class:`~repro.render.xml.XmlRenderer` — XML diagram interchange (Fig 15)
  with :func:`~repro.render.xml.parse_machine_xml` for round-trips;
* :class:`~repro.render.markdown.MarkdownRenderer` — documentation;
* :class:`~repro.render.codebuffer.CodeBuffer` — the Fig 18 generation
  utilities all source renderers are built on.
"""

from repro.render.base import (
    Renderer,
    camel_case,
    display_action,
    display_message,
    python_identifier,
)
from repro.render.codebuffer import CodeBuffer
from repro.render.dot import DotRenderer
from repro.render.efsm_source import PythonEfsmRenderer, efsm_class_name
from repro.render.efsm_text import EfsmTextRenderer
from repro.render.hsm import HierarchicalDotRenderer, HierarchicalOutlineRenderer
from repro.render.html import HtmlRenderer
from repro.render.markdown import MarkdownRenderer
from repro.render.scxml import SCXML_NS, ScxmlRenderer
from repro.render.source import (
    JavaSourceRenderer,
    PythonSourceRenderer,
    action_method_name,
    machine_class_name,
)
from repro.render.text import TextRenderer
from repro.render.xml import XmlRenderer, parse_machine_xml

__all__ = [
    "CodeBuffer",
    "DotRenderer",
    "EfsmTextRenderer",
    "HierarchicalDotRenderer",
    "HierarchicalOutlineRenderer",
    "HtmlRenderer",
    "JavaSourceRenderer",
    "MarkdownRenderer",
    "PythonEfsmRenderer",
    "PythonSourceRenderer",
    "Renderer",
    "SCXML_NS",
    "ScxmlRenderer",
    "TextRenderer",
    "XmlRenderer",
    "action_method_name",
    "camel_case",
    "display_action",
    "display_message",
    "efsm_class_name",
    "machine_class_name",
    "parse_machine_xml",
    "python_identifier",
]
