"""Code-generation buffer with the paper's Fig 18 utility methods.

Generative code is hard to read when it controls the generated layout via
explicit whitespace in string literals.  The paper's remedy is a small set
of buffer utilities — ``add``, ``addLn``, ``enterBlock``, ``exitBlock``,
``increaseIndent``, ``decreaseIndent``, ``resetIndent`` — that manage
indentation and block structure so the generative code (Fig 19) reads like
the generated code (Fig 16).  :class:`CodeBuffer` is a Python port of those
utilities supporting both brace-delimited blocks (Java-style output) and
indentation-only blocks (Python-style output).
"""

from __future__ import annotations

from repro.core.errors import RenderError


class CodeBuffer:
    """Accumulates generated source with managed indentation.

    ``brace_blocks`` selects the block style: ``True`` makes
    :meth:`enter_block` emit ``{`` and :meth:`exit_block` emit ``}``
    (Java-style, as in the paper's Fig 17–19); ``False`` adjusts only the
    indent level (Python-style).
    """

    def __init__(self, indent_unit: str = "    ", brace_blocks: bool = False):
        self._parts: list[str] = []
        self._indent_unit = indent_unit
        self._level = 0
        self._brace_blocks = brace_blocks
        self._at_line_start = True

    # ------------------------------------------------------------------
    # Fig 18 operations
    # ------------------------------------------------------------------

    def add(self, *items: str) -> "CodeBuffer":
        """Append items to the current line (no newline)."""
        for item in items:
            if item and self._at_line_start:
                self._parts.append(self._indent_unit * self._level)
                self._at_line_start = False
            self._parts.append(item)
        return self

    def add_line(self, *items: str) -> "CodeBuffer":
        """Append items followed by a newline."""
        self.add(*items)
        self._parts.append("\n")
        self._at_line_start = True
        return self

    def blank(self) -> "CodeBuffer":
        """Append an empty line (never indented)."""
        if not self._at_line_start:
            self._parts.append("\n")
            self._at_line_start = True
        self._parts.append("\n")
        return self

    def enter_block(self, header: str | None = None) -> "CodeBuffer":
        """Open a new block and increase the indent level.

        With brace blocks, ``header`` (if given) is emitted followed by
        `` {``; without, ``header`` is emitted as its own line (callers
        typically include the trailing ``:`` themselves).
        """
        if self._brace_blocks:
            if header is not None:
                self.add(header, " ")
            self.add_line("{")
        elif header is not None:
            self.add_line(header)
        self._level += 1
        return self

    def exit_block(self) -> "CodeBuffer":
        """Close the current block and decrease the indent level."""
        if self._level == 0:
            raise RenderError("exit_block() without matching enter_block()")
        self._level -= 1
        if self._brace_blocks:
            self.add_line("}")
        return self

    def increase_indent(self) -> "CodeBuffer":
        """Increase the indent level without emitting anything."""
        self._level += 1
        return self

    def decrease_indent(self) -> "CodeBuffer":
        """Decrease the indent level without emitting anything."""
        if self._level == 0:
            raise RenderError("decrease_indent() below zero")
        self._level -= 1
        return self

    def reset_indent(self) -> "CodeBuffer":
        """Reset indentation to the left margin."""
        self._level = 0
        return self

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    @property
    def level(self) -> int:
        """Current indent level."""
        return self._level

    def text(self) -> str:
        """The accumulated source text."""
        if self._level != 0:
            raise RenderError(
                f"unbalanced blocks: {self._level} block(s) still open"
            )
        return "".join(self._parts)

    def __str__(self) -> str:
        return "".join(self._parts)
