"""Logical entities of the generic storage layer (paper §2, Fig 2).

* a **data block** contains unstructured, immutable data of arbitrary size;
* a **PID** (persistent identifier) denotes a particular data block — it is
  the block's secure hash, so any retrieved block can be verified against
  the PID that requested it;
* a **GUID** (globally unique identifier) denotes something with identity,
  such as a file; the version-history service maps a GUID to the growing
  sequence of PIDs of its versions (updates are appended, never
  destructive, to support the historical record).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.storage.p2p.keys import format_key, key_for_bytes, key_for_string


@dataclass(frozen=True)
class PID:
    """Persistent identifier of an immutable data block (its SHA-1)."""

    key: int

    @property
    def hex(self) -> str:
        """40-hex-digit rendering."""
        return format_key(self.key)

    def __str__(self) -> str:
        return self.hex[:12]


@dataclass(frozen=True)
class GUID:
    """Globally unique identifier of an entity with identity (e.g. a file)."""

    key: int
    label: str = ""

    @classmethod
    def for_name(cls, name: str) -> "GUID":
        """Derive a GUID from a human-readable name."""
        return cls(key=key_for_string(name), label=name)

    @property
    def hex(self) -> str:
        """40-hex-digit rendering."""
        return format_key(self.key)

    def __str__(self) -> str:
        return self.label or self.hex[:12]


@dataclass(frozen=True)
class DataBlock:
    """An immutable block of unstructured data."""

    data: bytes

    @property
    def pid(self) -> PID:
        """The block's persistent identifier: SHA-1 of its contents."""
        return PID(key_for_bytes(self.data))

    def verify(self, pid: PID) -> bool:
        """Whether this block's contents hash to ``pid``.

        This is the intrinsic verifiability of the data storage service
        (paper §2.1): a replica cannot forge a block for a requested PID.
        """
        return self.pid == pid

    def __len__(self) -> int:
        return len(self.data)

    def digest(self) -> str:
        """Full SHA-1 hex digest of the contents."""
        return hashlib.sha1(self.data).hexdigest()
