"""Finger tables and hop-by-hop key lookup (Chord [6]).

Each node keeps a finger table: finger ``i`` is the successor of
``node_key + 2^i``.  A lookup for a key walks greedily: each hop forwards
to the queried node's closest preceding finger, terminating when the key
falls between a node and its immediate successor.  With sound finger
tables the walk takes O(log n) hops — a property the test suite checks
statistically — and degrades gracefully (falling back to successor hops)
when fingers are stale after churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import SimulationError
from repro.storage.p2p.keys import KEY_BITS, KEY_SPACE, in_interval
from repro.storage.p2p.ring import ChordRing


@dataclass
class FingerTable:
    """One node's routing state."""

    node_id: str
    node_key: int
    fingers: list[str] = field(default_factory=list)
    successor: str = ""

    def closest_preceding(self, ring_keys: dict[str, int], key: int) -> str:
        """The finger most closely preceding ``key`` (Chord's greedy step)."""
        for finger in reversed(self.fingers):
            finger_key = ring_keys[finger]
            if in_interval(finger_key, self.node_key, key, inclusive_end=False):
                return finger
        return self.successor


@dataclass
class RouteResult:
    """Outcome of a hop-by-hop lookup."""

    key: int
    owner: str
    hops: list[str]

    @property
    def hop_count(self) -> int:
        """Number of forwarding steps taken."""
        return len(self.hops) - 1


class Router:
    """Maintains finger tables over a :class:`ChordRing` and resolves keys.

    The router models the routing overlay: it is rebuilt (``stabilise``)
    after membership changes, the way Chord's stabilisation protocol
    repairs fingers over time.  Lookups performed between a membership
    change and stabilisation may take extra hops but still succeed via
    successor pointers, unless the ring itself lost the key's replicas.
    """

    def __init__(self, ring: ChordRing):
        self._ring = ring
        self._tables: dict[str, FingerTable] = {}
        self._keys: dict[str, int] = {}
        self.stabilise()

    @property
    def ring(self) -> ChordRing:
        """The membership ground truth."""
        return self._ring

    def stabilise(self) -> None:
        """Rebuild every node's successor pointer and finger table."""
        self._tables.clear()
        self._keys = {
            node_id: ChordRing.node_key(node_id)
            for node_id in self._ring.node_ids()
        }
        for node_id, node_key in self._keys.items():
            table = FingerTable(node_id=node_id, node_key=node_key)
            table.successor = self._ring.successor((node_key + 1) % KEY_SPACE)
            fingers: list[str] = []
            for i in range(KEY_BITS):
                target = (node_key + (1 << i)) % KEY_SPACE
                fingers.append(self._ring.successor(target))
            # Deduplicate consecutive fingers to keep the greedy scan short.
            table.fingers = [
                finger
                for index, finger in enumerate(fingers)
                if index == 0 or finger != fingers[index - 1]
            ]
            self._tables[node_id] = table

    def table(self, node_id: str) -> FingerTable:
        """The finger table of one node."""
        try:
            return self._tables[node_id]
        except KeyError:
            raise SimulationError(f"no routing state for node {node_id!r}") from None

    def lookup(
        self, start_node: str, key: int, max_hops: int | None = None
    ) -> RouteResult:
        """Resolve ``key`` starting from ``start_node``, recording each hop."""
        if start_node not in self._tables:
            raise SimulationError(f"unknown start node {start_node!r}")
        if max_hops is None:
            max_hops = max(2 * KEY_BITS, 4 * len(self._tables))
        key %= KEY_SPACE
        hops = [start_node]
        current = start_node
        for _ in range(max_hops):
            table = self._tables[current]
            successor = table.successor
            successor_key = self._keys[successor]
            if in_interval(key, table.node_key, successor_key, inclusive_end=True):
                hops.append(successor)
                return RouteResult(key=key, owner=successor, hops=hops)
            next_hop = table.closest_preceding(self._keys, key)
            if next_hop == current:
                next_hop = successor
            hops.append(next_hop)
            current = next_hop
        raise SimulationError(
            f"lookup for {key:x} from {start_node!r} exceeded {max_hops} hops"
        )
