"""Key space and key derivation (paper §2.1).

The storage layer addresses everything through a 160-bit key space (SHA-1,
as the paper's prototype).  A data block's PID is the secure hash of its
contents — which is what makes block retrieval *intrinsically verifiable* —
and the set of replica locations for a key is produced by "a globally known
function that deterministically generates a set of keys from a single PID",
here the paper's stated choice of keys evenly distributed in key space.
"""

from __future__ import annotations

import hashlib

#: Width of the identifier space in bits (SHA-1).
KEY_BITS = 160
#: Size of the identifier space.
KEY_SPACE = 1 << KEY_BITS


def key_for_bytes(data: bytes) -> int:
    """SHA-1 of ``data`` as an integer key (a block's PID)."""
    return int.from_bytes(hashlib.sha1(data).digest(), "big")


def key_for_string(text: str) -> int:
    """SHA-1 of a UTF-8 string (node ids, GUID names)."""
    return key_for_bytes(text.encode("utf-8"))


def format_key(key: int) -> str:
    """Canonical 40-hex-digit rendering of a key."""
    return f"{key:040x}"


def parse_key(text: str) -> int:
    """Inverse of :func:`format_key`."""
    value = int(text, 16)
    if not 0 <= value < KEY_SPACE:
        raise ValueError(f"key out of range: {text!r}")
    return value


def replica_keys(key: int, replication_factor: int) -> list[int]:
    """Deterministic replica key set: evenly spaced around the key circle.

    The paper's prototype "returns a set of keys that are evenly
    distributed in key space"; the number of keys is the replication
    factor.  The first key is the input itself, so a block's primary
    location is its own hash.
    """
    if replication_factor < 1:
        raise ValueError(f"replication factor must be >= 1, got {replication_factor}")
    stride = KEY_SPACE // replication_factor
    return [(key + i * stride) % KEY_SPACE for i in range(replication_factor)]


def distance(a: int, b: int) -> int:
    """Clockwise distance from ``a`` to ``b`` on the identifier circle."""
    return (b - a) % KEY_SPACE


def in_interval(key: int, start: int, end: int, inclusive_end: bool = True) -> bool:
    """Whether ``key`` lies in the circular interval ``(start, end]``.

    With ``inclusive_end=False`` the interval is ``(start, end)``.  The
    interval wraps when ``end <= start``.  Following the Chord convention,
    the degenerate interval with ``start == end`` denotes the whole circle
    (for a one-node ring, every key belongs to that node), minus the
    endpoint itself in the exclusive case.
    """
    if start == end:
        return True if inclusive_end else key != start
    if inclusive_end and key == end:
        return True
    if start < end:
        return start < key < end
    return key > start or key < end
