"""Chord-style peer-to-peer key-based routing layer (paper §2, [5,6])."""

from repro.storage.p2p.keys import (
    KEY_BITS,
    KEY_SPACE,
    distance,
    format_key,
    in_interval,
    key_for_bytes,
    key_for_string,
    parse_key,
    replica_keys,
)
from repro.storage.p2p.ring import ChordRing
from repro.storage.p2p.routing import FingerTable, RouteResult, Router

__all__ = [
    "KEY_BITS",
    "KEY_SPACE",
    "ChordRing",
    "FingerTable",
    "RouteResult",
    "Router",
    "distance",
    "format_key",
    "in_interval",
    "key_for_bytes",
    "key_for_string",
    "parse_key",
    "replica_keys",
]
