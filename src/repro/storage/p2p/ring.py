"""The Chord-style identifier ring (paper §2, [6]).

"All participating nodes are organised into a logical circle, and messages
routed around the circle ... 'short-cut' links maintained by each node
yield routing performance that scales logarithmically with the size of the
network."

:class:`ChordRing` maintains the membership of the circle — node
identifiers hashed into the key space — and answers the fundamental
question of key-based routing: which live node is responsible for a key
(its *successor*).  Per-node finger tables and the hop-by-hop lookup walk
live in :mod:`repro.storage.p2p.routing`; the ring provides the ground
truth those structures approximate, which is also what tests verify
against.
"""

from __future__ import annotations

import bisect

from repro.core.errors import SimulationError
from repro.storage.p2p.keys import KEY_SPACE, key_for_string


class ChordRing:
    """Membership and successor resolution on the identifier circle."""

    def __init__(self):
        self._key_to_node: dict[int, str] = {}
        self._sorted_keys: list[int] = []

    def __len__(self) -> int:
        return len(self._sorted_keys)

    def __contains__(self, node_id: str) -> bool:
        return self.node_key(node_id) in self._key_to_node

    @staticmethod
    def node_key(node_id: str) -> int:
        """A node's position on the circle: the hash of its identifier."""
        return key_for_string(node_id)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def join(self, node_id: str) -> int:
        """Add a node; returns its ring position."""
        key = self.node_key(node_id)
        if key in self._key_to_node:
            if self._key_to_node[key] != node_id:
                raise SimulationError(
                    f"hash collision between {node_id!r} and {self._key_to_node[key]!r}"
                )
            raise SimulationError(f"node {node_id!r} already joined")
        self._key_to_node[key] = node_id
        bisect.insort(self._sorted_keys, key)
        return key

    def leave(self, node_id: str) -> None:
        """Remove a node (graceful departure or detected failure)."""
        key = self.node_key(node_id)
        if key not in self._key_to_node:
            raise SimulationError(f"node {node_id!r} is not on the ring")
        del self._key_to_node[key]
        index = bisect.bisect_left(self._sorted_keys, key)
        self._sorted_keys.pop(index)

    def node_ids(self) -> list[str]:
        """All member node ids in ring order."""
        return [self._key_to_node[key] for key in self._sorted_keys]

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def successor(self, key: int) -> str:
        """The live node responsible for ``key`` (first node at/after it)."""
        if not self._sorted_keys:
            raise SimulationError("ring is empty")
        index = bisect.bisect_left(self._sorted_keys, key % KEY_SPACE)
        if index == len(self._sorted_keys):
            index = 0
        return self._key_to_node[self._sorted_keys[index]]

    def successor_list(self, key: int, count: int) -> list[str]:
        """The ``count`` nodes following ``key``, clockwise, without repeats."""
        if not self._sorted_keys:
            raise SimulationError("ring is empty")
        count = min(count, len(self._sorted_keys))
        index = bisect.bisect_left(self._sorted_keys, key % KEY_SPACE)
        result = []
        for offset in range(count):
            position = (index + offset) % len(self._sorted_keys)
            result.append(self._key_to_node[self._sorted_keys[position]])
        return result

    def predecessor(self, key: int) -> str:
        """The node immediately before ``key`` on the circle."""
        if not self._sorted_keys:
            raise SimulationError("ring is empty")
        index = bisect.bisect_left(self._sorted_keys, key % KEY_SPACE) - 1
        return self._key_to_node[self._sorted_keys[index]]

    def responsible_nodes(self, keys: list[int]) -> list[str]:
        """Successor of each key, deduplicated preserving order.

        This maps a replica key set (from
        :func:`repro.storage.p2p.keys.replica_keys`) to the *peer set* for
        the data item (paper §2.1).  With fewer live nodes than keys, the
        same node may be responsible for several keys; deduplication means
        the effective replication factor degrades gracefully.
        """
        seen: dict[str, None] = {}
        for key in keys:
            seen.setdefault(self.successor(key), None)
        return list(seen)
