"""Peer-side commit engine: generated FSMs deployed in a live node.

This module is where the paper's generated artefacts meet its distributed
system (§2.2, §4.3): each peer-set member runs **one generated FSM instance
per ongoing update** to a GUID's version history.  The engine

* creates instances on first contact with an update (whether that contact
  is the client's ``update`` request or an early ``vote`` from a faster
  peer — the FSM family handles both orders);
* delivers the local ``free`` / ``not free`` coordination messages between
  sibling instances of the same GUID, which is how a member serialises its
  vote among competing updates;
* turns FSM actions (``vote`` / ``commit``) into outgoing network messages
  via a callback, and ``free`` / ``not_free`` into sibling deliveries;
* records an update into the member's local history when its instance
  reaches the finish state;
* implements the timeout/abandon rule the paper's "timeout/retry scheme"
  implies: a contended instance that cannot finish is eventually abandoned
  so the member can vote for a client's retry, and a *commit catch-up* rule
  (adopting an update once ``f+1`` commits prove a correct member committed
  it) keeps abandoning members convergent with committing ones.

The FSM class itself is produced by
:func:`repro.runtime.compile.compile_machine` from the
:class:`~repro.models.commit.CommitModel` — the deployed code path is the
generated one, not a hand-written re-implementation.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any, Optional

from repro.models.commit import CommitModel, fault_tolerance
from repro.runtime.actions import CallbackActions
from repro.runtime.cache import GeneratedCodeCache
from repro.runtime.compile import CompiledMachine, compile_machine

#: Process-wide cache of compiled commit machines, keyed by replication
#: factor (paper §4.2's caching generation policy: every simulated node
#: with the same r shares one generated class).
_MACHINE_CACHE = GeneratedCodeCache(max_entries=16)


def commit_machine_for(replication_factor: int) -> CompiledMachine:
    """The compiled generated commit machine for a replication factor."""
    return _MACHINE_CACHE.get_or_generate(
        replication_factor,
        lambda: compile_machine(
            CommitModel(replication_factor).generate_state_machine(),
            action_base=CallbackActions,
            include_commentary=False,
        ),
    )


@dataclass
class VersionRecord:
    """One committed entry in a GUID's version history."""

    update_id: str
    pid_hex: str

    def as_tuple(self) -> tuple[str, str]:
        """Hashable form used for cross-node agreement checks."""
        return (self.update_id, self.pid_hex)


@dataclass
class UpdateInstance:
    """Book-keeping for one FSM instance on one member."""

    update_id: str
    machine: Any
    pid_hex: Optional[str] = None
    update_received: bool = False
    abandoned: bool = False
    committed: bool = False
    commits_seen: int = 0
    last_activity: float = 0.0

    @property
    def active(self) -> bool:
        """Whether the instance still participates in the protocol."""
        return not self.abandoned and not self.machine.is_finished()


class GuidCommitEngine:
    """All commit-protocol state one member holds for one GUID."""

    def __init__(
        self,
        replication_factor: int,
        send: Callable[[str, str], None],
        now: Callable[[], float],
        on_commit: Callable[[VersionRecord], None],
    ):
        """``send(kind, update_id)`` broadcasts a protocol message to the
        other peer-set members; ``on_commit`` records a finished update."""
        self._r = replication_factor
        self._f = fault_tolerance(replication_factor)
        self._send = send
        self._now = now
        self._on_commit = on_commit
        self._instances: dict[str, UpdateInstance] = {}
        self._chooser: Optional[str] = None
        self.history: list[VersionRecord] = []
        self._committed_ids: set[str] = set()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def fault_tolerance(self) -> int:
        """``f`` for this peer set."""
        return self._f

    @property
    def chooser(self) -> Optional[str]:
        """Update id currently holding this member's local vote, if any."""
        return self._chooser

    def instance(self, update_id: str) -> Optional[UpdateInstance]:
        """The instance for an update id, if one exists."""
        return self._instances.get(update_id)

    def active_instances(self) -> list[UpdateInstance]:
        """Instances still participating in the protocol."""
        return [inst for inst in self._instances.values() if inst.active]

    # ------------------------------------------------------------------
    # message entry points
    # ------------------------------------------------------------------

    def handle(self, kind: str, update_id: str, pid_hex: Optional[str] = None) -> None:
        """Feed a protocol message (``update`` / ``vote`` / ``commit``)."""
        instance = self._ensure_instance(update_id)
        if pid_hex is not None and instance.pid_hex is None:
            instance.pid_hex = pid_hex
        if kind == "commit":
            instance.commits_seen += 1
        if instance.abandoned or update_id in self._committed_ids:
            self._catch_up(instance)
            return
        instance.last_activity = self._now()
        if kind == "update":
            instance.update_received = True
        instance.machine.receive(kind)
        self._after_receive(instance)

    def _ensure_instance(self, update_id: str) -> UpdateInstance:
        instance = self._instances.get(update_id)
        if instance is not None:
            return instance
        compiled = commit_machine_for(self._r)
        holder: list[UpdateInstance] = []

        def perform(action: str) -> None:
            self._perform_action(holder[0], action)

        machine = compiled.new_instance(perform)
        instance = UpdateInstance(
            update_id=update_id, machine=machine, last_activity=self._now()
        )
        holder.append(instance)
        self._instances[update_id] = instance
        # A fresh instance may choose only if no sibling holds the local
        # vote: the hosting member delivers `free` at creation time.
        if self._chooser is None:
            machine.receive("free")
        return instance

    # ------------------------------------------------------------------
    # FSM actions
    # ------------------------------------------------------------------

    def _perform_action(self, instance: UpdateInstance, action: str) -> None:
        if action in ("vote", "commit"):
            self._send(action, instance.update_id)
        elif action == "not_free":
            self._chooser = instance.update_id
            for sibling in self._instances.values():
                if sibling is not instance and sibling.active:
                    sibling.machine.receive("not_free")
        elif action == "free":
            self._release(instance)

    def _release(self, instance: UpdateInstance) -> None:
        """The chooser finished or was abandoned: free the siblings.

        Freeing a sibling can make it vote and claim the local vote for
        itself (its ``not_free`` action re-sets the chooser), so delivery
        stops as soon as the vote is taken again.
        """
        if self._chooser == instance.update_id:
            self._chooser = None
            for sibling in list(self._instances.values()):
                if self._chooser is not None:
                    break
                if sibling is not instance and sibling.active:
                    sibling.machine.receive("free")
                    self._after_receive(sibling)

    # ------------------------------------------------------------------
    # commit recording
    # ------------------------------------------------------------------

    def _after_receive(self, instance: UpdateInstance) -> None:
        if instance.machine.is_finished() and not instance.committed:
            self._record(instance)

    def _record(self, instance: UpdateInstance) -> None:
        instance.committed = True
        if instance.update_id in self._committed_ids:
            return
        self._committed_ids.add(instance.update_id)
        record = VersionRecord(
            update_id=instance.update_id, pid_hex=instance.pid_hex or ""
        )
        self.history.append(record)
        self._on_commit(record)

    def _catch_up(self, instance: UpdateInstance) -> None:
        """Adopt an update once ``f+1`` commits prove a correct member did.

        An abandoned instance can no longer finish through its own FSM, but
        ``f+1`` commit messages imply at least one correct member committed
        the update; adopting it (and echoing a commit so that slower
        members can adopt too) keeps histories convergent.
        """
        if instance.update_id in self._committed_ids:
            return
        if instance.commits_seen >= self._f + 1:
            self._send("commit", instance.update_id)
            self._record(instance)

    # ------------------------------------------------------------------
    # abandonment (the member half of the paper's timeout/retry scheme)
    # ------------------------------------------------------------------

    def abandon_stalled(self, idle_timeout: float) -> list[str]:
        """Abandon active instances idle for longer than ``idle_timeout``.

        Returns the abandoned update ids.  Abandoning the chooser releases
        the local vote so a client retry (a fresh update id) can proceed —
        without this, one contention round would block a member's GUID
        forever (the deadlock the paper's §2.2 timeout/retry addresses).
        """
        now = self._now()
        stalled = [
            instance
            for instance in self._instances.values()
            if instance.active and now - instance.last_activity >= idle_timeout
        ]
        # Mark everything stalled *before* releasing any lock: releasing
        # frees siblings, and freeing a sibling that is itself stalled
        # would resurrect a stale contender and break vote serialisation.
        for instance in stalled:
            instance.abandoned = True
        for instance in stalled:
            self._release(instance)
        return [instance.update_id for instance in stalled]

    def history_tuples(self) -> list[tuple[str, str]]:
        """The member's committed history as comparable tuples."""
        return [record.as_tuple() for record in self.history]
