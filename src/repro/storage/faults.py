"""Fault models for storage nodes (paper §2).

The ASA setting assumes non-trusted platforms: nodes may fail-stop (which
timeouts detect) or behave Byzantine — returning corrupt data, voting for
everything, staying silent, or sending spurious protocol messages.  The
commit protocol tolerates ``f = floor((r-1)/3)`` Byzantine peer-set members
per execution; these classes configure what each simulated node actually
does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ByzantineBehaviour(enum.Enum):
    """How a faulty node misbehaves."""

    #: Behaves correctly (the default).
    NONE = "none"
    #: Stops responding to protocol messages without crashing.
    SILENT = "silent"
    #: Returns corrupted data blocks on retrieval.
    CORRUPT_DATA = "corrupt_data"
    #: Votes immediately for every update it hears about, and echoes
    #: commits without justification (tries to split the peer set).
    PROMISCUOUS_VOTER = "promiscuous_voter"
    #: Reports a fabricated version history on retrieval.
    LIE_HISTORY = "lie_history"


@dataclass
class FaultPlan:
    """Per-node fault configuration.

    ``crash_at`` schedules a fail-stop at the given virtual time;
    ``behaviour`` selects a Byzantine behaviour active from the start.
    """

    behaviour: ByzantineBehaviour = ByzantineBehaviour.NONE
    crash_at: float | None = None

    @property
    def is_byzantine(self) -> bool:
        """Whether the node deviates from the protocol while alive."""
        return self.behaviour is not ByzantineBehaviour.NONE

    @classmethod
    def correct(cls) -> "FaultPlan":
        """A well-behaved node."""
        return cls()

    @classmethod
    def silent(cls) -> "FaultPlan":
        """A node that ignores protocol traffic."""
        return cls(behaviour=ByzantineBehaviour.SILENT)

    @classmethod
    def corrupt(cls) -> "FaultPlan":
        """A node that serves corrupted blocks."""
        return cls(behaviour=ByzantineBehaviour.CORRUPT_DATA)

    @classmethod
    def promiscuous(cls) -> "FaultPlan":
        """A node that votes for everything."""
        return cls(behaviour=ByzantineBehaviour.PROMISCUOUS_VOTER)

    @classmethod
    def liar(cls) -> "FaultPlan":
        """A node that fabricates version histories."""
        return cls(behaviour=ByzantineBehaviour.LIE_HISTORY)
