"""The distributed abstract file system (paper Fig 1, top layer).

"File system adapters connect individual user operating systems to a
single distributed abstract file system, which is in turn built on a
generic distributed storage layer."  This module is that abstract file
system: files are entities with identity (GUIDs), file contents are
chunked into immutable data blocks (PIDs), and each version of a file is a
*manifest* block listing its chunk PIDs, appended to the file's version
history through the BFT commit protocol.

Because updates are appended rather than destructive, every previous
version of a file remains readable — the paper's "historical record".

The API is synchronous over the simulation: each call drives the cluster's
event loop until its operations complete, which is how a file system
adapter would block a user process on I/O.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.errors import SimulationError
from repro.storage.blocks import DataBlock, GUID, PID
from repro.storage.cluster import StorageCluster
from repro.storage.endpoint import ServiceEndpoint
from repro.storage.p2p.keys import parse_key

#: Default chunk size; small so tests exercise multi-chunk files cheaply.
DEFAULT_CHUNK_SIZE = 4096


@dataclass(frozen=True)
class FileVersion:
    """One version of a file: its manifest PID and decoded metadata."""

    index: int
    manifest_pid: PID
    size: int
    chunk_count: int


class FileSystemError(SimulationError):
    """A file-system operation failed (timeout, quorum loss, corruption)."""


class DistributedFileSystem:
    """A file-system adapter over the generic storage layer."""

    def __init__(
        self,
        cluster: StorageCluster,
        endpoint: ServiceEndpoint,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        timeout: float = 3000.0,
    ):
        if chunk_size < 1:
            raise SimulationError(f"chunk size must be positive, got {chunk_size}")
        self._cluster = cluster
        self._endpoint = endpoint
        self._chunk_size = chunk_size
        self._timeout = timeout

    # ------------------------------------------------------------------
    # paths and manifests
    # ------------------------------------------------------------------

    @staticmethod
    def guid_for_path(path: str) -> GUID:
        """The GUID denoting a file path."""
        return GUID.for_name(f"fs:{path}")

    def _encode_manifest(self, chunks: list[PID], size: int) -> DataBlock:
        payload = {
            "size": size,
            "chunks": [pid.hex for pid in chunks],
        }
        return DataBlock(json.dumps(payload, sort_keys=True).encode("utf-8"))

    @staticmethod
    def _decode_manifest(block: DataBlock) -> tuple[int, list[PID]]:
        try:
            payload = json.loads(block.data.decode("utf-8"))
            chunks = [PID(parse_key(hex_key)) for hex_key in payload["chunks"]]
            return int(payload["size"]), chunks
        except (ValueError, KeyError, TypeError) as exc:
            raise FileSystemError(f"malformed manifest block: {exc}") from exc

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def write_file(self, path: str, data: bytes) -> FileVersion:
        """Write a new version of ``path``; returns its version record.

        Chunks are stored first (each at its ``r - f`` quorum), then the
        manifest block, then the manifest's PID is committed to the file's
        version history.  A failure at any stage raises — partially stored
        chunks are harmless orphans (immutable, content-addressed).
        """
        chunks: list[PID] = []
        for offset in range(0, max(len(data), 1), self._chunk_size):
            block = DataBlock(data[offset : offset + self._chunk_size])
            self._store_block(block)
            chunks.append(block.pid)

        manifest = self._encode_manifest(chunks, len(data))
        self._store_block(manifest)

        guid = self.guid_for_path(path)
        operation = self._endpoint.append_version(guid, manifest.pid)
        if not self._cluster.run_until(lambda: operation.done, timeout=self._timeout):
            raise FileSystemError(f"commit of {path!r} did not complete in time")
        if not operation.success:
            raise FileSystemError(f"commit of {path!r} failed after retries")
        versions = self.list_versions(path)
        return versions[-1]

    def _store_block(self, block: DataBlock) -> None:
        operation = self._endpoint.store_block(block)
        if not self._cluster.run_until(lambda: operation.done, timeout=self._timeout):
            raise FileSystemError("block store timed out")
        if not operation.success:
            raise FileSystemError("block store failed to reach quorum")

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def list_versions(self, path: str) -> list[FileVersion]:
        """All committed versions of ``path``, oldest first."""
        guid = self.guid_for_path(path)
        operation = self._endpoint.get_history(guid)
        if not self._cluster.run_until(lambda: operation.done, timeout=self._timeout):
            raise FileSystemError(f"history retrieval for {path!r} timed out")
        versions: list[FileVersion] = []
        for index, (_, pid_hex) in enumerate(operation.agreed):
            if not pid_hex:
                continue
            manifest = self._fetch_block(PID(parse_key(pid_hex)))
            size, chunks = self._decode_manifest(manifest)
            versions.append(
                FileVersion(
                    index=index,
                    manifest_pid=manifest.pid,
                    size=size,
                    chunk_count=len(chunks),
                )
            )
        return versions

    def read_file(self, path: str, version: int | None = None) -> bytes:
        """Read a version of ``path`` (default: the latest).

        Every block fetched — manifest and chunks — is verified against
        its PID by the retrieval path, so corrupt replicas cannot affect
        the result.
        """
        versions = self.list_versions(path)
        if not versions:
            raise FileSystemError(f"no such file: {path!r}")
        try:
            record = versions[version if version is not None else -1]
        except IndexError:
            raise FileSystemError(
                f"{path!r} has {len(versions)} version(s); no index {version}"
            ) from None
        manifest = self._fetch_block(record.manifest_pid)
        size, chunks = self._decode_manifest(manifest)
        data = b"".join(self._fetch_block(pid).data for pid in chunks)
        if len(data) != size:
            raise FileSystemError(
                f"assembled {len(data)} bytes for {path!r}, manifest says {size}"
            )
        return data

    def exists(self, path: str) -> bool:
        """Whether ``path`` has at least one committed version."""
        return bool(self.list_versions(path))

    def _fetch_block(self, pid: PID) -> DataBlock:
        operation = self._endpoint.retrieve_block(pid)
        if not self._cluster.run_until(lambda: operation.done, timeout=self._timeout):
            raise FileSystemError(f"retrieval of {pid} timed out")
        if not operation.success or operation.block is None:
            raise FileSystemError(f"block {pid} unavailable or corrupt everywhere")
        return operation.block
