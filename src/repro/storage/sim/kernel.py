"""Discrete-event simulation kernel.

The substrate under the simulated ASA storage system (paper §2): a
deterministic event loop with virtual time, seeded randomness and trace
counters.  Determinism matters — every experiment in this reproduction is
replayable from its seed, which is what lets the commit protocol's
agreement and deadlock behaviour be asserted in tests rather than observed
anecdotally.
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import SimulationError


@dataclass(order=True)
class _Scheduled:
    """A scheduled callback; ordering is (time, sequence) for determinism."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Timer:
    """Handle to a scheduled event, supporting cancellation."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Scheduled):
        self._entry = entry

    @property
    def time(self) -> float:
        """Virtual time at which the event fires."""
        return self._entry.time

    @property
    def active(self) -> bool:
        """Whether the event is still pending."""
        return not self._entry.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._entry.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator with virtual time."""

    def __init__(self, seed: int = 0):
        self._queue: list[_Scheduled] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._rng = random.Random(seed)
        self._seed = seed
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def rng(self) -> random.Random:
        """The simulation's seeded random stream."""
        return self._rng

    @property
    def seed(self) -> int:
        """Seed the simulation was created with."""
        return self._seed

    def new_rng(self, label: str) -> random.Random:
        """An independent random stream derived from the seed and a label.

        Components that draw randomness on their own schedules use split
        streams so adding one component does not perturb another's draws.
        """
        return random.Random(f"{self._seed}:{label}")

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> Timer:
        """Run ``action`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        entry = _Scheduled(self._now + delay, next(self._seq), action)
        heapq.heappush(self._queue, entry)
        return Timer(entry)

    def schedule_at(self, time: float, action: Callable[[], None]) -> Timer:
        """Run ``action`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, action)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Process the next event; returns ``False`` when the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            if entry.time < self._now:
                raise SimulationError("event queue went backwards in time")
            self._now = entry.time
            self.events_processed += 1
            entry.action()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> None:
        """Run until the queue empties, ``until`` time passes, or event budget ends."""
        processed = 0
        while self._queue:
            if until is not None and self._next_time() > until:
                self._now = until
                return
            if processed >= max_events:
                raise SimulationError(
                    f"exceeded event budget of {max_events} events — livelock?"
                )
            self.step()
            processed += 1
        if until is not None and until > self._now:
            self._now = until

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        max_events: int = 1_000_000,
    ) -> bool:
        """Run until ``predicate()`` holds; returns whether it did in time."""
        deadline = self._now + timeout
        processed = 0
        while not predicate():
            if not self._queue or self._next_time() > deadline:
                self._now = min(deadline, self._now if not self._queue else self._now)
                return predicate()
            if processed >= max_events:
                raise SimulationError(
                    f"exceeded event budget of {max_events} events — livelock?"
                )
            self.step()
            processed += 1
        return True

    def _next_time(self) -> float:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return float("inf")
        return self._queue[0].time

    def next_time(self) -> float:
        """Virtual time of the next pending event (``inf`` when idle).

        Cancelled entries at the head of the heap are discarded on the
        way, so peeking is also a partial cleanup.
        """
        return self._next_time()

    def pending_events(self) -> int:
        """Number of scheduled, uncancelled events."""
        return sum(1 for entry in self._queue if not entry.cancelled)

    # ------------------------------------------------------------------
    # reuse
    # ------------------------------------------------------------------

    def drain(self) -> int:
        """Compact the heap by dropping cancelled tombstones; returns count.

        ``Timer.cancel`` only marks an entry — the ``_Scheduled`` record
        stays in the heap until its time is popped.  A long-lived caller
        that arms and cancels timers at a high rate (the fleet scenario
        plane cancels one timer per observed state change) would
        otherwise accumulate tombstones without bound.  Draining
        preserves the live entries and their (time, seq) order.
        """
        before = len(self._queue)
        if before == 0:
            return 0
        self._queue = [entry for entry in self._queue if not entry.cancelled]
        heapq.heapify(self._queue)
        return before - len(self._queue)

    def reset(self) -> None:
        """Return to virtual time zero with an empty queue.

        Every scheduled entry — live or cancelled — is discarded, the
        clock and the processed-event counter rewind, and the primary
        random stream is re-seeded, so a reset simulator replays exactly
        like a freshly constructed one with the same seed.  Streams
        already handed out by :meth:`new_rng` are unaffected (they are
        derived from the seed, not from this object).
        """
        self._queue.clear()
        self._seq = itertools.count()
        self._now = 0.0
        self._rng = random.Random(self._seed)
        self.events_processed = 0
