"""Base class for simulated nodes.

A :class:`SimNode` owns an identifier, liveness state and a connection to
the network; subclasses implement :meth:`on_message`.  Crash (fail-stop)
faults flip :attr:`alive` — a dead node silently loses inbound messages
(the network counts them) and its timers stop firing.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.storage.sim.kernel import Simulator, Timer
from repro.storage.sim.network import Message, Network


class SimNode:
    """A network-attached simulated node."""

    def __init__(self, node_id: str, network: Network):
        self.node_id = node_id
        self.alive = True
        self._network = network
        self._timers: list[Timer] = []
        network.register(self)

    @property
    def network(self) -> Network:
        """The network this node is attached to."""
        return self._network

    @property
    def sim(self) -> Simulator:
        """The simulation kernel."""
        return self._network.sim

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------

    def send(self, destination: str, kind: str, **payload: Any) -> None:
        """Send a message to another node."""
        if not self.alive:
            return
        self._network.send(Message(self.node_id, destination, kind, dict(payload)))

    def broadcast(self, destinations: list[str], kind: str, **payload: Any) -> None:
        """Send to every destination except self."""
        if not self.alive:
            return
        self._network.broadcast(self.node_id, destinations, kind, **payload)

    def handle_message(self, message: Message) -> None:
        """Network entry point; drops messages when dead."""
        if not self.alive:
            return
        self.on_message(message)

    def on_message(self, message: Message) -> None:
        """Subclass hook: react to a delivered message."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------

    def set_timer(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule a callback that is suppressed if the node dies first."""

        def guarded() -> None:
            if self.alive:
                callback()

        timer = self.sim.schedule(delay, guarded)
        self._timers.append(timer)
        return timer

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: stop processing messages and timers."""
        self.alive = False
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()

    def recover(self) -> None:
        """Return to life (state is whatever survived the crash)."""
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "up" if self.alive else "down"
        return f"{type(self).__name__}({self.node_id!r}, {status})"
