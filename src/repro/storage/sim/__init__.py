"""Discrete-event simulation substrate for the storage system."""

from repro.storage.sim.kernel import Simulator, Timer
from repro.storage.sim.network import (
    ExponentialLatency,
    FixedLatency,
    LatencyModel,
    Message,
    Network,
    NetworkStats,
    UniformLatency,
)
from repro.storage.sim.node import SimNode

__all__ = [
    "ExponentialLatency",
    "FixedLatency",
    "LatencyModel",
    "Message",
    "Network",
    "NetworkStats",
    "SimNode",
    "Simulator",
    "Timer",
    "UniformLatency",
]
