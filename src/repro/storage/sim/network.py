"""Simulated message-passing network.

Connects :class:`~repro.storage.sim.node.SimNode` instances through the
event kernel with configurable latency, loss and partitions.  All faults
the paper's setting implies — slow links, lost messages, partitioned or
crashed nodes — are injected here or at the node layer, never by mutating
protocol state directly.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import SimulationError
from repro.storage.sim.kernel import Simulator


class LatencyModel:
    """Distribution of one-way message delays."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Constant delay."""

    delay: float = 1.0

    def sample(self, rng: random.Random) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Uniform delay in ``[low, high]``."""

    low: float = 0.5
    high: float = 1.5

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class ExponentialLatency(LatencyModel):
    """Exponential delay with the given mean, plus a small floor."""

    mean: float = 1.0
    floor: float = 0.05

    def sample(self, rng: random.Random) -> float:
        return self.floor + rng.expovariate(1.0 / self.mean)


@dataclass
class Message:
    """An addressed protocol message."""

    source: str
    destination: str
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.source}->{self.destination} {self.kind} {self.payload})"


@dataclass
class NetworkStats:
    """Counters of network activity."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    blocked_by_partition: int = 0
    to_dead_node: int = 0


class Network:
    """Delivers messages between registered nodes via the simulator."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        drop_probability: float = 0.0,
    ):
        if not 0.0 <= drop_probability < 1.0:
            raise SimulationError(
                f"drop probability must be in [0, 1), got {drop_probability}"
            )
        self._sim = sim
        self._latency = latency or FixedLatency(1.0)
        self._drop_probability = drop_probability
        self._rng = sim.new_rng("network")
        self._nodes: dict[str, "SimNodeLike"] = {}
        self._partitions: list[set[str]] = []
        self.stats = NetworkStats()
        self._taps: list[Callable[[Message], None]] = []

    @property
    def sim(self) -> Simulator:
        """The underlying simulator."""
        return self._sim

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def register(self, node: "SimNodeLike") -> None:
        """Attach a node; its ``node_id`` must be unique."""
        if node.node_id in self._nodes:
            raise SimulationError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node

    def node(self, node_id: str) -> "SimNodeLike":
        """Look up a registered node."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SimulationError(f"unknown node {node_id!r}") from None

    def node_ids(self) -> list[str]:
        """All registered node ids (insertion order)."""
        return list(self._nodes)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def set_drop_probability(self, probability: float) -> None:
        """Change the message loss rate."""
        if not 0.0 <= probability < 1.0:
            raise SimulationError(
                f"drop probability must be in [0, 1), got {probability}"
            )
        self._drop_probability = probability

    def partition(self, *groups: set[str]) -> None:
        """Split the network: messages may only flow within a group."""
        self._partitions = [set(group) for group in groups]

    def heal_partition(self) -> None:
        """Remove all partitions."""
        self._partitions = []

    def _partitioned(self, a: str, b: str) -> bool:
        if not self._partitions:
            return False
        for group in self._partitions:
            if a in group and b in group:
                return False
        return True

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def tap(self, observer: Callable[[Message], None]) -> None:
        """Observe every message at send time (for tests and metrics)."""
        self._taps.append(observer)

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Send ``message``; delivery is scheduled per the latency model."""
        self.stats.sent += 1
        for observer in self._taps:
            observer(message)
        destination = self._nodes.get(message.destination)
        if destination is None:
            raise SimulationError(f"send to unknown node {message.destination!r}")
        if self._partitioned(message.source, message.destination):
            self.stats.blocked_by_partition += 1
            return
        if self._drop_probability and self._rng.random() < self._drop_probability:
            self.stats.dropped += 1
            return
        delay = self._latency.sample(self._rng)

        def deliver() -> None:
            if not destination.alive:
                self.stats.to_dead_node += 1
                return
            self.stats.delivered += 1
            destination.handle_message(message)

        self._sim.schedule(delay, deliver)

    def broadcast(
        self, source: str, destinations: list[str], kind: str, **payload: Any
    ) -> None:
        """Send one message per destination (excluding ``source`` itself)."""
        for destination in destinations:
            if destination == source:
                continue
            self.send(Message(source, destination, kind, dict(payload)))


class SimNodeLike:
    """Protocol for objects registrable on a :class:`Network`."""

    node_id: str
    alive: bool

    def handle_message(self, message: Message) -> None:
        raise NotImplementedError
