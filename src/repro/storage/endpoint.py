"""The service endpoint: the client side of both storage services.

Implements the paper's client behaviours (§2.1–2.2):

* **store**: hash the block to its PID, locate the replica nodes for the
  PID's key set, send each a copy, and complete once ``r - f`` have
  acknowledged (so at least ``f + 1`` correct nodes hold the data);
* **retrieve**: try a single replica (fixed or random order), verify the
  returned block against the PID's hash, and fall back to another replica
  on corruption, absence or timeout;
* **append version**: send the update to every member of the GUID's peer
  set and wait for ``f + 1`` commit confirmations; because concurrent
  updates can deadlock the voting, the endpoint runs the paper's
  timeout/retry scheme with pluggable back-off policies (fixed, random or
  exponential — §2.2 names these options);
* **get history**: query all peer-set members and accept the longest
  prefix on which at least ``f + 1`` members agree, which defeats up to
  ``f`` fabricated histories.
"""

from __future__ import annotations

import enum
import itertools
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.models.commit import fault_tolerance
from repro.storage.blocks import DataBlock, GUID, PID
from repro.storage.p2p.keys import replica_keys
from repro.storage.p2p.ring import ChordRing
from repro.storage.p2p.routing import Router
from repro.storage.sim.network import Message, Network
from repro.storage.sim.node import SimNode


# ----------------------------------------------------------------------
# retry policies (paper §2.2: "random or exponential back-off, or fixed
# or random server ordering")
# ----------------------------------------------------------------------


class RetryPolicy:
    """Delay before retry ``attempt`` (1-based)."""

    def delay(self, attempt: int, rng: random.Random) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedBackoff(RetryPolicy):
    """Constant delay between attempts."""

    interval: float = 10.0

    def delay(self, attempt: int, rng: random.Random) -> float:
        return self.interval


@dataclass(frozen=True)
class RandomBackoff(RetryPolicy):
    """Uniformly random delay — decorrelates competing clients."""

    low: float = 5.0
    high: float = 20.0

    def delay(self, attempt: int, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class ExponentialBackoff(RetryPolicy):
    """Exponentially growing delay with jitter."""

    base: float = 5.0
    factor: float = 2.0
    cap: float = 120.0
    jitter: float = 0.5

    def delay(self, attempt: int, rng: random.Random) -> float:
        raw = min(self.cap, self.base * self.factor ** (attempt - 1))
        return raw * (1.0 + rng.uniform(0.0, self.jitter))


class ServerOrder(enum.Enum):
    """Order in which retrieval tries replicas."""

    FIXED = "fixed"
    RANDOM = "random"


# ----------------------------------------------------------------------
# operation handles
# ----------------------------------------------------------------------


@dataclass
class StoreOperation:
    """In-flight block store."""

    pid_hex: str
    data: bytes
    replicas: list[str]
    required_acks: int
    request_id: str
    acked: set[str] = field(default_factory=set)
    attempts: int = 1
    done: bool = False
    success: bool = False


@dataclass
class RetrieveOperation:
    """In-flight block retrieval."""

    pid_hex: str
    order: list[str]
    request_id: str
    next_index: int = 0
    attempts: int = 0
    rejected: list[str] = field(default_factory=list)
    block: Optional[DataBlock] = None
    done: bool = False
    success: bool = False


@dataclass
class AppendOperation:
    """In-flight version append (one logical write, possibly many attempts)."""

    guid_hex: str
    pid_hex: str
    peers: list[str]
    required_confirmations: int
    update_id: str = ""
    attempts: int = 0
    update_ids: list[str] = field(default_factory=list)
    confirmations: set[str] = field(default_factory=set)
    done: bool = False
    success: bool = False


@dataclass
class HistoryOperation:
    """In-flight history retrieval with Byzantine-tolerant agreement."""

    guid_hex: str
    peers: list[str]
    request_id: str
    quorum: int
    responses: dict[str, list[tuple[str, str]]] = field(default_factory=dict)
    agreed: list[tuple[str, str]] = field(default_factory=list)
    done: bool = False
    success: bool = False


# ----------------------------------------------------------------------
# the endpoint
# ----------------------------------------------------------------------


class ServiceEndpoint(SimNode):
    """Client node for the data storage and version history services."""

    def __init__(
        self,
        node_id: str,
        network: Network,
        ring: ChordRing,
        router: Router,
        replication_factor: int,
        retry_policy: RetryPolicy | None = None,
        server_order: ServerOrder = ServerOrder.RANDOM,
        request_timeout: float = 15.0,
        max_attempts: int = 8,
    ):
        super().__init__(node_id, network)
        self._ring = ring
        self._router = router
        self._r = replication_factor
        self._f = fault_tolerance(replication_factor)
        self._retry_policy = retry_policy or ExponentialBackoff()
        self._server_order = server_order
        self._request_timeout = request_timeout
        self._max_attempts = max_attempts
        self._rng = self.sim.new_rng(f"endpoint:{node_id}")
        self._sequence = itertools.count(1)

        self._stores: dict[str, StoreOperation] = {}
        self._retrieves: dict[str, RetrieveOperation] = {}
        self._appends: dict[tuple[str, str], AppendOperation] = {}
        self._histories: dict[str, HistoryOperation] = {}
        self.lookup_hops: list[int] = []

    # ------------------------------------------------------------------
    # peer location (shared by both services, paper §2.1)
    # ------------------------------------------------------------------

    def locate_peers(self, key: int) -> list[str]:
        """The peer set for a key: successors of its replica key set.

        The endpoint is a client, not a ring member, so each replica key is
        resolved through the routing layer starting from a *gateway* node
        (a known ring member, chosen at random per lookup).  Hop counts are
        recorded for routing statistics.
        """
        members = self._ring.node_ids()
        peers = []
        for replica_key in replica_keys(key, self._r):
            gateway = self._rng.choice(members)
            route = self._router.lookup(gateway, replica_key)
            self.lookup_hops.append(route.hop_count)
            if route.owner not in peers:
                peers.append(route.owner)
        return peers

    def _next_id(self, prefix: str) -> str:
        return f"{prefix}:{self.node_id}:{next(self._sequence)}"

    # ------------------------------------------------------------------
    # data storage service
    # ------------------------------------------------------------------

    def store_block(self, block: DataBlock) -> StoreOperation:
        """Store a block; completes at ``r - f`` acknowledgements."""
        pid = block.pid
        peers = self.locate_peers(pid.key)
        required = max(1, len(peers) - self._f)
        operation = StoreOperation(
            pid_hex=pid.hex,
            data=block.data,
            replicas=peers,
            required_acks=required,
            request_id=self._next_id("store"),
        )
        self._stores[operation.request_id] = operation
        for peer in peers:
            self.send(
                peer, "store_block", data=block.data, request_id=operation.request_id
            )
        self._arm_store_timeout(operation)
        return operation

    def _arm_store_timeout(self, operation: StoreOperation) -> None:
        def on_timeout() -> None:
            if operation.done:
                return
            if operation.attempts >= self._max_attempts:
                operation.done = True
                return
            operation.attempts += 1
            for peer in operation.replicas:
                if peer not in operation.acked:
                    self.send(
                        peer,
                        "store_block",
                        data=operation.data,
                        request_id=operation.request_id,
                    )
            self._arm_store_timeout(operation)

        self.set_timer(self._request_timeout, on_timeout)

    def retrieve_block(self, pid: PID) -> RetrieveOperation:
        """Retrieve and verify a block, falling back across replicas."""
        peers = self.locate_peers(pid.key)
        order = list(peers)
        if self._server_order is ServerOrder.RANDOM:
            self._rng.shuffle(order)
        operation = RetrieveOperation(
            pid_hex=pid.hex, order=order, request_id=self._next_id("get")
        )
        self._retrieves[operation.request_id] = operation
        self._try_next_replica(operation)
        return operation

    def _try_next_replica(self, operation: RetrieveOperation) -> None:
        if operation.done:
            return
        if operation.next_index >= len(operation.order):
            operation.done = True
            operation.success = False
            return
        peer = operation.order[operation.next_index]
        operation.next_index += 1
        operation.attempts += 1
        self.send(
            peer, "get_block", pid=operation.pid_hex, request_id=operation.request_id
        )

        expected_attempt = operation.attempts

        def on_timeout() -> None:
            if operation.done or operation.attempts != expected_attempt:
                return
            operation.rejected.append(peer)
            self._try_next_replica(operation)

        self.set_timer(self._request_timeout, on_timeout)

    # ------------------------------------------------------------------
    # version history service
    # ------------------------------------------------------------------

    def append_version(self, guid: GUID, pid: PID) -> AppendOperation:
        """Append a GUID→PID mapping via the BFT commit protocol."""
        peers = self.locate_peers(guid.key)
        operation = AppendOperation(
            guid_hex=guid.hex,
            pid_hex=pid.hex,
            peers=peers,
            required_confirmations=self._f + 1,
        )
        self._start_append_attempt(operation)
        return operation

    def _start_append_attempt(self, operation: AppendOperation) -> None:
        operation.attempts += 1
        operation.confirmations = set()
        operation.update_id = self._next_id("update")
        operation.update_ids.append(operation.update_id)
        self._appends[(operation.guid_hex, operation.update_id)] = operation
        for peer in operation.peers:
            self.send(
                peer,
                "update",
                guid=operation.guid_hex,
                update_id=operation.update_id,
                pid=operation.pid_hex,
                peers=operation.peers,
            )
        self._arm_append_timeout(operation, operation.update_id)

    def _arm_append_timeout(self, operation: AppendOperation, update_id: str) -> None:
        def on_timeout() -> None:
            if operation.done or operation.update_id != update_id:
                return
            if operation.attempts >= self._max_attempts:
                operation.done = True
                operation.success = False
                return
            delay = self._retry_policy.delay(operation.attempts, self._rng)
            self.set_timer(delay, lambda: self._retry_append(operation, update_id))

        self.set_timer(self._request_timeout, on_timeout)

    def _retry_append(self, operation: AppendOperation, update_id: str) -> None:
        if operation.done or operation.update_id != update_id:
            return
        self._start_append_attempt(operation)

    def get_history(self, guid: GUID) -> HistoryOperation:
        """Fetch the version history with ``f + 1`` agreement."""
        peers = self.locate_peers(guid.key)
        operation = HistoryOperation(
            guid_hex=guid.hex,
            peers=peers,
            request_id=self._next_id("history"),
            quorum=self._f + 1,
        )
        self._histories[operation.request_id] = operation
        for peer in peers:
            self.send(
                peer, "get_history", guid=guid.hex, request_id=operation.request_id
            )

        def on_timeout() -> None:
            if not operation.done:
                self._finish_history(operation)

        self.set_timer(self._request_timeout, on_timeout)
        return operation

    def _finish_history(self, operation: HistoryOperation) -> None:
        operation.agreed = agree_on_history(
            list(operation.responses.values()), operation.quorum
        )
        operation.success = len(operation.responses) >= operation.quorum
        operation.done = True

    # ------------------------------------------------------------------
    # replies
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        kind = message.kind
        if kind == "store_ack":
            self._on_store_ack(message)
        elif kind == "block_data":
            self._on_block_data(message)
        elif kind == "committed":
            self._on_committed(message)
        elif kind == "history":
            self._on_history(message)

    def _on_store_ack(self, message: Message) -> None:
        operation = self._stores.get(message.payload["request_id"])
        if operation is None or operation.done:
            return
        operation.acked.add(message.source)
        if len(operation.acked) >= operation.required_acks:
            operation.done = True
            operation.success = True

    def _on_block_data(self, message: Message) -> None:
        operation = self._retrieves.get(message.payload["request_id"])
        if operation is None or operation.done:
            return
        data: Optional[bytes] = message.payload["data"]
        if data is not None:
            block = DataBlock(data)
            if block.pid.hex == operation.pid_hex:
                operation.block = block
                operation.done = True
                operation.success = True
                return
        # Missing or corrupt: the hash check failed, try another replica.
        operation.rejected.append(message.source)
        self._try_next_replica(operation)

    def _on_committed(self, message: Message) -> None:
        key = (message.payload["guid"], message.payload["update_id"])
        operation = self._appends.get(key)
        if operation is None or operation.done:
            return
        if message.payload["update_id"] != operation.update_id:
            return  # confirmation for an abandoned earlier attempt
        operation.confirmations.add(message.source)
        if len(operation.confirmations) >= operation.required_confirmations:
            operation.done = True
            operation.success = True

    def _on_history(self, message: Message) -> None:
        operation = self._histories.get(message.payload["request_id"])
        if operation is None or operation.done:
            return
        history = [tuple(entry) for entry in message.payload["history"]]
        operation.responses[message.source] = history
        if len(operation.responses) == len(operation.peers):
            self._finish_history(operation)


def agree_on_history(
    responses: list[list[tuple[str, str]]], quorum: int
) -> list[tuple[str, str]]:
    """Longest prefix on which at least ``quorum`` responses agree.

    Position by position, the entry reported by ≥ ``quorum`` members is
    accepted; the first position without such agreement ends the history.
    With at most ``f`` Byzantine members and ``quorum = f + 1``, a
    fabricated entry can never reach quorum unless a correct member also
    reports it.
    """
    agreed: list[tuple[str, str]] = []
    index = 0
    while True:
        counts: dict[tuple[str, str], int] = {}
        for response in responses:
            if index < len(response):
                entry = response[index]
                counts[entry] = counts.get(entry, 0) + 1
        winner = None
        for entry, count in counts.items():
            if count >= quorum:
                winner = entry
                break
        if winner is None:
            return agreed
        agreed.append(winner)
        index += 1
