"""A storage node: data storage replica + version-history peer (paper §2).

Each :class:`StorageNode` participates in both distributed services of the
generic storage layer:

* **data storage** (§2.1): it stores immutable blocks for the PIDs whose
  replica keys it is responsible for, acknowledges stores, and serves
  retrievals (which clients verify against the PID's hash);
* **version history** (§2.2): for each GUID whose peer set it belongs to,
  it runs the Byzantine-fault-tolerant commit protocol through *generated*
  FSM instances (one per ongoing update) via
  :class:`~repro.storage.version_history.GuidCommitEngine`.

Byzantine behaviours from :mod:`repro.storage.faults` are implemented here,
at the boundary between network and protocol, so the protocol engines stay
clean: a silent node drops protocol traffic, a promiscuous voter bypasses
its FSM and votes for everything, a data corrupter flips bytes on the way
out, and a history liar fabricates retrieval responses.
"""

from __future__ import annotations

from typing import Optional

from repro.storage.blocks import DataBlock
from repro.storage.faults import ByzantineBehaviour, FaultPlan
from repro.storage.sim.network import Message, Network
from repro.storage.sim.node import SimNode
from repro.storage.version_history import GuidCommitEngine, VersionRecord

#: How long an update instance may sit idle before the member abandons it.
DEFAULT_ABANDON_TIMEOUT = 30.0
#: How often members sweep for stalled instances.
ABANDON_SWEEP_INTERVAL = 10.0


class StorageNode(SimNode):
    """A peer-set member of the simulated ASA storage layer."""

    def __init__(
        self,
        node_id: str,
        network: Network,
        replication_factor: int,
        fault_plan: Optional[FaultPlan] = None,
        abandon_timeout: float = DEFAULT_ABANDON_TIMEOUT,
    ):
        super().__init__(node_id, network)
        self._r = replication_factor
        self._fault_plan = fault_plan or FaultPlan.correct()
        self._abandon_timeout = abandon_timeout

        #: pid hex -> stored block.
        self.blocks: dict[str, DataBlock] = {}
        #: guid hex -> commit engine.
        self._engines: dict[str, GuidCommitEngine] = {}
        #: guid hex -> peer set (learned from incoming messages).
        self._peer_sets: dict[str, list[str]] = {}
        #: guid hex -> update_id -> requesting client node id.
        self._update_clients: dict[str, dict[str, str]] = {}
        #: updates this (promiscuous) node already echoed.
        self._echoed: set[tuple[str, str]] = set()

        if self._fault_plan.crash_at is not None:
            self.sim.schedule(self._fault_plan.crash_at, self.crash)
        self.set_timer(ABANDON_SWEEP_INTERVAL, self._sweep_stalled)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def fault_plan(self) -> FaultPlan:
        """This node's configured faults."""
        return self._fault_plan

    @property
    def is_byzantine(self) -> bool:
        """Whether the node misbehaves while alive."""
        return self._fault_plan.is_byzantine

    def engine(self, guid_hex: str) -> Optional[GuidCommitEngine]:
        """The commit engine for a GUID, if this node has seen it."""
        return self._engines.get(guid_hex)

    def history(self, guid_hex: str) -> list[VersionRecord]:
        """This member's committed history for a GUID."""
        engine = self._engines.get(guid_hex)
        return list(engine.history) if engine else []

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        kind = message.kind
        if kind == "store_block":
            self._on_store_block(message)
        elif kind == "get_block":
            self._on_get_block(message)
        elif kind in ("update", "vote", "commit"):
            self._on_protocol(message)
        elif kind == "get_history":
            self._on_get_history(message)
        elif kind == "replica_probe":
            self._on_replica_probe(message)
        elif kind == "replicate_to":
            self._on_replicate_to(message)

    # ------------------------------------------------------------------
    # data storage service (paper §2.1)
    # ------------------------------------------------------------------

    def _on_store_block(self, message: Message) -> None:
        if self._fault_plan.behaviour is ByzantineBehaviour.SILENT:
            return
        data: bytes = message.payload["data"]
        block = DataBlock(data)
        self.blocks[block.pid.hex] = block
        self.send(
            message.source,
            "store_ack",
            pid=block.pid.hex,
            request_id=message.payload["request_id"],
        )

    def _on_get_block(self, message: Message) -> None:
        if self._fault_plan.behaviour is ByzantineBehaviour.SILENT:
            return
        pid_hex: str = message.payload["pid"]
        block = self.blocks.get(pid_hex)
        data: Optional[bytes] = block.data if block is not None else None
        corrupting = self._fault_plan.behaviour is ByzantineBehaviour.CORRUPT_DATA
        if data is not None and corrupting:
            data = _corrupt(data)
        self.send(
            message.source,
            "block_data",
            pid=pid_hex,
            data=data,
            request_id=message.payload["request_id"],
        )

    def _on_replica_probe(self, message: Message) -> None:
        """Maintenance cross-check: report the digest of a stored block."""
        if self._fault_plan.behaviour is ByzantineBehaviour.SILENT:
            return
        pid_hex: str = message.payload["pid"]
        block = self.blocks.get(pid_hex)
        digest = None
        if block is not None:
            data = block.data
            if self._fault_plan.behaviour is ByzantineBehaviour.CORRUPT_DATA:
                data = _corrupt(data)
            digest = DataBlock(data).pid.hex
        self.send(
            message.source,
            "replica_probe_ack",
            pid=pid_hex,
            digest=digest,
            request_id=message.payload["request_id"],
        )

    def _on_replicate_to(self, message: Message) -> None:
        """Maintenance asked this node to push a replica to another node."""
        pid_hex: str = message.payload["pid"]
        target: str = message.payload["target"]
        block = self.blocks.get(pid_hex)
        if block is None:
            return
        self.send(
            target, "store_block", data=block.data, request_id=f"repair:{pid_hex}"
        )

    # ------------------------------------------------------------------
    # version history service (paper §2.2)
    # ------------------------------------------------------------------

    def _on_protocol(self, message: Message) -> None:
        behaviour = self._fault_plan.behaviour
        if behaviour is ByzantineBehaviour.SILENT:
            return
        guid_hex: str = message.payload["guid"]
        update_id: str = message.payload["update_id"]
        pid_hex: Optional[str] = message.payload.get("pid")
        peers: Optional[list[str]] = message.payload.get("peers")
        if peers:
            self._peer_sets[guid_hex] = list(peers)
        if message.kind == "update":
            self._update_clients.setdefault(guid_hex, {})[update_id] = message.source

        if behaviour is ByzantineBehaviour.PROMISCUOUS_VOTER:
            # Byzantine: skip the FSM entirely, endorse everything once.
            if (guid_hex, update_id) not in self._echoed:
                self._echoed.add((guid_hex, update_id))
                self._broadcast_protocol(guid_hex, "vote", update_id, pid_hex)
                self._broadcast_protocol(guid_hex, "commit", update_id, pid_hex)
            return

        engine = self._engine_for(guid_hex)
        engine.handle(message.kind, update_id, pid_hex)

    def _engine_for(self, guid_hex: str) -> GuidCommitEngine:
        engine = self._engines.get(guid_hex)
        if engine is None:
            engine = GuidCommitEngine(
                self._r,
                send=lambda kind, update_id, g=guid_hex: self._broadcast_protocol(
                    g, kind, update_id, self._pid_for(g, update_id)
                ),
                now=lambda: self.sim.now,
                on_commit=lambda record, g=guid_hex: self._on_committed(g, record),
            )
            self._engines[guid_hex] = engine
        return engine

    def _pid_for(self, guid_hex: str, update_id: str) -> Optional[str]:
        engine = self._engines.get(guid_hex)
        if engine is None:
            return None
        instance = engine.instance(update_id)
        return instance.pid_hex if instance else None

    def _broadcast_protocol(
        self, guid_hex: str, kind: str, update_id: str, pid_hex: Optional[str]
    ) -> None:
        peers = self._peer_sets.get(guid_hex, [])
        self.broadcast(
            peers,
            kind,
            guid=guid_hex,
            update_id=update_id,
            pid=pid_hex,
            peers=peers,
        )

    def _on_committed(self, guid_hex: str, record: VersionRecord) -> None:
        """An update reached the finish state: notify the requesting client."""
        client = self._update_clients.get(guid_hex, {}).get(record.update_id)
        if client is not None:
            self.send(
                client,
                "committed",
                guid=guid_hex,
                update_id=record.update_id,
                pid=record.pid_hex,
            )

    def _on_get_history(self, message: Message) -> None:
        behaviour = self._fault_plan.behaviour
        if behaviour is ByzantineBehaviour.SILENT:
            return
        guid_hex: str = message.payload["guid"]
        history = [record.as_tuple() for record in self.history(guid_hex)]
        if behaviour is ByzantineBehaviour.LIE_HISTORY:
            history = [("forged-update", "f" * 40)]
        self.send(
            message.source,
            "history",
            guid=guid_hex,
            history=history,
            request_id=message.payload["request_id"],
        )

    # ------------------------------------------------------------------
    # background sweeping
    # ------------------------------------------------------------------

    def _sweep_stalled(self) -> None:
        for engine in self._engines.values():
            engine.abandon_stalled(self._abandon_timeout)
        self.set_timer(ABANDON_SWEEP_INTERVAL, self._sweep_stalled)


def _corrupt(data: bytes) -> bytes:
    """Flip the first byte (detected by hash verification)."""
    if not data:
        return b"\xff"
    return bytes([data[0] ^ 0xFF]) + data[1:]
