"""Cluster assembly: everything from Fig 1 wired together.

:class:`StorageCluster` builds the full simulated ASA stack — event kernel,
network, Chord ring with routing, storage nodes (with per-node fault
plans), service endpoints and the replica maintainer — so examples, tests
and benchmarks can write scenarios in a few lines::

    cluster = StorageCluster(node_count=12, replication_factor=4, seed=7)
    endpoint = cluster.add_endpoint("client-0")
    op = endpoint.store_block(DataBlock(b"hello"))
    cluster.run_until(lambda: op.done)
    assert op.success
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Optional

from repro.core.errors import SimulationError
from repro.storage.endpoint import RetryPolicy, ServerOrder, ServiceEndpoint
from repro.storage.faults import FaultPlan
from repro.storage.maintenance import ReplicaMaintainer
from repro.storage.node import StorageNode
from repro.storage.p2p.ring import ChordRing
from repro.storage.p2p.routing import Router
from repro.storage.sim.kernel import Simulator
from repro.storage.sim.network import LatencyModel, Network, UniformLatency


class StorageCluster:
    """A complete simulated deployment of the storage system."""

    def __init__(
        self,
        node_count: int,
        replication_factor: int,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        drop_probability: float = 0.0,
        fault_plans: Optional[Mapping[str, FaultPlan]] = None,
        abandon_timeout: float = 30.0,
    ):
        if node_count < replication_factor:
            raise SimulationError(
                f"need at least {replication_factor} nodes for replication "
                f"factor {replication_factor}, got {node_count}"
            )
        self.sim = Simulator(seed=seed)
        self.network = Network(
            self.sim,
            latency=latency or UniformLatency(0.5, 1.5),
            drop_probability=drop_probability,
        )
        self.ring = ChordRing()
        self.replication_factor = replication_factor
        self.nodes: dict[str, StorageNode] = {}
        self.endpoints: dict[str, ServiceEndpoint] = {}
        self.maintainer: Optional[ReplicaMaintainer] = None

        plans = dict(fault_plans or {})
        for index in range(node_count):
            node_id = f"node-{index:02d}"
            node = StorageNode(
                node_id,
                self.network,
                replication_factor,
                fault_plan=plans.get(node_id),
                abandon_timeout=abandon_timeout,
            )
            self.nodes[node_id] = node
            self.ring.join(node_id)
        self.router = Router(self.ring)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def add_endpoint(
        self,
        node_id: str,
        retry_policy: Optional[RetryPolicy] = None,
        server_order: ServerOrder = ServerOrder.RANDOM,
        request_timeout: float = 15.0,
        max_attempts: int = 8,
    ) -> ServiceEndpoint:
        """Attach a client endpoint to the cluster."""
        endpoint = ServiceEndpoint(
            node_id,
            self.network,
            self.ring,
            self.router,
            self.replication_factor,
            retry_policy=retry_policy,
            server_order=server_order,
            request_timeout=request_timeout,
            max_attempts=max_attempts,
        )
        self.endpoints[node_id] = endpoint
        return endpoint

    def add_maintainer(
        self, probe_interval: float = 50.0, probe_timeout: float = 10.0
    ) -> ReplicaMaintainer:
        """Attach the background replica maintenance process."""
        self.maintainer = ReplicaMaintainer(
            "maintainer",
            self.network,
            self.ring,
            self.replication_factor,
            probe_interval=probe_interval,
            probe_timeout=probe_timeout,
        )
        return self.maintainer

    # ------------------------------------------------------------------
    # churn (paper §2: nodes join and leave at arbitrary times)
    # ------------------------------------------------------------------

    def add_node(
        self, node_id: str, fault_plan: Optional[FaultPlan] = None
    ) -> StorageNode:
        """Join a new storage node to the ring and refresh routing state."""
        node = StorageNode(
            node_id, self.network, self.replication_factor, fault_plan=fault_plan
        )
        self.nodes[node_id] = node
        self.ring.join(node_id)
        self.router.stabilise()
        return node

    def remove_node(self, node_id: str) -> None:
        """Gracefully remove a node from the ring (its data stays local)."""
        self.ring.leave(node_id)
        self.router.stabilise()

    def rebalance(self) -> int:
        """Push replicas to the nodes now responsible for them.

        After churn the replica key set of a PID may resolve to different
        nodes; holders push copies to responsible nodes that lack them
        (the immediate form of the §2.2 background regeneration, which the
        :class:`~repro.storage.maintenance.ReplicaMaintainer` performs
        continuously).  Returns the number of transfers initiated; run the
        simulation afterwards to let them deliver.
        """
        from repro.storage.p2p.keys import parse_key, replica_keys

        transfers = 0
        for node in list(self.nodes.values()):
            if not node.alive:
                continue
            for pid_hex in list(node.blocks):
                owners = self.ring.responsible_nodes(
                    replica_keys(parse_key(pid_hex), self.replication_factor)
                )
                for owner in owners:
                    other = self.nodes.get(owner)
                    if other is None or owner == node.node_id:
                        continue
                    if pid_hex not in other.blocks:
                        node.send(
                            owner,
                            "store_block",
                            data=node.blocks[pid_hex].data,
                            request_id=f"rebalance:{pid_hex}",
                        )
                        transfers += 1
        return transfers

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def crash_node(self, node_id: str, remove_from_ring: bool = False) -> None:
        """Fail-stop a node; optionally remove it from the routing ring."""
        node = self.nodes[node_id]
        node.crash()
        if remove_from_ring:
            self.ring.leave(node_id)
            self.router.stabilise()

    def byzantine_nodes(self) -> list[str]:
        """Ids of nodes configured with Byzantine behaviour."""
        return [n.node_id for n in self.nodes.values() if n.is_byzantine]

    def correct_nodes(self) -> list[str]:
        """Ids of live, well-behaved nodes."""
        return [
            n.node_id
            for n in self.nodes.values()
            if n.alive and not n.is_byzantine
        ]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, duration: float) -> None:
        """Advance virtual time by ``duration``."""
        self.sim.run(until=self.sim.now + duration)

    def run_until(
        self, predicate: Callable[[], bool], timeout: float = 1_000.0
    ) -> bool:
        """Run until ``predicate()`` holds; returns whether it did."""
        return self.sim.run_until(predicate, timeout)

    # ------------------------------------------------------------------
    # cross-node assertions used by tests and benchmarks
    # ------------------------------------------------------------------

    def histories(self, guid_hex: str, correct_only: bool = True) -> dict[str, list]:
        """Committed histories per node for a GUID."""
        picked = self.correct_nodes() if correct_only else list(self.nodes)
        result = {}
        for node_id in picked:
            node = self.nodes[node_id]
            engine = node.engine(guid_hex)
            if engine is not None:
                result[node_id] = engine.history_tuples()
        return result

    def histories_prefix_consistent(self, guid_hex: str) -> bool:
        """Whether correct members' histories are pairwise prefix-ordered.

        This is the agreement property the commit protocol provides: all
        correct peer-set members record committed updates in one global
        order, differing only in how far each has advanced.
        """
        histories = list(self.histories(guid_hex).values())
        for i, left in enumerate(histories):
            for right in histories[i + 1:]:
                shorter, longer = sorted((left, right), key=len)
                if longer[: len(shorter)] != shorter:
                    return False
        return True
