"""Simulated ASA distributed storage substrate (paper §2).

Layered as in the paper's Fig 1: a discrete-event simulation kernel
(:mod:`repro.storage.sim`) carries a Chord-style key-based routing layer
(:mod:`repro.storage.p2p`), on which the generic storage layer provides the
data storage service (PID → immutable block, §2.1) and the version history
service (GUID → PID sequence, §2.2) whose commit protocol runs *generated*
FSM instances.  :class:`~repro.storage.cluster.StorageCluster` assembles a
complete deployment.
"""

from repro.storage.blocks import GUID, PID, DataBlock
from repro.storage.cluster import StorageCluster
from repro.storage.endpoint import (
    AppendOperation,
    ExponentialBackoff,
    FixedBackoff,
    HistoryOperation,
    RandomBackoff,
    RetrieveOperation,
    RetryPolicy,
    ServerOrder,
    ServiceEndpoint,
    StoreOperation,
    agree_on_history,
)
from repro.storage.faults import ByzantineBehaviour, FaultPlan
from repro.storage.filesystem import (
    DistributedFileSystem,
    FileSystemError,
    FileVersion,
)
from repro.storage.maintenance import MaintenanceStats, ReplicaMaintainer
from repro.storage.node import StorageNode
from repro.storage.version_history import (
    GuidCommitEngine,
    UpdateInstance,
    VersionRecord,
    commit_machine_for,
)

__all__ = [
    "AppendOperation",
    "ByzantineBehaviour",
    "DataBlock",
    "DistributedFileSystem",
    "FileSystemError",
    "FileVersion",
    "ExponentialBackoff",
    "FaultPlan",
    "FixedBackoff",
    "GUID",
    "GuidCommitEngine",
    "HistoryOperation",
    "MaintenanceStats",
    "PID",
    "RandomBackoff",
    "ReplicaMaintainer",
    "RetrieveOperation",
    "RetryPolicy",
    "ServerOrder",
    "ServiceEndpoint",
    "StorageCluster",
    "StorageNode",
    "StoreOperation",
    "UpdateInstance",
    "VersionRecord",
    "agree_on_history",
    "commit_machine_for",
]
