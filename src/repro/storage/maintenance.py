"""Replica maintenance: the background repair processes of paper §2.2.

"Background processes regenerate missing replicas and replace faulty
nodes ... Additional replicas need to be generated whenever the set of
nodes storing replicas of a given data item is temporarily reduced.  This
may occur due to fail-stop faults, which are straightforwardly detected
through timeouts, or due to the detection of malicious nodes ... using
periodic cross-checks between replica nodes."

:class:`ReplicaMaintainer` periodically probes the replica set of every
tracked PID: replicas that fail to answer (fail-stop) or answer with a
digest that does not match the PID (malicious corruption) are marked
suspect, and a healthy replica is asked to push a fresh copy to the
responsible node.  The ``f``-failure limit of the commit protocol applies
per protocol execution precisely because this process restores redundancy
between executions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.models.commit import fault_tolerance
from repro.storage.p2p.keys import parse_key, replica_keys
from repro.storage.p2p.ring import ChordRing
from repro.storage.sim.network import Message, Network
from repro.storage.sim.node import SimNode


@dataclass
class ProbeRound:
    """One sweep over a PID's replica set."""

    pid_hex: str
    request_id: str
    expected: list[str]
    responses: dict[str, str | None] = field(default_factory=dict)
    finished: bool = False


@dataclass
class MaintenanceStats:
    """Counters of maintenance activity."""

    probes_sent: int = 0
    missing_detected: int = 0
    corrupt_detected: int = 0
    repairs_requested: int = 0


class ReplicaMaintainer(SimNode):
    """Periodic cross-checking and re-replication process."""

    def __init__(
        self,
        node_id: str,
        network: Network,
        ring: ChordRing,
        replication_factor: int,
        probe_interval: float = 50.0,
        probe_timeout: float = 10.0,
    ):
        super().__init__(node_id, network)
        self._ring = ring
        self._r = replication_factor
        self._f = fault_tolerance(replication_factor)
        self._probe_interval = probe_interval
        self._probe_timeout = probe_timeout
        self._tracked: set[str] = set()
        self._rounds: dict[str, ProbeRound] = {}
        self._sequence = itertools.count(1)
        self.stats = MaintenanceStats()
        self.suspected: set[str] = set()
        self.set_timer(self._probe_interval, self._sweep)

    def track(self, pid_hex: str) -> None:
        """Start maintaining the replica set of a PID."""
        self._tracked.add(pid_hex)

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------

    def _replicas_for(self, pid_hex: str) -> list[str]:
        return self._ring.responsible_nodes(replica_keys(parse_key(pid_hex), self._r))

    def _sweep(self) -> None:
        for pid_hex in sorted(self._tracked):
            self._probe(pid_hex)
        self.set_timer(self._probe_interval, self._sweep)

    def _probe(self, pid_hex: str) -> None:
        request_id = f"probe:{self.node_id}:{next(self._sequence)}"
        replicas = self._replicas_for(pid_hex)
        probe = ProbeRound(pid_hex=pid_hex, request_id=request_id, expected=replicas)
        self._rounds[request_id] = probe
        for replica in replicas:
            self.stats.probes_sent += 1
            self.send(replica, "replica_probe", pid=pid_hex, request_id=request_id)
        self.set_timer(self._probe_timeout, lambda: self._evaluate(probe))

    def on_message(self, message: Message) -> None:
        if message.kind != "replica_probe_ack":
            return
        probe = self._rounds.get(message.payload["request_id"])
        if probe is None or probe.finished:
            return
        probe.responses[message.source] = message.payload["digest"]
        if len(probe.responses) == len(probe.expected):
            self._evaluate(probe)

    # ------------------------------------------------------------------
    # evaluation and repair
    # ------------------------------------------------------------------

    def _evaluate(self, probe: ProbeRound) -> None:
        if probe.finished:
            return
        probe.finished = True
        healthy: list[str] = []
        broken: list[str] = []
        for replica in probe.expected:
            digest = probe.responses.get(replica)
            if digest == probe.pid_hex:
                healthy.append(replica)
                continue
            broken.append(replica)
            if replica not in probe.responses or digest is None:
                self.stats.missing_detected += 1
            else:
                self.stats.corrupt_detected += 1
                self.suspected.add(replica)
        if not healthy:
            return  # nothing to repair from; the data is lost
        for replica in broken:
            source = healthy[0]
            self.stats.repairs_requested += 1
            self.send(source, "replicate_to", pid=probe.pid_hex, target=replica)
