"""The telemetry context a serve-plane engine feeds.

:class:`FleetTelemetry` bundles the pieces one instrumented fleet (and
any scenario engine fronting it) shares: a
:class:`~repro.obs.metrics.MetricsRegistry` holding the standard
instruments, and an optional :class:`~repro.obs.trace.TraceLog` for
event tracing.  ``FleetEngine(telemetry=FleetTelemetry())`` switches
instrumentation on; the default ``telemetry=None`` keeps every hot path
exactly as fast as before — all engine-side telemetry code is behind one
``is not None`` check.

The standard instruments:

``fleet_queue_latency_seconds``
    Per-event time from :meth:`~repro.serve.fleet.FleetEngine.post` to
    the drain that dispatched the event (mailbox wait).  Only posted
    traffic has a queue; direct arrival batches (``run``
    on unbounded fleets) never wait and are not observed here.
``fleet_batch_seconds`` / ``fleet_batch_events``
    Per-batch dispatch wall time and batch size — two clock reads and
    two histogram observations per *batch*, which is what keeps full
    telemetry affordable on the encoded path (the per-event loop is
    untouched).
``fleet_batches_total`` / ``fleet_events_total``
    Totals of the above, so exposition can report service rate without
    reaching into :class:`~repro.serve.metrics.FleetMetrics`.

Sharding/merging: give each worker engine its own ``FleetTelemetry`` and
fold them together with ``combined.registry.merge(worker.registry)`` —
the histograms share one layout, so the merge is exact.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import DEFAULT_CAPACITY, TraceLog

__all__ = ["FleetTelemetry"]


class FleetTelemetry:
    """Registry + optional trace log + the instruments the fleet feeds."""

    __slots__ = (
        "registry",
        "trace",
        "queue_latency",
        "batch_seconds",
        "batch_events",
        "batches",
        "events",
    )

    def __init__(
        self,
        *,
        registry: Optional[MetricsRegistry] = None,
        tracing: bool = True,
        trace_capacity: int = DEFAULT_CAPACITY,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace: Optional[TraceLog] = (
            TraceLog(trace_capacity) if tracing else None
        )
        self.queue_latency = self.registry.histogram(
            "fleet_queue_latency_seconds",
            "per-event mailbox wait: post() to the drain that dispatched it",
        )
        self.batch_seconds = self.registry.histogram(
            "fleet_batch_seconds",
            "wall time of one batch dispatch pass",
        )
        self.batch_events = self.registry.histogram(
            "fleet_batch_events",
            "events dispatched per batch",
            lo=1.0,
            hi=1_048_576.0,
            factor=4.0,
        )
        self.batches = self.registry.counter(
            "fleet_batches_total", "batch dispatch passes observed"
        )
        self.events = self.registry.counter(
            "fleet_events_total", "events dispatched through observed batches"
        )

    def observe_batch(self, events: int, seconds: float) -> None:
        """Record one dispatch pass: O(1) regardless of batch size."""
        self.batch_seconds.observe(seconds)
        self.batch_events.observe(events)
        self.batches.add(1)
        self.events.add(events)

    def as_dict(self) -> dict:
        """Registry contents plus trace-log occupancy (artifact form)."""
        out = self.registry.as_dict()
        if self.trace is not None:
            out["trace"] = {
                "records": len(self.trace),
                "dropped": self.trace.dropped,
                "next_id": self.trace.next_id,
            }
        return out
