"""Counters, gauges and log-scaled latency histograms behind one registry.

The serve stack's quantitative surface (:class:`~repro.serve.metrics.FleetMetrics`,
:class:`~repro.serve.scenario.ScenarioMetrics`) is plain dataclass counters —
perfect for batch-granular accounting, useless for *distributions*: a
throughput claim without p50/p95/p99 says nothing about tail behaviour, and
the tail is where saturation shows first.  This module adds the missing
primitives, deliberately Prometheus-shaped so the exposition layer
(:mod:`repro.obs.expo`) renders them in the standard text format:

* :class:`Counter` — a monotone count (``add``);
* :class:`Gauge` — a last-observation value (``set``);
* :class:`LatencyHistogram` — a **fixed array of log-scaled buckets**
  (geometric bounds ``lo, lo*factor, lo*factor^2, ... >= hi`` plus one
  overflow bucket).  Observation is one :func:`bisect.bisect_left` and two
  integer adds — cheap enough to observe per batch on the hot serve path —
  and the fixed layout makes histograms *mergeable*: shards, worker
  engines and repeated runs combine by elementwise bucket addition.
  ``quantile(q)`` reads percentiles back with a worst-case error of one
  bucket width (it reports the upper edge of the quantile bucket), which
  is the precision contract benchmarks assert against.
* :class:`MetricsRegistry` — named instruments with get-or-create
  accessors, whole-registry :meth:`~MetricsRegistry.merge` (disjoint
  registries union; shared names combine per instrument kind) and a plain
  ``as_dict()`` for JSON artifacts.

Nothing here reads the clock or touches the serve plane: callers observe
values they measured themselves, so the instruments stay usable from the
fleet engine, the scenario wheel, the load harness and the benchmarks
alike.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional

__all__ = ["Counter", "Gauge", "LatencyHistogram", "MetricsRegistry"]

#: Default bucket layout for second-valued latencies: 100ns to ~100s in
#: factor-2 steps (31 bounds + overflow).  Wide enough for both a 10M ev/s
#: dispatch loop's per-event service time and a saturated queue's backlog.
DEFAULT_LO = 1e-7
DEFAULT_HI = 100.0
DEFAULT_FACTOR = 2.0


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):  # noqa: A002 - prom naming
        self.name = name
        self.help = help
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        self.value += amount


class Gauge:
    """A value that reflects the most recent observation."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):  # noqa: A002
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


def _geometric_bounds(lo: float, hi: float, factor: float) -> tuple[float, ...]:
    if lo <= 0 or hi <= lo:
        raise ValueError(f"histogram needs 0 < lo < hi, got lo={lo}, hi={hi}")
    if factor <= 1.0:
        raise ValueError(f"histogram bucket factor must be > 1, got {factor}")
    bounds = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * factor)
    return tuple(bounds)


class LatencyHistogram:
    """Fixed log-scaled buckets; mergeable; quantiles within one bucket.

    Bucket *i* counts observations ``v <= bounds[i]`` (and, for ``i > 0``,
    ``v > bounds[i-1]``); one extra overflow bucket counts ``v >
    bounds[-1]`` and renders as ``+Inf``.  The bounds are a geometric
    series fixed at construction, so two histograms with the same layout
    merge by adding their count arrays — no rebucketing, no precision
    loss beyond the layout itself.
    """

    __slots__ = ("name", "help", "bounds", "counts", "count", "total")

    def __init__(
        self,
        name: str,
        help: str = "",  # noqa: A002
        *,
        lo: float = DEFAULT_LO,
        hi: float = DEFAULT_HI,
        factor: float = DEFAULT_FACTOR,
    ):
        self.name = name
        self.help = help
        self.bounds: tuple[float, ...] = _geometric_bounds(lo, hi, factor)
        self.counts: list[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (negative values clamp into the first bucket)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def observe_count(self, value: float, n: int) -> None:
        """Record ``n`` observations of the same value in O(1).

        The batch-granular form the fleet uses for queue latency: every
        event drained in one batch shares the drain instant, so one
        bucket increment covers the whole batch.
        """
        if n <= 0:
            return
        self.counts[bisect_left(self.bounds, value)] += n
        self.count += n
        self.total += value * n

    def quantile(self, q: float) -> float:
        """The ``q``-quantile, accurate to one bucket width.

        Returns the upper edge of the bucket holding the quantile rank
        (``inf`` when it falls in the overflow bucket, ``0.0`` when the
        histogram is empty), so the result is monotone in ``q`` and never
        below the true quantile by more than one bucket width.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1.0, q * self.count)
        cum = 0
        for i, bucket in enumerate(self.counts):
            cum += bucket
            if cum >= rank:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")  # pragma: no cover - cum == count ends the loop

    def bucket_bounds(self, value: float) -> tuple[float, float]:
        """The ``(lower, upper)`` edges of the bucket holding ``value``.

        The upper edge of the overflow bucket is ``inf``; the lower edge
        of the first bucket is ``0.0``.  ``upper - lower`` is the "one
        bucket width" tolerance benchmarks assert quantiles within.
        """
        i = bisect_left(self.bounds, value)
        lower = self.bounds[i - 1] if i > 0 else 0.0
        upper = self.bounds[i] if i < len(self.bounds) else float("inf")
        return lower, upper

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencyHistogram") -> None:
        """Add another histogram's observations into this one."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r} into {self.name!r}: "
                f"bucket layouts differ ({len(other.bounds)} vs "
                f"{len(self.bounds)} bounds)"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total

    def copy(self) -> "LatencyHistogram":
        """An independent histogram with the same layout and contents."""
        clone = LatencyHistogram.__new__(LatencyHistogram)
        clone.name = self.name
        clone.help = self.help
        clone.bounds = self.bounds
        clone.counts = list(self.counts)
        clone.count = self.count
        clone.total = self.total
        return clone

    def as_dict(self) -> dict:
        """JSON-safe summary: count, sum, headline quantiles, sparse buckets.

        Only non-empty buckets are listed (as ``[upper_bound, count]``
        pairs; the overflow bucket's bound is ``None``) — a fresh
        histogram serialises to a few bytes, not its whole layout.
        """
        buckets = [
            [self.bounds[i] if i < len(self.bounds) else None, n]
            for i, n in enumerate(self.counts)
            if n
        ]
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": buckets,
        }


class MetricsRegistry:
    """Named counters, gauges and histograms with get-or-create access."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, LatencyHistogram] = {}

    def _check_free(self, name: str, kind: dict) -> None:
        for family in (self.counters, self.gauges, self.histograms):
            if family is not kind and name in family:
                raise ValueError(
                    f"metric {name!r} already registered with a different type"
                )

    def counter(self, name: str, help: str = "") -> Counter:  # noqa: A002
        instrument = self.counters.get(name)
        if instrument is None:
            self._check_free(name, self.counters)
            instrument = self.counters[name] = Counter(name, help)
        return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:  # noqa: A002
        instrument = self.gauges.get(name)
        if instrument is None:
            self._check_free(name, self.gauges)
            instrument = self.gauges[name] = Gauge(name, help)
        return instrument

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        *,
        lo: float = DEFAULT_LO,
        hi: float = DEFAULT_HI,
        factor: float = DEFAULT_FACTOR,
    ) -> LatencyHistogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            self._check_free(name, self.histograms)
            instrument = self.histograms[name] = LatencyHistogram(
                name, help, lo=lo, hi=hi, factor=factor
            )
        return instrument

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: the shard/engine aggregation step.

        Counters add, gauges take the other registry's (newer)
        observation, histograms merge bucket-wise; instruments present
        only in ``other`` are copied in, so merging disjoint registries
        is a pure union.
        """
        for name, counter in other.counters.items():
            self.counter(name, counter.help).add(counter.value)
        for name, gauge in other.gauges.items():
            self.gauge(name, gauge.help).set(gauge.value)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self._check_free(name, self.histograms)
                self.histograms[name] = hist.copy()
            else:
                mine.merge(hist)

    def as_dict(self) -> dict:
        """All instruments as one JSON-safe dict (the artifact form)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self.histograms.items())
            },
        }

    def get(self, name: str) -> Optional[object]:
        """The instrument registered under ``name``, whatever its kind."""
        return (
            self.counters.get(name)
            or self.gauges.get(name)
            or self.histograms.get(name)
        )
