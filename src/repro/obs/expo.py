"""Exposition: render a metrics registry as Prometheus text or JSON.

One registry, two audiences.  :func:`render_prometheus` emits the
Prometheus text exposition format (``# TYPE``/``# HELP`` headers,
cumulative ``_bucket{le="..."}`` series, ``_sum``/``_count``) so the
output of ``serve-watch`` / ``--metrics prom`` can be scraped or pasted
into any Prometheus-aware tool; :func:`render_json` emits the same
registry as the JSON object embedded in bench artifacts.

The builders assemble the registry for a given engine:
:func:`fleet_registry` folds a fleet's always-on
:class:`~repro.serve.metrics.FleetMetrics` counters together with its
optional :class:`~repro.obs.telemetry.FleetTelemetry` histograms;
:func:`scenario_registry` adds the scenario engine's
:class:`~repro.serve.scenario.ScenarioMetrics` on top, producing the one
merged blob ``serve-scenario`` emits.  Both duck-type their engine
argument (anything with a ``metrics.as_dict()``), so this module never
imports the serve plane.
"""

from __future__ import annotations

import json

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "render_prometheus",
    "render_json",
    "fleet_registry",
    "scenario_registry",
    "telemetry_sample",
]


def _format_value(value: float) -> str:
    """A float in Prometheus text form (integral values without the dot)."""
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, counter in sorted(registry.counters.items()):
        if counter.help:
            lines.append(f"# HELP {name} {counter.help}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(counter.value)}")
    for name, gauge in sorted(registry.gauges.items()):
        if gauge.help:
            lines.append(f"# HELP {name} {gauge.help}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(gauge.value)}")
    for name, hist in sorted(registry.histograms.items()):
        if hist.help:
            lines.append(f"# HELP {name} {hist.help}")
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            lines.append(
                f'{name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        cumulative += hist.counts[-1]
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {repr(hist.total)}")
        lines.append(f"{name}_count {hist.count}")
    return "\n".join(lines) + "\n"


def render_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """The registry as a JSON document (the bench-artifact form)."""
    return json.dumps(registry.as_dict(), indent=indent)


def fleet_registry(fleet) -> MetricsRegistry:
    """One registry covering a fleet: FleetMetrics + telemetry instruments.

    The fleet's dataclass counters become ``fleet_*_total`` counters
    (and its depth observations ``fleet_shard_depth_*`` gauges); when
    the fleet is instrumented, its telemetry histograms and counters are
    merged in unchanged — preferring the protocol-level
    ``telemetry_registry()`` accessor (a multiprocess fleet folds every
    worker's registry there), falling back to a ``telemetry`` attribute
    for duck-typed callers.
    """
    registry = MetricsRegistry()
    getter = getattr(fleet, "telemetry_registry", None)
    if callable(getter):
        worker_registry = getter()
        if worker_registry is not None:
            registry.merge(worker_registry)
    else:
        telemetry = getattr(fleet, "telemetry", None)
        if telemetry is not None:
            registry.merge(telemetry.registry)
    snapshot = fleet.metrics.as_dict()
    depths = snapshot.pop("shard_depths", [])
    peak = snapshot.pop("peak_shard_depth", 0)
    for name, value in snapshot.items():
        registry.counter(f"fleet_{name}_total").add(int(value))
    registry.gauge(
        "fleet_shard_depth_max", "deepest mailbox at its last drain"
    ).set(max(depths, default=0))
    registry.gauge(
        "fleet_shard_depth_peak", "deepest mailbox ever observed"
    ).set(peak)
    return registry


def scenario_registry(engine) -> MetricsRegistry:
    """One merged registry for a scenario run: scenario + fleet + telemetry."""
    registry = fleet_registry(engine.fleet)
    for name, value in engine.metrics.as_dict().items():
        registry.counter(f"scenario_{name}_total").add(int(value))
    return registry


def telemetry_sample(fleet) -> dict:
    """The ``metrics`` section bench artifacts embed: one JSON-safe dict."""
    out = fleet_registry(fleet).as_dict()
    telemetry = getattr(fleet, "telemetry", None)
    if telemetry is not None and telemetry.trace is not None:
        out["trace"] = {
            "records": len(telemetry.trace),
            "dropped": telemetry.trace.dropped,
            "next_id": telemetry.trace.next_id,
        }
    return out
