"""Telemetry plane: metrics, tracing and exposition for the serve stack.

The observability counterpart to the fleet/scenario planes — see
:mod:`repro.obs.metrics` (counters, gauges, mergeable log-scaled latency
histograms), :mod:`repro.obs.trace` (per-event trace ids, ring-buffer
trace log, causal reconstruction), :mod:`repro.obs.telemetry` (the
per-engine bundle ``FleetEngine(telemetry=...)`` feeds) and
:mod:`repro.obs.expo` (Prometheus-text and JSON renderers).
"""

from repro.obs.expo import (
    fleet_registry,
    render_json,
    render_prometheus,
    scenario_registry,
    telemetry_sample,
)
from repro.obs.metrics import Counter, Gauge, LatencyHistogram, MetricsRegistry
from repro.obs.telemetry import FleetTelemetry
from repro.obs.trace import TraceLog, TraceRecord

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "FleetTelemetry",
    "TraceLog",
    "TraceRecord",
    "fleet_registry",
    "render_json",
    "render_prometheus",
    "scenario_registry",
    "telemetry_sample",
]
