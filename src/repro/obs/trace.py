"""Structured event tracing: trace ids, a ring buffer, and reconstruction.

Aggregate metrics answer "how fast"; they cannot answer "what happened
to *this* message".  An event posted into the fleet may be delayed on a
scenario wheel, duplicated by a fault plan, fanned out to routed peers,
or dropped — and each of those decisions happens in a different module.
The tracing layer stitches them back together:

* a **trace id** is minted when an event enters the system
  (``FleetEngine.post`` / ``encode`` / ``ScenarioEngine.schedule_events``)
  and carried alongside the event through every hand-off;
* derived events (a routed copy, a fault duplicate, a timer fired by a
  state entered via some delivery) record the originating event's id as
  their ``parent_id``, forming a causal tree;
* every decision appends a :class:`TraceRecord` to a bounded
  :class:`TraceLog` ring buffer — old records fall off the front, so a
  long soak run keeps a fixed memory footprint and ``dropped`` counts
  what aged out;
* :meth:`TraceLog.trace_event` reconstructs one event's full causal
  path: the connected component of parent/child links reachable from a
  trace id, in arrival order.

Records are deliberately flat (no nesting, interned strings only) so the
ring buffer costs one small tuple-like object per decision and the whole
log serialises straight into a bench artifact.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["TraceRecord", "TraceLog"]

#: Default ring capacity: enough for a full scenario run at CI scale
#: while keeping a soak run's footprint bounded (~a few MB).
DEFAULT_CAPACITY = 65_536


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced decision about one event.

    ``kind`` is a small vocabulary shared by the fleet and scenario
    planes — e.g. ``post``, ``deliver``, ``schedule``, ``route``,
    ``timer_arm``, ``timer_fire``, ``fault_drop``, ``fault_dup``,
    ``fault_delay``, ``kill``, ``restore``, ``encode``.
    """

    seq: int  #: global append order, monotone even across ring eviction
    trace_id: int  #: the event this record is about
    parent_id: Optional[int]  #: causal parent event, if derived
    time: float  #: clock value at the decision (virtual or wall)
    kind: str  #: decision vocabulary, see class docstring
    key: Optional[str] = None  #: instance key involved, when known
    message: Optional[str] = None  #: message name involved, when known
    detail: Optional[str] = None  #: free-form qualifier (rule, shard, ...)

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "time": self.time,
            "kind": self.kind,
            "key": self.key,
            "message": self.message,
            "detail": self.detail,
        }


class TraceLog:
    """A bounded ring buffer of :class:`TraceRecord`\\ s plus the id mint.

    The log owns trace-id allocation (:meth:`mint` / :meth:`mint_range`)
    so ids are unique per telemetry context and replayable: restoring a
    snapshot restores ``next_id`` and the replay mints the same ids.
    """

    __slots__ = ("capacity", "next_id", "dropped", "_records", "_seq")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"trace log capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.next_id = 1
        self.dropped = 0
        self._records: deque[TraceRecord] = deque(maxlen=capacity)
        self._seq = 0

    def mint(self) -> int:
        """Allocate one fresh trace id."""
        tid = self.next_id
        self.next_id += 1
        return tid

    def mint_range(self, n: int) -> range:
        """Allocate ``n`` consecutive trace ids in O(1).

        The bulk form ``FleetEngine.encode`` uses: a pre-encoded
        schedule gets one contiguous id block instead of one mint call
        per event, keeping the encoded path's telemetry cost constant.
        """
        start = self.next_id
        self.next_id += n
        return range(start, start + n)

    def record(
        self,
        trace_id: int,
        time: float,
        kind: str,
        *,
        parent_id: Optional[int] = None,
        key: Optional[str] = None,
        message: Optional[str] = None,
        detail: Optional[str] = None,
    ) -> None:
        """Append one decision record (evicting the oldest when full)."""
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._seq += 1
        self._records.append(
            TraceRecord(self._seq, trace_id, parent_id, time, kind, key, message, detail)
        )

    def records(self) -> tuple[TraceRecord, ...]:
        """All retained records, oldest first."""
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def trace_event(self, trace_id: int) -> tuple[TraceRecord, ...]:
        """One event's full causal path, in append order.

        Returns every retained record belonging to the connected
        component of parent/child links containing ``trace_id`` — the
        original post, any routed or duplicated copies, timers it
        caused, and fault decisions about any of them.  Records that
        already aged out of the ring are simply absent.
        """
        # Union the component iteratively: parent links may be seen in
        # either direction depending on eviction, so alternate sweeps
        # until the member set stops growing (component diameters are
        # tiny — one original plus its derived copies).
        members = {trace_id}
        grew = True
        while grew:
            grew = False
            for rec in self._records:
                if rec.trace_id in members:
                    if rec.parent_id is not None and rec.parent_id not in members:
                        members.add(rec.parent_id)
                        grew = True
                elif rec.parent_id is not None and rec.parent_id in members:
                    members.add(rec.trace_id)
                    grew = True
        return tuple(rec for rec in self._records if rec.trace_id in members)

    def kinds(self, trace_id: int) -> tuple[str, ...]:
        """The ``kind`` sequence of one event's causal path (test helper)."""
        return tuple(rec.kind for rec in self.trace_event(trace_id))

    def clear(self) -> None:
        """Drop all records (id allocation continues monotonically)."""
        self._records.clear()
        self.dropped = 0

    def as_dicts(self) -> list[dict]:
        """All retained records as JSON-safe dicts (artifact form)."""
        return [rec.as_dict() for rec in self._records]

    @staticmethod
    def merge_components(logs: Iterable["TraceLog"], trace_id: int) -> tuple:
        """One event's path across several logs, in (time, seq) order."""
        merged: list[TraceRecord] = []
        for log in logs:
            merged.extend(log.trace_event(trace_id))
        return tuple(sorted(merged, key=lambda rec: (rec.time, rec.seq)))
