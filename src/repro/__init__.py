"""repro — generative state-machine toolchain.

A reproduction of *"Design, Implementation and Deployment of State Machines
Using a Generative Approach"* (Kirby, Dearle & Norcross, DSN 2007): a
framework for designing a distributed algorithm as a family of finite state
machines generated from a single abstract model, together with renderers
(text, diagrams, source code), a deployment runtime, and a simulated
distributed storage substrate exercising the paper's Byzantine-fault-
tolerant commit protocol.

Quickstart::

    from repro.models.commit import CommitModel
    from repro.render.text import TextRenderer

    machine = CommitModel(replication_factor=4).generate_state_machine()
    print(len(machine))                      # 33 states (paper Table 1)
    print(TextRenderer().render(machine))    # Fig 14-style description

Two generation engines produce identical machines: the eager four-step
pipeline (:func:`repro.generate`, paper §3.4) and the lazy frontier-based
engine (:func:`repro.generate_lazy`), which expands only reachable states
and scales to parameter values the eager engine cannot touch.  Select one
per call with ``generate_state_machine(engine="lazy")`` or on the command
line with ``python -m repro.cli generate --engine lazy``.

For serving a *population* of machine instances — sharded by session key
with batched dispatch, backpressure and snapshot/restore — see
:class:`repro.FleetEngine` (the fleet execution plane,
:mod:`repro.serve`).

Hierarchical designs (nested regions, inherited transitions, entry/exit
actions) are authored with :class:`repro.HierarchicalModel`
(:mod:`repro.core.hsm`) and flattened — eagerly or lazily — into plain
machines that run unchanged on every backend and on the fleet;
:class:`repro.HierarchicalSimulator` executes the hierarchy directly for
differential verification.
"""

from repro.core import (
    AbstractModel,
    BooleanComponent,
    CompositeState,
    ENGINES,
    EnumComponent,
    FlattenReport,
    GenerationReport,
    HierarchicalModel,
    HierarchicalSimulator,
    IntComponent,
    InvalidStateError,
    State,
    StateMachine,
    StateSpace,
    Transition,
    TransitionBuilder,
    generate,
    generate_lazy,
    generate_with_engine,
)
from repro.opt import (
    IndexedMachine,
    PassPipeline,
    PassReport,
    standard_pipeline,
)
from repro.serve import Fleet, FleetEngine, MultiprocessFleet, make_fleet

__version__ = "1.0.0"

__all__ = [
    "AbstractModel",
    "BooleanComponent",
    "CompositeState",
    "ENGINES",
    "EnumComponent",
    "Fleet",
    "FleetEngine",
    "MultiprocessFleet",
    "make_fleet",
    "FlattenReport",
    "GenerationReport",
    "HierarchicalModel",
    "HierarchicalSimulator",
    "IndexedMachine",
    "IntComponent",
    "InvalidStateError",
    "PassPipeline",
    "PassReport",
    "State",
    "StateMachine",
    "StateSpace",
    "Transition",
    "TransitionBuilder",
    "__version__",
    "generate",
    "generate_lazy",
    "generate_with_engine",
    "standard_pipeline",
]
