"""repro — generative state-machine toolchain.

A reproduction of *"Design, Implementation and Deployment of State Machines
Using a Generative Approach"* (Kirby, Dearle & Norcross, DSN 2007): a
framework for designing a distributed algorithm as a family of finite state
machines generated from a single abstract model, together with renderers
(text, diagrams, source code), a deployment runtime, and a simulated
distributed storage substrate exercising the paper's Byzantine-fault-
tolerant commit protocol.

Quickstart::

    from repro.models.commit import CommitModel
    from repro.render.text import TextRenderer

    machine = CommitModel(replication_factor=4).generate_state_machine()
    print(len(machine))                      # 33 states (paper Table 1)
    print(TextRenderer().render(machine))    # Fig 14-style description
"""

from repro.core import (
    AbstractModel,
    BooleanComponent,
    EnumComponent,
    GenerationReport,
    IntComponent,
    InvalidStateError,
    State,
    StateMachine,
    StateSpace,
    Transition,
    TransitionBuilder,
    generate,
)

__version__ = "1.0.0"

__all__ = [
    "AbstractModel",
    "BooleanComponent",
    "EnumComponent",
    "GenerationReport",
    "IntComponent",
    "InvalidStateError",
    "State",
    "StateMachine",
    "StateSpace",
    "Transition",
    "TransitionBuilder",
    "__version__",
    "generate",
]
