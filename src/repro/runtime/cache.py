"""Cache of generated implementations, keyed by generation parameters.

Paper §4.2: "Other variants on generation policy include ... caching
generated implementations to avoid the need for regeneration of versions
that have been encountered previously."  :class:`GeneratedCodeCache` is a
small LRU keyed by hashable parameter tuples, with hit/miss statistics so
benchmarks can report amortisation.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Hashable
from dataclasses import dataclass
from typing import Any


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for a :class:`GeneratedCodeCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


def canonical_parameter_key(value: Any) -> Hashable:
    """A stable, hashable key for an arbitrary parameter structure.

    Machine ``parameters`` dicts are free-form: nested dicts, lists, sets
    and even unhashable user objects all occur (hierarchical models carry
    structured tuning blobs).  A cache key must be hashable and must not
    depend on dict insertion order, so containers are recursively frozen
    — dicts and sets sorted into canonical order — and anything
    unrecognised degrades to its type name and ``repr``.  Each container
    kind is tagged so, e.g., a list and a set of the same elements do not
    collide.
    """
    if isinstance(value, dict):
        items = tuple(
            sorted(
                (
                    (canonical_parameter_key(k), canonical_parameter_key(v))
                    for k, v in value.items()
                ),
                key=repr,
            )
        )
        return ("dict", items)
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(canonical_parameter_key(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return (
            "set",
            tuple(sorted((canonical_parameter_key(v) for v in value), key=repr)),
        )
    if isinstance(value, (str, int, float, bool, bytes, type(None))):
        return value
    return ("repr", type(value).__name__, repr(value))


class GeneratedCodeCache:
    """LRU cache mapping parameter keys to generated artefacts.

    ``max_entries=None`` makes the cache unbounded — the right choice for
    long-running deployments such as the fleet execution plane
    (:mod:`repro.serve`), where the set of distinct machine parameters is
    small and an eviction would force a pointless regeneration.
    """

    def __init__(self, max_entries: int | None = 32):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries}")
        self._max_entries = max_entries
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get_or_generate(self, key: Hashable, producer: Callable[[], Any]) -> Any:
        """Return the cached artefact for ``key``, generating it on miss."""
        if key in self._entries:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.stats.misses += 1
        artefact = producer()
        self._entries[key] = artefact
        if self._max_entries is not None and len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return artefact

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was present."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss/eviction statistics."""
        self._entries.clear()
        self.stats = CacheStats()
