"""Deployment runtime for generated machines (paper §4.2–4.3).

* :mod:`repro.runtime.compile` — render + compile + load generated source
  in memory (the Python analogue of the paper's Java 6 compiler binding);
* :mod:`repro.runtime.interp` — interpret a machine representation directly;
* :mod:`repro.runtime.actions` — generic action base classes bound into
  generated classes;
* :mod:`repro.runtime.policy` / :mod:`repro.runtime.cache` — when to
  generate: once, per use, or on demand with caching.
"""

from repro.runtime.actions import CallbackActions, RecordingActions
from repro.runtime.cache import CacheStats, GeneratedCodeCache
from repro.runtime.compile import (
    ACTION_BASE_NAME,
    CompiledEfsm,
    CompiledMachine,
    compile_efsm,
    compile_machine,
    load_machine_class,
)
from repro.runtime.export import (
    export_machine_module,
    import_machine_module,
    is_stale,
    machine_fingerprint,
)
from repro.runtime.interp import MachineInterpreter
from repro.runtime.policy import GenerationPolicy, MachineFactory

__all__ = [
    "ACTION_BASE_NAME",
    "CacheStats",
    "CallbackActions",
    "CompiledEfsm",
    "CompiledMachine",
    "GeneratedCodeCache",
    "GenerationPolicy",
    "MachineFactory",
    "MachineInterpreter",
    "RecordingActions",
    "compile_efsm",
    "compile_machine",
    "export_machine_module",
    "import_machine_module",
    "is_stale",
    "machine_fingerprint",
    "load_machine_class",
]
