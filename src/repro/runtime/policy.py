"""Generation policies: when to run the generator (paper §4.2).

The paper identifies a spectrum of choices for when to generate an
implementation of a FSM solution:

* once, during initial development (``ONCE`` — the ASA deployment choice,
  since the replication factor rarely changes);
* every time the algorithm needs to be executed (``PER_USE``);
* whenever a new parameter value is encountered (``ON_DEMAND`` — dynamic
  generation with caching).

:class:`MachineFactory` wraps an abstract-model constructor with one of
these policies and hands out ready-to-instantiate generated classes.

Orthogonal to *when* to generate is *how*: the factory's ``engine``
selects the eager four-step pipeline or the lazy frontier-based engine
(:mod:`repro.core.lazy`).  ``ON_DEMAND`` + ``"lazy"`` is the
production-scale point of the spectrum — generation cost is paid on first
encounter of a parameter value and is proportional to the reachable state
count rather than the full product space.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from typing import Any

from repro.core.errors import DeploymentError
from repro.core.model import AbstractModel
from repro.core.pipeline import ENGINES
from repro.runtime.actions import RecordingActions
from repro.runtime.cache import GeneratedCodeCache
from repro.runtime.compile import CompiledMachine, compile_machine


class GenerationPolicy(enum.Enum):
    """When generation happens relative to use."""

    ONCE = "once"
    PER_USE = "per_use"
    ON_DEMAND = "on_demand"


class MachineFactory:
    """Produces compiled machine classes for parameter values under a policy.

    ``model_factory`` maps keyword parameters to an
    :class:`~repro.core.model.AbstractModel`
    (e.g. ``lambda replication_factor: CommitModel(replication_factor)``).
    """

    def __init__(
        self,
        model_factory: Callable[..., AbstractModel],
        policy: GenerationPolicy = GenerationPolicy.ON_DEMAND,
        action_base: type = RecordingActions,
        cache_size: int | None = 32,
        engine: str = "eager",
    ):
        if engine not in ENGINES:
            raise DeploymentError(
                f"unknown generation engine {engine!r}; choose from {ENGINES}"
            )
        self._model_factory = model_factory
        self._policy = policy
        self._action_base = action_base
        self._engine = engine
        self._cache = GeneratedCodeCache(max_entries=cache_size)
        self._pinned: CompiledMachine | None = None
        self._pinned_key: tuple | None = None
        self.generations = 0

    @property
    def policy(self) -> GenerationPolicy:
        """The active generation policy."""
        return self._policy

    @property
    def engine(self) -> str:
        """The generation engine used for every generation (eager/lazy)."""
        return self._engine

    @property
    def cache(self) -> GeneratedCodeCache:
        """The underlying cache (meaningful for ``ON_DEMAND``)."""
        return self._cache

    def compiled(self, **parameters: Any) -> CompiledMachine:
        """A compiled implementation for the given parameter values."""
        key = tuple(sorted(parameters.items()))
        if self._policy is GenerationPolicy.PER_USE:
            self.generations += 1
            return self._generate(parameters)
        if self._policy is GenerationPolicy.ONCE:
            if self._pinned is None:
                self._pinned = self._generate(parameters)
                self._pinned_key = key
                self.generations += 1
            elif key != self._pinned_key:
                raise DeploymentError(
                    f"policy ONCE: already generated for {dict(self._pinned_key)}; "
                    f"cannot regenerate for {parameters}"
                )
            return self._pinned
        # ON_DEMAND: generate on first encounter of each parameter value.
        return self._cache.get_or_generate(key, lambda: self._count(parameters))

    def new_instance(self, *args: Any, **parameters: Any):
        """Instantiate a generated machine for the given parameters.

        Positional arguments are forwarded to the action base constructor.
        """
        return self.compiled(**parameters).new_instance(*args)

    def _count(self, parameters: dict) -> CompiledMachine:
        self.generations += 1
        return self._generate(parameters)

    def _generate(self, parameters: dict) -> CompiledMachine:
        model = self._model_factory(**parameters)
        machine = model.generate_state_machine(engine=self._engine)
        return compile_machine(machine, action_base=self._action_base)
