"""Exporting generated source to disk and importing it back (paper §4.3).

The ASA project's deployment choice was one-off generation "copied into
the code-base", after which "the generated code is treated in exactly the
same way as previously existing code during the build process".  This
module implements that workflow:

* :func:`export_machine_module` renders a machine to a Python module file
  (standalone mode: the generated class carries overridable no-op action
  methods, so the file has no import-time dependency on this library);
* :func:`import_machine_module` loads such a file back as a module and
  returns the machine class, the way an application build would.

A content fingerprint in the header lets :func:`is_stale` detect when the
checked-in artefact no longer matches what the abstract model generates —
the practical hazard of the copy-into-codebase policy.
"""

from __future__ import annotations

import hashlib
import importlib.util
import itertools
import pathlib

from repro.core.errors import DeploymentError
from repro.core.machine import StateMachine
from repro.render.source import PythonSourceRenderer, machine_class_name

_FINGERPRINT_PREFIX = "# machine-fingerprint: "
_import_counter = itertools.count(1)


def machine_fingerprint(machine: StateMachine) -> str:
    """Stable digest of the machine's observable structure."""
    hasher = hashlib.sha1()
    hasher.update(",".join(machine.messages).encode())
    hasher.update(machine.start_state.name.encode())
    for state in sorted(machine.states, key=lambda s: s.name):
        hasher.update(state.name.encode())
        hasher.update(b"1" if state.final else b"0")
        for transition in sorted(state.transitions, key=lambda t: t.message):
            hasher.update(transition.message.encode())
            hasher.update("|".join(transition.actions).encode())
            hasher.update(transition.target_name.encode())
    return hasher.hexdigest()


def export_machine_module(
    machine: StateMachine,
    path: str | pathlib.Path,
    class_name: str | None = None,
) -> pathlib.Path:
    """Write a standalone generated module for ``machine`` to ``path``."""
    target = pathlib.Path(path)
    renderer = PythonSourceRenderer(
        class_name=class_name or machine_class_name(machine),
        action_base=None,  # standalone: no import-time dependencies
    )
    source = renderer.render(machine)
    header = f"{_FINGERPRINT_PREFIX}{machine_fingerprint(machine)}\n"
    target.write_text(header + source, encoding="utf-8")
    return target


def read_fingerprint(path: str | pathlib.Path) -> str:
    """The fingerprint recorded in an exported module."""
    first_line = pathlib.Path(path).read_text(encoding="utf-8").splitlines()[0]
    if not first_line.startswith(_FINGERPRINT_PREFIX):
        raise DeploymentError(f"{path} does not carry a machine fingerprint")
    return first_line[len(_FINGERPRINT_PREFIX):].strip()


def is_stale(machine: StateMachine, path: str | pathlib.Path) -> bool:
    """Whether the exported artefact no longer matches ``machine``."""
    try:
        return read_fingerprint(path) != machine_fingerprint(machine)
    except FileNotFoundError:
        return True


def import_machine_module(
    path: str | pathlib.Path, class_name: str
) -> type:
    """Load an exported module from disk and return the machine class."""
    target = pathlib.Path(path)
    if not target.exists():
        raise DeploymentError(f"no exported module at {target}")
    module_name = f"repro_exported_{next(_import_counter)}"
    spec = importlib.util.spec_from_file_location(module_name, target)
    if spec is None or spec.loader is None:
        raise DeploymentError(f"cannot load module from {target}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    try:
        return getattr(module, class_name)
    except AttributeError:
        raise DeploymentError(
            f"{target} does not define expected class {class_name!r}"
        ) from None
