"""Action bindings for generated machine classes.

The source renderer emits calls to ``send_<action>()`` methods and leaves
their implementation to a separate class the generated class inherits from
(paper §5.1: "The rendering code is parameterised with a class defining
appropriate action methods").  This module provides generic, algorithm-
independent bases:

* :class:`RecordingActions` — records performed actions in order (used by
  tests, the interpreter-vs-compiled differential harness and benchmarks);
* :class:`CallbackActions` — forwards each action to a callable (used by
  the storage substrate to turn actions into simulated network sends).

Both synthesise any ``send_*`` method on demand, so they work for every
abstract model without per-algorithm code.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Optional

#: Prefix of generated action methods (mirrors repro.render.source).
_ACTION_PREFIX = "send_"


class RecordingActions:
    """Base class recording every performed action name, in order.

    The generated machine calls ``self.send_vote()``; this base records
    ``"vote"`` into :attr:`sent` and optionally forwards to a sink callable.
    """

    def __init__(self, sink: Optional[Callable[[str], None]] = None):
        self.sent: list[str] = []
        self._sink = sink

    def __getattr__(self, name: str):
        if name.startswith(_ACTION_PREFIX):
            action = name[len(_ACTION_PREFIX):]

            def perform() -> None:
                self.sent.append(action)
                if self._sink is not None:
                    self._sink(action)

            return perform
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def clear_sent(self) -> None:
        """Forget recorded actions (keeps the machine state untouched)."""
        self.sent.clear()


class CallbackActions:
    """Base class forwarding every action to a single callback.

    Unlike :class:`RecordingActions` it keeps no history, making it suitable
    for long-running deployments where the surrounding system (e.g. the
    simulated peer-set member in :mod:`repro.storage.peer`) reacts to each
    action as it happens.
    """

    def __init__(self, callback: Callable[[str], None]):
        self._callback = callback

    def __getattr__(self, name: str):
        if name.startswith(_ACTION_PREFIX):
            action = name[len(_ACTION_PREFIX):]

            def perform() -> None:
                self._callback(action)

            return perform
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )
