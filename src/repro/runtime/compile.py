"""In-memory compilation and loading of generated source (paper §4.3).

"For code generated on the fly, it is necessary to compile, load and bind
to the resulting executable code dynamically."  The paper binds to the Java
6 compiler API; the Python equivalent is ``compile`` + ``exec`` into a
fresh module object.  :func:`compile_machine` renders a
:class:`~repro.core.machine.StateMachine` to source, compiles it, injects
the caller's action base class under the name the source expects, and
returns the loaded machine class together with the source and module for
inspection.
"""

from __future__ import annotations

import itertools
import types
from dataclasses import dataclass

from repro.core.errors import DeploymentError
from repro.core.machine import StateMachine
from repro.render.source import PythonSourceRenderer, machine_class_name
from repro.runtime.actions import RecordingActions

#: Name under which the action base class is bound inside generated modules.
ACTION_BASE_NAME = "ActionsBase"

_module_counter = itertools.count(1)


@dataclass(frozen=True)
class CompiledMachine:
    """Result of compiling a generated machine implementation."""

    machine: StateMachine
    source: str
    module: types.ModuleType
    cls: type

    def new_instance(self, *args, **kwargs):
        """Instantiate the generated class (arguments go to the action base)."""
        return self.cls(*args, **kwargs)


def compile_machine(
    machine: StateMachine,
    action_base: type = RecordingActions,
    class_name: str | None = None,
    include_commentary: bool = True,
    dispatch: str = "handlers",
) -> CompiledMachine:
    """Render ``machine`` to Python source, compile and load it.

    ``action_base`` is the class supplying the ``send_*`` action methods;
    the generated class inherits from it (paper §5.1).  ``dispatch``
    selects the emitted shape — per-message handler if-chains
    (``"handlers"``, the paper's) or dense indexed arrays
    (``"indexed"``); both compile to protocol-identical classes.  Raises
    :class:`~repro.core.errors.DeploymentError` if the generated source
    fails to compile or the expected class is missing — both indicate a
    renderer bug, not a caller error.
    """
    name = class_name or machine_class_name(machine)
    renderer = PythonSourceRenderer(
        class_name=name,
        action_base=ACTION_BASE_NAME,
        include_commentary=include_commentary,
        dispatch=dispatch,
    )
    source = renderer.render(machine)

    module_name = f"repro_generated_{next(_module_counter)}"
    module = types.ModuleType(module_name)
    module.__dict__[ACTION_BASE_NAME] = action_base
    try:
        code = compile(source, filename=f"<generated {machine.name}>", mode="exec")
        exec(code, module.__dict__)  # noqa: S102 - deliberate dynamic load
    except SyntaxError as exc:
        raise DeploymentError(f"generated source failed to compile: {exc}") from exc

    try:
        cls = module.__dict__[name]
    except KeyError:
        raise DeploymentError(
            f"generated module does not define expected class {name!r}"
        ) from None
    return CompiledMachine(machine=machine, source=source, module=module, cls=cls)


def load_machine_class(
    machine: StateMachine, action_base: type = RecordingActions
) -> type:
    """Shorthand for ``compile_machine(...).cls``."""
    return compile_machine(machine, action_base=action_base).cls


@dataclass(frozen=True)
class CompiledEfsm:
    """Result of compiling a generated EFSM implementation."""

    source: str
    module: types.ModuleType
    cls: type

    def new_instance(self, *args, **parameters):
        """Instantiate the generated class; parameters are keywords."""
        return self.cls(*args, **parameters)


def compile_efsm(
    efsm,
    action_base: type = RecordingActions,
    class_name: str | None = None,
) -> CompiledEfsm:
    """Render an EFSM to Python source, compile and load it (paper §5.3).

    The generated class takes the EFSM parameters (e.g.
    ``replication_factor``) as constructor keywords: one compiled artefact
    serves the entire machine family.
    """
    from repro.render.efsm_source import PythonEfsmRenderer, efsm_class_name

    name = class_name or efsm_class_name(efsm)
    renderer = PythonEfsmRenderer(class_name=name, action_base=ACTION_BASE_NAME)
    source = renderer.render(efsm)
    module_name = f"repro_generated_efsm_{next(_module_counter)}"
    module = types.ModuleType(module_name)
    module.__dict__[ACTION_BASE_NAME] = action_base
    try:
        code = compile(source, filename=f"<generated {efsm.name}>", mode="exec")
        exec(code, module.__dict__)  # noqa: S102 - deliberate dynamic load
    except SyntaxError as exc:
        raise DeploymentError(
            f"generated EFSM source failed to compile: {exc}"
        ) from exc
    try:
        cls = module.__dict__[name]
    except KeyError:
        raise DeploymentError(
            f"generated EFSM module does not define expected class {name!r}"
        ) from None
    return CompiledEfsm(source=source, module=module, cls=cls)
