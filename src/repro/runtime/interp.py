"""Interpreted execution of a generated machine.

The alternative to compiling generated source (paper §4.2's "every time the
algorithm needs to be executed" end of the spectrum): drive the
:class:`~repro.core.machine.StateMachine` representation directly.  The
interpreter and the compiled class expose the same protocol —
``receive(message)`` returning whether a transition fired, ``get_state()``,
``is_finished()`` and an action sink — so they are interchangeable and can
be differentially tested against each other.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Optional

from repro.core.errors import DeploymentError
from repro.core.machine import StateMachine


class MachineInterpreter:
    """Execute a state machine by walking its transition table."""

    def __init__(
        self,
        machine: StateMachine,
        sink: Optional[Callable[[str], None]] = None,
        validate: bool = True,
    ):
        """``validate=False`` skips the integrity walk — for callers that
        spawn many interpreters over one already-validated machine."""
        if validate:
            machine.check_integrity()
        self._machine = machine
        self._state = machine.start_state
        self._sink = sink
        self.sent: list[str] = []

    @property
    def machine(self) -> StateMachine:
        """The machine being interpreted."""
        return self._machine

    def get_state(self) -> str:
        """Current state name."""
        return self._state.name

    def set_state(self, name: str) -> None:
        """Force the machine into a named state (used by tests)."""
        self._state = self._machine.get_state(name)

    def is_finished(self) -> bool:
        """Whether a final state has been reached."""
        return self._state.final

    def receive(self, message: str) -> bool:
        """Process a message; returns ``True`` if a transition fired.

        Messages with no transition from the current state are ignored —
        the same semantics as the generated source (and as the protocol:
        a duplicate ``update`` changes nothing).
        """
        if message not in self._machine.messages:
            raise DeploymentError(f"unknown message {message!r}")
        transition = self._state.get_transition(message)
        if transition is None:
            return False
        for action in transition.actions:
            name = action[2:] if action.startswith("->") else action
            self.sent.append(name)
            if self._sink is not None:
                self._sink(name)
        self._state = self._machine.get_state(transition.target_name)
        return True

    def run(self, messages: list[str]) -> list[str]:
        """Feed a message sequence; returns all actions performed."""
        before = len(self.sent)
        for message in messages:
            self.receive(message)
        return self.sent[before:]

    def reset(self) -> None:
        """Return to the start state and clear the action log."""
        self._state = self._machine.start_state
        self.sent.clear()
