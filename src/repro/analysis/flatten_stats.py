"""Flattening statistics: what hierarchy costs (and saves) when expanded.

The mapping-study literature on state-machine flattening measures the
transformation by its blow-up: a transition declared once on a composite
is copied into every descendant leaf, while unreachable leaves disappear.
This module turns the :class:`~repro.core.hsm.FlattenReport` produced by
the pipeline into comparison rows and an aligned table — per bundled
model, per engine — so the CLI and benchmarks can report the factors
directly.

Since the optimization pipeline (:mod:`repro.opt`) landed, the stats also
show the *recovery*: states before pruning -> after pruning (``flat``) ->
after equivalent-state merging (``opt``), so the CLI makes visible how
much of the flattening blow-up the optimizer claws back.
"""

from __future__ import annotations

from typing import Optional

from repro.core.hsm import FlattenReport, HierarchicalModel
from repro.core.pipeline import ENGINES
from repro.models import HIERARCHICAL_MODELS, build_hierarchical_model

#: Pipeline the CLI stats view uses for its recovery deltas: prune +
#: merge + pool compaction (renumbering never changes counts).  Library
#: callers default to no optimization so reports (and their timings)
#: stay directly comparable with plain ``flatten_with_report`` runs.
DEFAULT_STATS_OPT = "prune,merge,dead-actions"


def flatten_blowup(
    model: HierarchicalModel,
    engine: str = "eager",
    optimize: Optional[str] = None,
) -> FlattenReport:
    """Flatten ``model`` with ``engine`` and return the blow-up report.

    ``optimize`` feeds :meth:`~repro.core.hsm.HierarchicalModel.flatten_with_report`
    so the report carries post-optimization deltas (the CLI stats view
    passes :data:`DEFAULT_STATS_OPT`); the default ``None`` reports the
    raw flattening numbers only.
    """
    _, report = model.flatten_with_report(engine, optimize=optimize)
    return report


def flatten_comparison(model: HierarchicalModel) -> dict[str, FlattenReport]:
    """Reports for every flatten engine, keyed by engine name.

    Both engines must agree on the reachable machine, so the flat counts
    match; the expanded counts differ (eager materialises unreachable
    leaves, lazy never does) — that difference *is* the engine trade-off.
    """
    return {engine: flatten_blowup(model, engine) for engine in ENGINES}


def bundled_flatten_reports(
    replication_factor: int = 4,
    optimize: Optional[str] = None,
) -> list[FlattenReport]:
    """One report per bundled hierarchical model and flatten engine."""
    reports: list[FlattenReport] = []
    for name in HIERARCHICAL_MODELS:
        model = build_hierarchical_model(name, replication_factor)
        for engine in ENGINES:
            reports.append(flatten_blowup(model, engine, optimize=optimize))
    return reports


def format_flatten_table(reports: list[FlattenReport]) -> str:
    """Render reports as an aligned table (CLI ``flatten --format stats``).

    The state trajectory reads left to right: ``expanded`` (before
    pruning) -> ``flat`` (after pruning) -> ``opt`` (after the
    optimization pipeline; ``-`` when none ran).
    """
    header = (
        f"{'model':<18} {'engine':<7} {'groups':>6} {'leaves':>6} "
        f"{'depth':>5} {'declared':>8} {'expanded':>8} {'flat':>6} "
        f"{'opt':>5} {'trans':>6} {'state x':>8} {'trans x':>8} {'ms':>7}"
    )
    lines = [header, "-" * len(header)]
    for report in reports:
        opt = f"{report.opt_states:>5d}" if report.opt_report is not None else "    -"
        lines.append(
            f"{report.model_name:<18} {report.engine:<7} "
            f"{report.composite_count:>6d} {report.leaf_count:>6d} "
            f"{report.max_depth:>5d} {report.declared_transitions:>8d} "
            f"{report.expanded_states:>8d} {report.flat_states:>6d} "
            f"{opt} {report.flat_transitions:>6d} {report.state_blowup:>8.2f} "
            f"{report.transition_blowup:>8.2f} {report.total_time * 1000:>7.1f}"
        )
    return "\n".join(lines)
