"""The FSM <-> EFSM spectrum (paper §3.2, §5.3).

A formulation of an algorithm picks a point on a spectrum trading states
against variables: the original algorithm has one state and many variables,
the FSM family has many states and none, and EFSMs sit in between.  This
module quantifies that spectrum for the commit protocol and *derives* the
EFSM phase structure from a generated FSM, cross-validating the hand-built
9-state EFSM of :mod:`repro.models.commit_efsm`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import initial_state_count, merged_state_formula
from repro.core.efsm import Efsm
from repro.core.machine import StateMachine
from repro.models.commit import CommitModel, fault_tolerance

#: The flag components that define the commit protocol's phases; the two
#: counters (votes_received / commits_received) become EFSM variables.
COMMIT_PHASE_FLAGS = (
    "update_received",
    "vote_sent",
    "commit_sent",
    "could_choose",
    "has_chosen",
)

#: Name used for the terminal phase (all final states project here).
FINISHED_PHASE = "FINISHED"


@dataclass(frozen=True)
class PhaseTransition:
    """One abstract transition of the phase quotient."""

    source: str
    message: str
    actions: tuple[str, ...]
    target: str


def phase_name(machine_space, vector, flags=COMMIT_PHASE_FLAGS) -> str:
    """Project a state vector onto the flag components: ``T/T/F/T/T``."""
    values = []
    for flag in flags:
        component = machine_space.component(flag)
        values.append(component.encode(machine_space.get(vector, flag)))
    return "/".join(values)


def phase_quotient(
    machine: StateMachine, flags=COMMIT_PHASE_FLAGS
) -> set[PhaseTransition]:
    """Quotient a generated FSM by its phase flags.

    Returns the set of abstract transitions between phases, *excluding*
    pure counting self-loops (transitions that stay in the same phase with
    no actions) — those are exactly the transitions that an EFSM absorbs
    into variable updates.  Final states all project to
    :data:`FINISHED_PHASE`.
    """
    space = machine.space
    if space is None:
        raise ValueError("phase quotient needs a machine with a state space")

    def project(state) -> str:
        if state.final:
            return FINISHED_PHASE
        return phase_name(space, state.vector, flags)

    quotient: set[PhaseTransition] = set()
    for state in machine.states:
        source = project(state)
        for transition in state.transitions:
            target = project(machine.get_state(transition.target_name))
            if source == target and not transition.actions:
                continue  # below-threshold counting: an EFSM variable update
            quotient.add(
                PhaseTransition(source, transition.message, transition.actions, target)
            )
    return quotient


def efsm_phase_transitions(efsm: Efsm) -> set[PhaseTransition]:
    """The comparable abstract-transition set of an EFSM definition."""
    transitions: set[PhaseTransition] = set()
    for state in efsm.states:
        for transition in state.transitions:
            if transition.target == state.name and not transition.actions:
                continue  # variable-update self-loop
            transitions.add(
                PhaseTransition(
                    state.name,
                    transition.message,
                    transition.actions,
                    transition.target,
                )
            )
    return transitions


def phase_names(machine: StateMachine, flags=COMMIT_PHASE_FLAGS) -> set[str]:
    """All phase names occurring in the machine (finals collapse to one)."""
    space = machine.space
    names: set[str] = set()
    for state in machine.states:
        if state.final:
            names.add(FINISHED_PHASE)
        else:
            names.add(phase_name(space, state.vector, flags))
    return names


@dataclass
class SpectrumPoint:
    """One formulation of the commit algorithm on the paper's spectrum."""

    formulation: str
    states: int
    variables: int
    generic_in_r: bool


def commit_spectrum(replication_factor: int) -> list[SpectrumPoint]:
    """The three formulations of §3.2/§5.3 for a given replication factor.

    The generic algorithm keeps all 7 variables in 1 state; the EFSM keeps
    the 2 counters in 9 states (independent of ``r``); the FSM encodes
    everything in states (``12 f^2 + 16 f + 5`` after merging).
    """
    f = fault_tolerance(replication_factor)
    return [
        SpectrumPoint("generic algorithm", 1, 7, True),
        SpectrumPoint("EFSM", 9, 2, True),
        SpectrumPoint("FSM", merged_state_formula(f), 0, False),
    ]


def fsm_vs_efsm_table(replication_factors) -> list[dict]:
    """State counts across the family: FSM grows with f, EFSM stays at 9."""
    rows = []
    for r in replication_factors:
        machine = CommitModel(r).generate_state_machine()
        rows.append(
            {
                "r": r,
                "f": fault_tolerance(r),
                "fsm_initial_states": initial_state_count(r),
                "fsm_merged_states": len(machine),
                "efsm_states": 9,
            }
        )
    return rows
