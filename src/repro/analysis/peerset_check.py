"""Exhaustive model checking of a whole peer set of generated FSMs.

The paper argues the state-machine family "formalises the interactions
between the components of the distributed system, allowing increased
confidence in correctness" (§1).  This module delivers on that claim at
system level: it explores interleavings of message deliveries among the
``r`` FSM instances of a peer set, using the generated machine's
transition table as pure data.

Scenarios:

* :func:`check_single_update` — one client update, optionally with some
  members silent (Byzantine by omission).  Exhaustive: verifies that
  **every** maximal execution ends with all correct members finished
  (agreement + inevitable termination) when at most ``f`` members are
  silent — and exhibits the deadlock when more are.
* :func:`check_contending_updates` — §2.2's contention: two updates
  arriving first at opposite halves of the peer set.  Classifies every
  quiescent outcome per update as committed-everywhere / nowhere /
  **partial** (a safety violation, asserted absent) and counts deadlocks,
  turning "the algorithm may deadlock" into a checked, quantified fact.

Exploration is depth-first over system states
``(machine states, chooser slots, pending message bags)`` with
memoisation, exact up to an explicit state budget.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.errors import SimulationError
from repro.core.machine import StateMachine
from repro.models.commit import CommitModel


def _transition_table(machine: StateMachine):
    """The machine as pure data: state -> message -> (actions, target)."""
    table: dict[str, dict[str, tuple[tuple[str, ...], str]]] = {}
    for state in machine.states:
        table[state.name] = {
            t.message: (t.actions, t.target_name) for t in state.transitions
        }
    return table


@dataclass
class ExplorationResult:
    """Outcome of an exploration run."""

    members: int
    silent: int
    updates: int
    states_explored: int
    quiescent_states: int
    all_finished_quiescent: int
    deadlocked_quiescent: int
    partial_outcomes: int
    truncated: bool
    outcome_counts: Counter = field(default_factory=Counter)
    counterexample: list[str] | None = None

    @property
    def always_terminates(self) -> bool:
        """Whether every maximal execution finished all correct members."""
        return (
            self.deadlocked_quiescent == 0
            and self.partial_outcomes == 0
            and not self.truncated
        )

    @property
    def deadlock_possible(self) -> bool:
        """Whether some execution reaches quiescence unfinished."""
        return self.deadlocked_quiescent > 0

    @property
    def safe(self) -> bool:
        """No partial commit was observed in any explored outcome.

        A *partial* outcome — an update finished at some live members but
        not others at quiescence — would mean divergent histories; the
        commit protocol must never produce one regardless of deadlocks.
        """
        return self.partial_outcomes == 0


class PeerSetExplorer:
    """DFS over delivery interleavings of commit FSM instances.

    System state: per live member, a tuple of instance machine-states (one
    per update) plus the member-local chooser slot; and per
    (member, update, kind) pending delivery counts.  ``free``/``not free``
    between sibling instances are delivered synchronously inside a member
    (they never cross the network), matching the deployment in
    :mod:`repro.storage.version_history`.
    """

    def __init__(self, machine: StateMachine, members: int, updates: int):
        self._table = _transition_table(machine)
        self._finish = {s.name for s in machine.final_states()}
        self._start = machine.start_state.name
        self.members = members
        self.updates = updates

    # -- member-local mechanics -----------------------------------------

    def deliver_local(self, states: list[str], chooser: int, update: int, kind: str):
        """Deliver one message into one member; cascade sibling free/not_free.

        Returns ``(chooser, broadcasts)`` where broadcasts is a list of
        (update, kind) messages the member sends to all peers.
        """
        out: list[tuple[int, str]] = []

        def step(slot: int, msg: str, chooser: int) -> int:
            row = self._table.get(states[slot], {})
            if msg not in row:
                return chooser
            actions, target = row[msg]
            states[slot] = target
            for action in actions:
                name = action[2:]
                if name in ("vote", "commit"):
                    out.append((slot, name))
                elif name == "not_free":
                    chooser = slot
                    for other in range(self.updates):
                        if other != slot and states[other] not in self._finish:
                            chooser = step(other, "not_free", chooser)
                elif name == "free":
                    if chooser == slot:
                        chooser = -1
                        for other in range(self.updates):
                            if chooser != -1:
                                break
                            if other != slot and states[other] not in self._finish:
                                chooser = step(other, "free", chooser)
            return chooser

        chooser = step(update, kind, chooser)
        return chooser, out

    # -- scenario construction -------------------------------------------

    def initial_members(self, live: list[bool], initial_free: bool = True):
        """Fresh member states; live members get their creation `free`."""
        members_state = []
        for m in range(self.members):
            states = [self._start] * self.updates
            chooser = -1
            if initial_free and live[m]:
                for slot in range(self.updates):
                    if chooser == -1:
                        chooser, _ = self.deliver_local(states, chooser, slot, "free")
            members_state.append((tuple(states), chooser))
        return members_state

    def apply(self, members_state, pending, member: int, update: int, kind: str):
        """Synchronously deliver one message during scenario setup."""
        states = list(members_state[member][0])
        chooser = members_state[member][1]
        chooser, broadcasts = self.deliver_local(states, chooser, update, kind)
        members_state[member] = (tuple(states), chooser)
        for slot, name in broadcasts:
            for d in range(self.members):
                if d != member:
                    key = (d, slot, name)
                    pending[key] = pending.get(key, 0) + 1

    # -- exploration ------------------------------------------------------

    def explore(
        self,
        members_state,
        pending,
        live: list[bool],
        max_states: int = 2_000_000,
    ) -> ExplorationResult:
        def freeze(ms, pd):
            return (
                tuple(ms),
                tuple(sorted((k, v) for k, v in pd.items() if v > 0)),
            )

        root = (tuple(members_state), dict(pending))
        seen = {freeze(*root)}
        stack = [root]

        explored = 0
        quiescent = 0
        finished_quiescent = 0
        deadlocked = 0
        partial = 0
        truncated = False
        outcome_counts: Counter = Counter()
        counterexample: list[str] | None = None

        live_members = [m for m in range(self.members) if live[m]]

        while stack:
            ms, pd = stack.pop()
            explored += 1
            if explored >= max_states:
                truncated = True
                break

            deliverable = [
                (m, u, kind)
                for (m, u, kind), count in pd.items()
                if count > 0 and live[m]
            ]
            if not deliverable:
                quiescent += 1
                outcome = []
                saw_partial = False
                all_done = True
                for u in range(self.updates):
                    done = [ms[m][0][u] in self._finish for m in live_members]
                    if all(done):
                        outcome.append("all")
                    elif not any(done):
                        outcome.append("none")
                        all_done = False
                    else:
                        outcome.append("partial")
                        saw_partial = True
                        all_done = False
                outcome_counts[tuple(outcome)] += 1
                if saw_partial:
                    partial += 1
                if all_done:
                    finished_quiescent += 1
                else:
                    deadlocked += 1
                    if counterexample is None:
                        counterexample = [
                            f"member {m}: instances {ms[m][0]}"
                            for m in live_members
                        ]
                continue

            for m, u, kind in deliverable:
                states = list(ms[m][0])
                chooser = ms[m][1]
                chooser, broadcasts = self.deliver_local(states, chooser, u, kind)
                new_members = list(ms)
                new_members[m] = (tuple(states), chooser)
                new_pending = dict(pd)
                new_pending[(m, u, kind)] -= 1
                for slot, name in broadcasts:
                    for d in range(self.members):
                        if d != m:
                            key = (d, slot, name)
                            new_pending[key] = new_pending.get(key, 0) + 1
                candidate = (tuple(new_members), new_pending)
                key = freeze(*candidate)
                if key not in seen:
                    seen.add(key)
                    stack.append(candidate)

        return ExplorationResult(
            members=self.members,
            silent=sum(1 for alive in live if not alive),
            updates=self.updates,
            states_explored=explored,
            quiescent_states=quiescent,
            all_finished_quiescent=finished_quiescent,
            deadlocked_quiescent=deadlocked,
            partial_outcomes=partial,
            truncated=truncated,
            outcome_counts=outcome_counts,
            counterexample=counterexample,
        )


def check_single_update(
    replication_factor: int = 4,
    silent_members: int = 0,
    max_states: int = 2_000_000,
    engine: str = "eager",
) -> ExplorationResult:
    """Exhaustively check one update across the peer set.

    ``silent_members`` members absorb all traffic and send nothing
    (Byzantine by omission).  For ``silent_members <= f`` every
    interleaving must finish all correct members; for more the protocol
    legitimately stalls, which the result reports as deadlock.
    """
    r = replication_factor
    if silent_members >= r:
        raise SimulationError("at least one member must be live")
    machine = CommitModel(r).generate_state_machine(engine=engine)
    explorer = PeerSetExplorer(machine, members=r, updates=1)
    live = [m >= silent_members for m in range(r)]
    members_state = explorer.initial_members(live)
    pending = {(m, 0, "update"): 1 for m in range(r)}
    return explorer.explore(members_state, pending, live, max_states=max_states)


def check_contending_updates(
    replication_factor: int = 4,
    first_half: int | None = None,
    max_states: int = 2_000_000,
    engine: str = "eager",
) -> ExplorationResult:
    """Model-check the §2.2 contention scenario.

    ``first_half`` members receive (and, being free, vote for) update A
    before anything else; the rest vote for update B.  The cross updates
    and all votes then interleave freely.  With an even split at r=4
    neither update can ever reach the 2f+1 = 3 vote threshold, so *every*
    interleaving deadlocks — the strongest form of the paper's "the
    algorithm may deadlock", showing the timeout/retry scheme is
    *necessary*.  With a 3/1 split the updates serialise: A reaches its
    threshold and commits, finishing frees each member's local vote, and B
    (already received everywhere) is voted through next — quiescent
    outcomes are ``('all', 'all')``.  In all cases
    :attr:`ExplorationResult.safe` asserts no partial commit ever appears.
    """
    r = replication_factor
    split = first_half if first_half is not None else r // 2
    if not 0 <= split <= r:
        raise SimulationError(f"first_half must be in 0..{r}, got {split}")
    machine = CommitModel(r).generate_state_machine(engine=engine)
    explorer = PeerSetExplorer(machine, members=r, updates=2)
    live = [True] * r
    members_state = explorer.initial_members(live)
    pending: dict[tuple[int, int, str], int] = {}
    for m in range(r):
        chosen = 0 if m < split else 1
        other = 1 - chosen
        explorer.apply(members_state, pending, m, chosen, "update")
        pending[(m, other, "update")] = pending.get((m, other, "update"), 0) + 1
    return explorer.explore(members_state, pending, live, max_states=max_states)
