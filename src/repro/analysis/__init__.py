"""Analysis utilities: state-space statistics, machine diffing, spectrum.

* :mod:`repro.analysis.stats` — structural statistics and the regenerated
  Table 1 (including the merged-size closed form ``12 f^2 + 16 f + 5``);
* :mod:`repro.analysis.diff` — isomorphism checking between machines;
* :mod:`repro.analysis.spectrum` — the FSM/EFSM/algorithm spectrum and the
  phase-quotient derivation that cross-validates the 9-state commit EFSM;
* :mod:`repro.analysis.flatten_stats` — state/transition blow-up factors
  of the hierarchical flattening pipeline.
"""

from repro.analysis.diff import MachineDiff, diff_machines, machines_isomorphic
from repro.analysis.flatten_stats import (
    bundled_flatten_reports,
    flatten_blowup,
    flatten_comparison,
    format_flatten_table,
)
from repro.analysis.peerset_check import (
    ExplorationResult,
    PeerSetExplorer,
    check_contending_updates,
    check_single_update,
)
from repro.analysis.properties import (
    PropertyReport,
    action_at_most_once,
    action_exactly_once,
    action_required,
    commit_protocol_properties,
    finish_always_reachable,
)
from repro.analysis.spectrum import (
    COMMIT_PHASE_FLAGS,
    FINISHED_PHASE,
    PhaseTransition,
    commit_spectrum,
    efsm_phase_transitions,
    fsm_vs_efsm_table,
    phase_names,
    phase_quotient,
)
from repro.analysis.stats import (
    PAPER_TABLE1,
    MachineStats,
    Table1Row,
    format_table1,
    initial_state_count,
    machine_stats,
    merged_state_count,
    merged_state_formula,
    table1,
    table1_row,
)

__all__ = [
    "COMMIT_PHASE_FLAGS",
    "ExplorationResult",
    "PeerSetExplorer",
    "PropertyReport",
    "action_at_most_once",
    "action_exactly_once",
    "action_required",
    "bundled_flatten_reports",
    "check_contending_updates",
    "check_single_update",
    "commit_protocol_properties",
    "finish_always_reachable",
    "FINISHED_PHASE",
    "MachineDiff",
    "MachineStats",
    "PAPER_TABLE1",
    "PhaseTransition",
    "Table1Row",
    "commit_spectrum",
    "diff_machines",
    "efsm_phase_transitions",
    "flatten_blowup",
    "flatten_comparison",
    "format_flatten_table",
    "format_table1",
    "fsm_vs_efsm_table",
    "initial_state_count",
    "machine_stats",
    "machines_isomorphic",
    "merged_state_count",
    "merged_state_formula",
    "phase_names",
    "phase_quotient",
    "table1",
    "table1_row",
]
