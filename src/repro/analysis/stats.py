"""State-space statistics: the numbers behind the paper's Table 1.

Provides per-machine structural statistics, the commit family's Table 1
rows (initial/final state counts and generation time for a set of
replication factors), and the closed form for the merged commit machine
size discovered during calibration: ``12 f^2 + 16 f + 5`` states, a
function of the fault tolerance ``f`` alone.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.machine import StateMachine
from repro.models.commit import CommitModel, fault_tolerance

#: The paper's Table 1 parameter points and published counts.
# One published row per line beats the 88-column rule here.
# fmt: off
PAPER_TABLE1 = (
    {"f": 1, "r": 4, "initial_states": 512, "final_states": 33, "generation_time_s": 0.10},
    {"f": 2, "r": 7, "initial_states": 1568, "final_states": 85, "generation_time_s": 0.12},
    {"f": 4, "r": 13, "initial_states": 5408, "final_states": 261, "generation_time_s": 0.38},
    {"f": 8, "r": 25, "initial_states": 20000, "final_states": 901, "generation_time_s": 2.2},
    {"f": 15, "r": 46, "initial_states": 67712, "final_states": 2945, "generation_time_s": 19.1},
)
# fmt: on


@dataclass
class MachineStats:
    """Structural statistics of one generated machine."""

    name: str
    states: int
    final_states: int
    transitions: int
    phase_transitions: int
    transitions_per_state: dict[int, int]

    @property
    def simple_transitions(self) -> int:
        """Transitions that perform no actions."""
        return self.transitions - self.phase_transitions


def machine_stats(machine: StateMachine) -> MachineStats:
    """Compute structural statistics for ``machine``."""
    histogram = Counter(len(state.transitions) for state in machine.states)
    return MachineStats(
        name=machine.name,
        states=len(machine),
        final_states=len(machine.final_states()),
        transitions=machine.transition_count(),
        phase_transitions=machine.phase_transition_count(),
        transitions_per_state=dict(sorted(histogram.items())),
    )


def initial_state_count(replication_factor: int) -> int:
    """Size of the unpruned commit state space: ``2^5 r^2`` (paper §3.4)."""
    return 32 * replication_factor * replication_factor


def merged_state_formula(f: int) -> int:
    """Merged commit machine size at ``r = 3f + 1``: ``12 f^2 + 16 f + 5``.

    Fits all five published Table 1 rows exactly (each uses the minimal
    replication factor for its fault tolerance).  For general ``r`` see
    :func:`merged_state_count`.
    """
    return 12 * f * f + 16 * f + 5


def merged_state_count(replication_factor: int) -> int:
    """General closed form of the merged commit machine size.

    ``12 f^2 + 16 f + 5 + (r - 3f - 1)(4f + 4)`` with
    ``f = floor((r-1)/3)``: the Table 1 value plus one extra "slack column"
    of ``4f + 4`` states for each unit of replication factor beyond the
    minimal ``3f + 1`` (counter headroom above the thresholds survives
    merging as additional counting states).  Verified exhaustively for
    ``r`` in 4..24 and property-tested.
    """
    f = fault_tolerance(replication_factor)
    slack = replication_factor - (3 * f + 1)
    return merged_state_formula(f) + slack * (4 * f + 4)


@dataclass
class Table1Row:
    """One regenerated row of the paper's Table 1."""

    f: int
    r: int
    initial_states: int
    pruned_states: int
    final_states: int
    generation_time_s: float

    def matches_paper(self) -> bool:
        """Whether the machine-independent counts equal the published ones."""
        for row in PAPER_TABLE1:
            if row["r"] == self.r:
                return (
                    row["f"] == self.f
                    and row["initial_states"] == self.initial_states
                    and row["final_states"] == self.final_states
                )
        return False


def table1_row(replication_factor: int, engine: str = "eager") -> Table1Row:
    """Generate the commit machine and report its Table 1 row.

    ``engine`` selects the eager pipeline or the lazy frontier engine; the
    machine-independent state counts are identical either way, only the
    generation time changes.
    """
    model = CommitModel(replication_factor)
    _, report = model.generate_with_report(engine=engine)
    return Table1Row(
        f=fault_tolerance(replication_factor),
        r=replication_factor,
        initial_states=report.initial_states,
        pruned_states=report.reachable_states,
        final_states=report.merged_states,
        generation_time_s=report.total_time,
    )


def table1(
    replication_factors: tuple[int, ...] = (4, 7, 13, 25, 46),
    engine: str = "eager",
) -> list[Table1Row]:
    """Regenerate the paper's Table 1 for the given replication factors."""
    return [table1_row(r, engine=engine) for r in replication_factors]


def format_table1(rows: list[Table1Row]) -> str:
    """Render rows in the paper's Table 1 layout."""
    lines = [
        "f   r   initial states   final states   generation time (s)",
        "--  --  --------------   ------------   -------------------",
    ]
    for row in rows:
        lines.append(
            f"{row.f:<3d} {row.r:<3d} {row.initial_states:<16d} "
            f"{row.final_states:<14d} {row.generation_time_s:.3f}"
        )
    return "\n".join(lines)
