"""Comparing generated machines.

Used to check consistency between independently produced machines — e.g.
the paper's step of checking the generated r=4 FSM "for consistency with
the original FSM", or this library's tests that the XML round-trip and the
one-shot-merge fixpoint reproduce the partition-refinement result.

:func:`machines_isomorphic` decides isomorphism for deterministic machines
by parallel traversal from the start states (unique up to renaming);
:func:`diff_machines` produces a human-readable difference list.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.machine import StateMachine


@dataclass
class MachineDiff:
    """Result of comparing two machines."""

    isomorphic: bool
    mapping: dict[str, str] = field(default_factory=dict)
    differences: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.isomorphic


def machines_isomorphic(left: StateMachine, right: StateMachine) -> MachineDiff:
    """Decide whether two deterministic machines are isomorphic.

    Machines are isomorphic when a bijection between their reachable states
    maps start to start, preserves finality, and matches every transition's
    message, action sequence and (mapped) target.  For deterministic
    machines the candidate bijection is forced by parallel BFS.
    """
    diff = MachineDiff(isomorphic=True)
    if tuple(left.messages) != tuple(right.messages):
        diff.isomorphic = False
        diff.differences.append(
            f"message alphabets differ: {left.messages} vs {right.messages}"
        )
        return diff

    mapping: dict[str, str] = {}
    reverse: dict[str, str] = {}
    queue: deque[tuple[str, str]] = deque()

    def bind(a: str, b: str) -> bool:
        if a in mapping:
            if mapping[a] != b:
                diff.differences.append(
                    f"state {a!r} maps to both {mapping[a]!r} and {b!r}"
                )
                return False
            return True
        if b in reverse:
            diff.differences.append(
                f"states {reverse[b]!r} and {a!r} both map to {b!r}"
            )
            return False
        mapping[a] = b
        reverse[b] = a
        queue.append((a, b))
        return True

    if not bind(left.start_state.name, right.start_state.name):
        diff.isomorphic = False
        return diff

    while queue:
        a_name, b_name = queue.popleft()
        a = left.get_state(a_name)
        b = right.get_state(b_name)
        if a.final != b.final:
            diff.isomorphic = False
            diff.differences.append(
                f"finality differs: {a_name!r} final={a.final}, "
                f"{b_name!r} final={b.final}"
            )
            continue
        for message in left.messages:
            ta = a.get_transition(message)
            tb = b.get_transition(message)
            if (ta is None) != (tb is None):
                diff.isomorphic = False
                diff.differences.append(
                    f"{a_name!r}/{b_name!r}: transition on {message!r} present "
                    f"in only one machine"
                )
                continue
            if ta is None or tb is None:
                continue
            if ta.actions != tb.actions:
                diff.isomorphic = False
                diff.differences.append(
                    f"{a_name!r}/{b_name!r} on {message!r}: actions differ "
                    f"{ta.actions} vs {tb.actions}"
                )
                continue
            if not bind(ta.target_name, tb.target_name):
                diff.isomorphic = False

    left_reachable = left.reachable_names()
    right_reachable = right.reachable_names()
    if diff.isomorphic and len(left_reachable) != len(right_reachable):
        diff.isomorphic = False
        diff.differences.append(
            f"reachable state counts differ: {len(left_reachable)} vs "
            f"{len(right_reachable)}"
        )
    diff.mapping = mapping
    return diff


def diff_machines(left: StateMachine, right: StateMachine) -> list[str]:
    """Human-readable differences between two machines (empty if isomorphic)."""
    return machines_isomorphic(left, right).differences
