"""Path properties of generated machines: protocol-level verification.

The paper's motivation for the FSM formulation is "increased confidence in
correctness" (§1, §7).  This module makes that concrete with graph-level
property checks over a generated machine:

* :func:`action_at_most_once` — no execution performs an action twice
  (e.g. a member never votes twice for the same update);
* :func:`action_required` — no complete execution (start to finish)
  avoids the action (every finishing member has voted and committed);
* :func:`action_exactly_once` — both of the above;
* :func:`finish_always_reachable` — from every reachable state the finish
  state remains reachable (the protocol can never paint itself into a
  corner, even though external message loss may stall it).

All checks are exact graph analyses (no sampling): they quantify over
*every* path of the machine, including the infinitely many that loop
through ``free``/``not free`` toggles.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.machine import StateMachine



@dataclass
class PropertyReport:
    """Outcome of one property check."""

    property_name: str
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the property holds."""
        return not self.violations

    def __str__(self) -> str:
        if self.ok:
            return f"{self.property_name}: holds"
        detail = "; ".join(self.violations[:5])
        return f"{self.property_name}: {len(self.violations)} violation(s): {detail}"


def _edges_with_action(machine: StateMachine, action: str):
    for state in machine.states:
        for transition in state.transitions:
            if action in transition.actions:
                yield state.name, transition


def _can_reach_action(machine: StateMachine, action: str) -> set[str]:
    """States from which some path eventually traverses an ``action`` edge."""
    predecessors: dict[str, list[str]] = {name: [] for name in machine.state_names()}
    for state in machine.states:
        for transition in state.transitions:
            predecessors[transition.target_name].append(state.name)

    frontier = deque(source for source, _ in _edges_with_action(machine, action))
    can_reach = set(frontier)
    while frontier:
        current = frontier.popleft()
        for predecessor in predecessors[current]:
            if predecessor not in can_reach:
                can_reach.add(predecessor)
                frontier.append(predecessor)
    return can_reach


def action_at_most_once(machine: StateMachine, action: str) -> PropertyReport:
    """No path performs ``action`` more than once.

    Violated exactly when some ``action`` edge leads to a state from which
    another ``action`` edge is reachable.
    """
    report = PropertyReport(f"at-most-once({action})")
    can_reach = _can_reach_action(machine, action)
    for source, transition in _edges_with_action(machine, action):
        if transition.target_name in can_reach:
            report.violations.append(
                f"{source} --{transition.message}--> {transition.target_name} "
                f"can perform {action} again"
            )
    return report


def action_required(machine: StateMachine, action: str) -> PropertyReport:
    """Every complete (start-to-final) path performs ``action``.

    Violated exactly when a final state is reachable from the start using
    only edges that do not carry the action.
    """
    report = PropertyReport(f"required({action})")
    start = machine.start_state.name
    seen = {start}
    frontier = deque([start])
    while frontier:
        state = machine.get_state(frontier.popleft())
        if state.final:
            report.violations.append(
                f"final state {state.name} reachable without performing {action}"
            )
            continue
        for transition in state.transitions:
            if action in transition.actions:
                continue
            if transition.target_name not in seen:
                seen.add(transition.target_name)
                frontier.append(transition.target_name)
    return report


def action_exactly_once(machine: StateMachine, action: str) -> PropertyReport:
    """Every complete path performs ``action`` exactly once."""
    report = PropertyReport(f"exactly-once({action})")
    report.violations.extend(action_at_most_once(machine, action).violations)
    report.violations.extend(action_required(machine, action).violations)
    return report


def finish_always_reachable(machine: StateMachine) -> PropertyReport:
    """From every state, some final state remains reachable."""
    report = PropertyReport("finish-always-reachable")
    predecessors: dict[str, list[str]] = {name: [] for name in machine.state_names()}
    for state in machine.states:
        for transition in state.transitions:
            predecessors[transition.target_name].append(state.name)

    frontier = deque(state.name for state in machine.final_states())
    can_finish = set(frontier)
    while frontier:
        current = frontier.popleft()
        for predecessor in predecessors[current]:
            if predecessor not in can_finish:
                can_finish.add(predecessor)
                frontier.append(predecessor)

    for name in machine.state_names():
        if name not in can_finish:
            report.violations.append(f"state {name} cannot reach any final state")
    return report


def commit_protocol_properties(machine: StateMachine) -> list[PropertyReport]:
    """The protocol-level property suite for a commit machine.

    A member votes exactly once and commits exactly once per finished
    update, claims the local vote at most once, releases it at most once,
    and can always still finish.
    """
    return [
        action_exactly_once(machine, "->vote"),
        action_exactly_once(machine, "->commit"),
        action_at_most_once(machine, "->not_free"),
        action_at_most_once(machine, "->free"),
        finish_always_reachable(machine),
    ]
