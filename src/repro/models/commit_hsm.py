"""A hierarchical variant of the paper's commit protocol.

The generated flat commit machine (paper §3, Table 1) becomes the body of
a ``Protocol`` region inside a transactional session wrapper::

    commit_hsm[r=N]
    ├── Idle                                  (initial)
    ├── Protocol   [entry ->open_log, exit ->close_log]
    │   ├── <every state of the generated commit machine for r=N>
    │   └── (inherited) abort -> Aborted      [->rollback]
    ├── Done                                  (final, finish)
    └── Aborted                               (final)

``begin`` enters the region at the commit machine's start state; every
transition of the generated machine is preserved verbatim as a leaf
transition.  The machine family's terminal ``FINISHED`` state becomes a
non-final leaf whose ``finalize`` transition settles the update and
leaves the region.  The region-level ``abort`` transition is inherited
by every embedded protocol state — the "abort from anywhere" escape that
is one declaration here and ``O(states)`` transitions after flattening.

This composition is the generative payoff the ISSUE targets: the
*generated* artefact of the source paper becomes a reusable region in a
*structured* design, and the flattening pipeline hands the combined
machine to the interpreter, the compiled backend and the fleet plane
unchanged.
"""

from __future__ import annotations

from repro.core.hsm import HierarchicalModel
from repro.models.commit import MESSAGES as COMMIT_MESSAGES
from repro.models.commit import CommitModel

#: Messages added by the transactional wrapper around the commit region.
WRAPPER_MESSAGES = ("begin", "abort", "finalize")


def build_commit_hsm(
    replication_factor: int = 4, engine: str = "eager"
) -> HierarchicalModel:
    """Wrap the generated commit machine for ``r`` in a hierarchical session.

    ``engine`` selects the generation engine (eager pipeline or lazy
    frontier) used to produce the embedded flat commit machine.
    """
    commit = CommitModel(replication_factor).generate_state_machine(engine=engine)
    model = HierarchicalModel(
        f"commit_hsm[r={replication_factor}]",
        messages=WRAPPER_MESSAGES + COMMIT_MESSAGES,
        parameters={"replication_factor": replication_factor, "base_engine": engine},
    )
    root = model.root
    root.leaf(
        "Idle",
        initial=True,
        annotations=("No update in flight; the version history is quiescent.",),
    ).on("begin", "Protocol", actions=("->open_update",))

    protocol = root.composite(
        "Protocol",
        entry=("->open_log",),
        exit=("->close_log",),
        annotations=(
            f"Embedded commit machine {commit.name} "
            f"({len(commit)} states, engine {engine}).",
        ),
    )
    protocol.on("abort", "Aborted", actions=("->rollback",))

    start_name = commit.start_state.name
    for state in commit.states:
        leaf = protocol.leaf(
            state.name,
            initial=(state.name == start_name),
            annotations=state.annotations,
        )
        if state.final:
            # The machine family's terminal state settles the update and
            # leaves the region instead of halting the whole session.
            leaf.on("finalize", "Done", actions=("->settle",))
        else:
            for transition in state.transitions:
                leaf.on(
                    transition.message,
                    transition.target_name,
                    actions=transition.actions,
                    annotations=transition.annotations,
                )

    root.leaf(
        "Done",
        final=True,
        annotations=("The update settled: every peer confirmed the commit.",),
    )
    root.leaf(
        "Aborted",
        final=True,
        annotations=("The update was rolled back before completion.",),
    )
    model.set_finish("Done")
    model.validate()
    return model
