"""A Chandra–Toueg-style coordinator round as a generated FSM family.

Paper §5.2 identifies the Chandra–Toueg consensus algorithm [15] as a prime
candidate for the methodology: "the state held at each node and the
messages themselves are relatively simple and amenable to being processed
by a FSM".  This model generates the coordinator's FSM for one round of a
CT-style protocol: the coordinator gathers estimates from the ``n``
participants, broadcasts its chosen estimate once a majority has reported,
counts positive acknowledgements, and decides when a majority acks —
aborting the round instead if a suspicion message arrives first.

State components (parameter ``processes`` = ``n``):

* ``estimates_received`` — estimates gathered this round (0..n-1);
* ``estimate_sent`` — whether the coordinator broadcast its estimate;
* ``acks_received`` — positive acknowledgements (0..n-1);
* ``decided`` — a decision was broadcast (terminal);
* ``aborted`` — the round was aborted after a suspicion (terminal).

Messages: ``estimate``, ``ack``, ``suspect``.

The majority threshold is ``floor(n/2) + 1``; the coordinator's own
estimate and ack are counted implicitly (it participates like any process),
so broadcast happens after ``majority - 1`` external estimates and decision
after ``majority - 1`` external acks.
"""

from __future__ import annotations

from repro.core.components import BooleanComponent, IntComponent
from repro.core.errors import ModelDefinitionError
from repro.core.model import AbstractModel, StateView, TransitionBuilder

MESSAGES = ("estimate", "ack", "suspect")


def majority(processes: int) -> int:
    """Smallest majority of ``processes``: ``floor(n/2) + 1``."""
    return processes // 2 + 1


class CoordinatorRoundModel(AbstractModel):
    """FSM family for one coordinator round of CT-style consensus."""

    def __init__(self, processes: int):
        if processes < 3:
            raise ModelDefinitionError(
                f"consensus needs at least 3 processes, got {processes}"
            )
        super().__init__(processes=processes)
        self._n = processes

    def configure(self, *, processes: int):
        components = [
            IntComponent("estimates_received", processes - 1),
            BooleanComponent("estimate_sent"),
            IntComponent("acks_received", processes - 1),
            BooleanComponent("decided"),
            BooleanComponent("aborted"),
        ]
        return components, MESSAGES

    @property
    def processes(self) -> int:
        """Number of participating processes (``n``)."""
        return self._n

    @property
    def external_majority(self) -> int:
        """External messages needed for a majority, counting the coordinator."""
        return majority(self._n) - 1

    def machine_name(self) -> str:
        return f"ct-round[n={self._n}]"

    def is_final(self, view: StateView) -> bool:
        return view["decided"] or view["aborted"]

    def generate_transition(self, message: str, b: TransitionBuilder) -> None:
        if message == "estimate":
            self._on_estimate(b)
        elif message == "ack":
            self._on_ack(b)
        elif message == "suspect":
            self._on_suspect(b)

    def _on_estimate(self, b: TransitionBuilder) -> None:
        """A participant reports its current estimate."""
        b.increment("estimates_received", because="Gathered one more estimate.")
        if (
            not b["estimate_sent"]
            and b["estimates_received"] >= self.external_majority
        ):
            b.send(
                "estimate",
                because=(
                    "Majority of estimates gathered: broadcast the chosen estimate."
                ),
            )
            b.set("estimate_sent", True)

    def _on_ack(self, b: TransitionBuilder) -> None:
        """A participant acknowledges the broadcast estimate."""
        if not b["estimate_sent"]:
            b.invalid("ack before the estimate was broadcast")
        b.increment("acks_received", because="A participant acknowledged.")
        if b["acks_received"] >= self.external_majority:
            b.send("decide", because="Majority acknowledged: broadcast decision.")
            b.set("decided", True)

    def _on_suspect(self, b: TransitionBuilder) -> None:
        """The failure detector suspects the coordinator: abort the round."""
        b.send("abort", because="Coordinator suspected: abort the round.")
        b.set("aborted", True)


def scenario_profile(suspect_after: float = 200.0, route_delay: float = 1.0):
    """Scenario annotations for an interacting CT coordinator round.

    Every topology-group member runs the coordinator FSM for its own
    round over the same process set: a member's broadcast ``estimate``
    action routes to its peers as the ``ack`` they would answer with,
    so one member reaching its broadcast threshold feeds every peer's
    ack count.  The ``suspect`` timer plays the failure
    detector: a round stuck in a non-final state for ``suspect_after``
    virtual time units is aborted, exactly the eventual-suspicion
    behaviour CT assumes.  Kick each member ``kicks_per_member`` times
    with ``estimate`` to reach the external majority for ``n = 5``.
    """
    from repro.serve.scenario import RouteRule, ScenarioProfile, TimerRule

    return ScenarioProfile(
        timers=(TimerRule(delay=suspect_after, message="suspect"),),
        routes=(RouteRule("estimate", "ack", delay=route_delay),),
        kicks=("estimate",),
        kicks_per_member=2,
    )
