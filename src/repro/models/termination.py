"""Distributed termination detection as a generated FSM family.

Paper §5.2: "most distributed termination algorithms are based upon message
counting", citing Mattern's observation that a computation has terminated
when every process is passive and the number of messages sent equals the
number received.  This model generates the per-process FSM of an
echo-style detector: the process counts outstanding local tasks, remembers
whether a termination probe is pending, and emits its echo once it is
passive — exactly the message-counting shape the methodology targets.

State components (parameter ``max_tasks`` bounds the task counter):

* ``pending_tasks`` — tasks accepted but not yet completed (0..max_tasks);
* ``probe_received`` — a probe from the detector is awaiting an echo;
* ``echoed`` — the echo has been sent (terminal).

Messages: ``task`` (new local work), ``done`` (a task completed),
``probe`` (the detector asks whether this process is passive).
"""

from __future__ import annotations

from repro.core.components import BooleanComponent, IntComponent
from repro.core.errors import ModelDefinitionError
from repro.core.model import AbstractModel, StateView, TransitionBuilder

MESSAGES = ("task", "done", "probe")


class TerminationModel(AbstractModel):
    """Per-process FSM family for echo-style termination detection."""

    def __init__(self, max_tasks: int):
        if max_tasks < 1:
            raise ModelDefinitionError(f"max_tasks must be >= 1, got {max_tasks}")
        super().__init__(max_tasks=max_tasks)
        self._max_tasks = max_tasks

    def configure(self, *, max_tasks: int):
        components = [
            IntComponent("pending_tasks", max_tasks),
            BooleanComponent("probe_received"),
            BooleanComponent("echoed"),
        ]
        return components, MESSAGES

    @property
    def max_tasks(self) -> int:
        """Upper bound on concurrently pending tasks."""
        return self._max_tasks

    def machine_name(self) -> str:
        return f"termination[max_tasks={self._max_tasks}]"

    def is_final(self, view: StateView) -> bool:
        return view["echoed"]

    def is_passive(self, view: StateView) -> bool:
        """Whether the process has no pending work."""
        return view["pending_tasks"] == 0

    def generate_transition(self, message: str, b: TransitionBuilder) -> None:
        if message == "task":
            self._on_task(b)
        elif message == "done":
            self._on_done(b)
        elif message == "probe":
            self._on_probe(b)

    def _on_task(self, b: TransitionBuilder) -> None:
        """New local work arrives; the process becomes (or stays) active."""
        b.increment("pending_tasks", because="Accepted a new local task.")

    def _on_done(self, b: TransitionBuilder) -> None:
        """A task completes; echo a pending probe if now passive."""
        if b["pending_tasks"] == 0:
            b.invalid("no pending task to complete")
        b.set(
            "pending_tasks",
            b["pending_tasks"] - 1,
            because="A local task completed.",
        )
        if b["pending_tasks"] == 0 and b["probe_received"]:
            b.send("echo", because="Now passive with a probe pending: echo.")
            b.set("echoed", True)

    def _on_probe(self, b: TransitionBuilder) -> None:
        """The detector probes this process."""
        if b["probe_received"]:
            return  # duplicate probe: no effect
        if b["pending_tasks"] == 0:
            b.send("echo", because="Passive when probed: echo immediately.")
            b.set("probe_received", True)
            b.set("echoed", True)
        else:
            b.set(
                "probe_received",
                True,
                because="Active when probed: defer the echo until passive.",
            )
