"""Problem-specific abstract models.

* :mod:`repro.models.commit` — the paper's BFT commit protocol (§2.2, §3);
* :mod:`repro.models.commit_efsm` — its 9-state EFSM formulation (§5.3);
* :mod:`repro.models.chandra_toueg` — a Chandra–Toueg-style coordinator
  round (§5.2);
* :mod:`repro.models.termination` — message-counting termination detection
  (§5.2);
* :mod:`repro.models.threshold_sig` — threshold-signature share collection
  (§5.2);
* :mod:`repro.models.session_hsm` — a hierarchical sessioned connection
  protocol (nested retry and auth regions);
* :mod:`repro.models.commit_hsm` — the generated commit machine embedded
  as a region of a hierarchical transactional session.
"""

from repro.core.errors import ModelDefinitionError
from repro.core.hsm import HierarchicalModel
from repro.models.chandra_toueg import CoordinatorRoundModel, majority
from repro.models.commit import (
    MESSAGES,
    MIN_REPLICATION_FACTOR,
    CommitModel,
    fault_tolerance,
    generate_commit_machine,
)
from repro.models.commit_efsm import (
    build_commit_efsm,
    commit_efsm_executor,
)
from repro.models.commit_hsm import build_commit_hsm
from repro.models.session_hsm import build_session_hsm
from repro.models.termination import TerminationModel
from repro.models.threshold_sig import ThresholdSignatureModel

#: Bundled hierarchical models, addressable from the CLI and benchmarks.
HIERARCHICAL_MODELS = ("session", "commit")


def build_hierarchical_model(
    name: str, replication_factor: int = 4, engine: str = "eager"
) -> HierarchicalModel:
    """Build a bundled hierarchical model by registry name.

    ``replication_factor`` and ``engine`` only affect models that embed a
    generated machine (currently ``commit``).
    """
    if name == "session":
        return build_session_hsm()
    if name == "commit":
        return build_commit_hsm(replication_factor, engine=engine)
    raise ModelDefinitionError(
        f"unknown hierarchical model {name!r}; choose from {HIERARCHICAL_MODELS}"
    )


__all__ = [
    "CommitModel",
    "CoordinatorRoundModel",
    "HIERARCHICAL_MODELS",
    "MESSAGES",
    "MIN_REPLICATION_FACTOR",
    "TerminationModel",
    "ThresholdSignatureModel",
    "build_commit_efsm",
    "build_commit_hsm",
    "build_hierarchical_model",
    "build_session_hsm",
    "commit_efsm_executor",
    "fault_tolerance",
    "generate_commit_machine",
    "majority",
]
