"""Problem-specific abstract models.

* :mod:`repro.models.commit` — the paper's BFT commit protocol (§2.2, §3);
* :mod:`repro.models.commit_efsm` — its 9-state EFSM formulation (§5.3);
* :mod:`repro.models.chandra_toueg` — a Chandra–Toueg-style coordinator
  round (§5.2);
* :mod:`repro.models.termination` — message-counting termination detection
  (§5.2);
* :mod:`repro.models.threshold_sig` — threshold-signature share collection
  (§5.2).
"""

from repro.models.chandra_toueg import CoordinatorRoundModel, majority
from repro.models.commit import (
    MESSAGES,
    MIN_REPLICATION_FACTOR,
    CommitModel,
    fault_tolerance,
    generate_commit_machine,
)
from repro.models.commit_efsm import (
    build_commit_efsm,
    commit_efsm_executor,
)
from repro.models.termination import TerminationModel
from repro.models.threshold_sig import ThresholdSignatureModel

__all__ = [
    "CommitModel",
    "CoordinatorRoundModel",
    "MESSAGES",
    "MIN_REPLICATION_FACTOR",
    "TerminationModel",
    "ThresholdSignatureModel",
    "build_commit_efsm",
    "commit_efsm_executor",
    "fault_tolerance",
    "generate_commit_machine",
    "majority",
]
