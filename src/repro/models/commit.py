"""Abstract model of the ASA Byzantine-fault-tolerant commit protocol.

This is the paper's motivating example (§2.2, §3, Figs 9/10/14/20).  Each
peer-set member runs one FSM instance per ongoing update to a GUID's version
history.  The instance tracks seven variables (paper §3.1)::

    update_received   whether the client's update request has arrived
    votes_received    count of vote messages from other members   (0..r-1)
    vote_sent         whether this member has voted for the update
    commits_received  count of commit messages from other members (0..r-1)
    commit_sent       whether this member has sent its commit
    could_choose      whether a future update could be voted for
    has_chosen        whether *this* update was voted for locally

and reacts to five messages: ``update``, ``vote``, ``commit``, ``free`` and
``not_free`` (the last two are exchanged between sibling FSM instances on
the same node to serialise local voting).

Thresholds, for replication factor ``r`` tolerating ``f = floor((r-1)/3)``
Byzantine members:

* **vote threshold** ``2f+1`` on *total* votes (sent + received): once a
  candidate update has this many votes, every member agrees it is next, and
  a commit message is sent;
* **external commit threshold** ``f+1`` on commits received: the operation
  is finished once ``f+1`` members (beyond any local commit) have confirmed.

Calibrated semantics (see DESIGN.md §3): receiving the ``(f+1)``-th commit
performs the final actions and lands in a concrete *terminal* state with
``commits_received = f+1``; all states with ``commits_received >= f+1`` are
final and generate no outgoing transitions.  Voting does not clear the local
``could_choose`` flag — the ``not free`` action clears it on siblings.

With these semantics the generated family reproduces the paper's Table 1
exactly: 512 -> 48 -> 33 states for r=4, and merged sizes
``12 f^2 + 16 f + 5`` for every published (f, r) pair.
"""

from __future__ import annotations

from repro.core.components import BooleanComponent, IntComponent
from repro.core.errors import ModelDefinitionError
from repro.core.machine import StateMachine
from repro.core.model import AbstractModel, StateView, TransitionBuilder

#: Message alphabet, in the paper's declaration order (Fig 20).
MESSAGES = ("update", "vote", "commit", "free", "not_free")

#: Smallest replication factor yielding a BFT algorithm (paper §3.1).
MIN_REPLICATION_FACTOR = 4


def fault_tolerance(replication_factor: int) -> int:
    """Maximum number of tolerated Byzantine members: ``floor((r-1)/3)``."""
    return (replication_factor - 1) // 3


class CommitModel(AbstractModel):
    """Generator for the family of commit-protocol FSMs.

    ``CommitModel(replication_factor=r).generate_state_machine()`` plays the
    role of the paper's ``new AbstractModel().generateStateMachine(r)``.
    """

    def __init__(self, replication_factor: int):
        if replication_factor < MIN_REPLICATION_FACTOR:
            raise ModelDefinitionError(
                f"replication factor must be >= {MIN_REPLICATION_FACTOR} "
                f"(need r > 3f for Byzantine fault tolerance), got {replication_factor}"
            )
        super().__init__(replication_factor=replication_factor)
        self._r = replication_factor
        self._f = fault_tolerance(replication_factor)

    # ------------------------------------------------------------------
    # declaration (paper Fig 20)
    # ------------------------------------------------------------------

    def configure(self, *, replication_factor: int):
        components = [
            BooleanComponent("update_received"),
            IntComponent("votes_received", replication_factor - 1),
            BooleanComponent("vote_sent"),
            IntComponent("commits_received", replication_factor - 1),
            BooleanComponent("commit_sent"),
            BooleanComponent("could_choose"),
            BooleanComponent("has_chosen"),
        ]
        return components, MESSAGES

    # ------------------------------------------------------------------
    # thresholds
    # ------------------------------------------------------------------

    @property
    def replication_factor(self) -> int:
        """Number of peer-set members (``r``)."""
        return self._r

    @property
    def tolerated_faults(self) -> int:
        """Number of Byzantine members tolerated (``f``)."""
        return self._f

    @property
    def vote_threshold(self) -> int:
        """Total votes (sent + received) needed to agree on the update."""
        return 2 * self._f + 1

    @property
    def commit_threshold(self) -> int:
        """External commits needed before the operation is finished."""
        return self._f + 1

    def total_votes(self, view: StateView) -> int:
        """Votes received plus the local vote, if sent."""
        return view["votes_received"] + (1 if view["vote_sent"] else 0)

    def machine_name(self) -> str:
        return f"commit[r={self._r}]"

    # ------------------------------------------------------------------
    # finality
    # ------------------------------------------------------------------

    def is_final(self, view: StateView) -> bool:
        """Finished once the external commit threshold has been reached.

        The commit algorithm completes as soon as ``f+1`` commit messages
        have been received (paper §3.4), so every state at or beyond the
        threshold is terminal; step 4 merges the reachable ones into the
        single finish state.
        """
        return view["commits_received"] >= self.commit_threshold

    # ------------------------------------------------------------------
    # transition logic (paper Figs 9 and 10)
    # ------------------------------------------------------------------

    def generate_transition(self, message: str, b: TransitionBuilder) -> None:
        if message == "update":
            self._on_update(b)
        elif message == "vote":
            self._on_vote(b)
        elif message == "commit":
            self._on_commit(b)
        elif message == "free":
            self._on_free(b)
        elif message == "not_free":
            self._on_not_free(b)
        else:  # pragma: no cover - guarded by the pipeline's message loop
            b.invalid(f"unknown message {message!r}")

    def _on_update(self, b: TransitionBuilder) -> None:
        """Client update request arrives at this member."""
        if not b["update_received"]:
            b.set(
                "update_received", True, because="Received initial update from client."
            )
        if b["could_choose"] and not b["has_chosen"] and not b["vote_sent"]:
            self._vote(
                b, because="No other update is in progress, so vote for this one."
            )
            if self.total_votes(b) >= self.vote_threshold:
                self._commit_if_unsent(b)
            self._choose(b)

    def _on_vote(self, b: TransitionBuilder) -> None:
        """Vote message from another peer-set member."""
        b.increment("votes_received", because="Another member voted for this update.")
        if self.total_votes(b) >= self.vote_threshold:
            # Phase transition: vote threshold reached (paper Fig 10).
            if not b["vote_sent"]:
                if b["could_choose"]:
                    self._choose(b)
                self._vote(
                    b,
                    because=(
                        f"Vote threshold ({self.vote_threshold}) reached: "
                        "vote with the majority even though not chosen locally."
                    ),
                )
            self._commit_if_unsent(b)

    def _on_commit(self, b: TransitionBuilder) -> None:
        """Commit message from another peer-set member."""
        b.increment("commits_received", because="Another member committed this update.")
        if b["commits_received"] >= self.commit_threshold:
            # Finishing phase transition: ensure our own vote and commit are
            # out, release siblings if we chose this update, then terminate.
            if not b["vote_sent"]:
                self._vote(
                    b,
                    because=(
                        f"External commit threshold ({self.commit_threshold}) reached "
                        "before voting: catch up by voting now."
                    ),
                )
            self._commit_if_unsent(b)
            if b["has_chosen"]:
                b.send(
                    "free",
                    because="This update was chosen locally; free sibling instances.",
                )
            b.annotate("Operation finished: agreed ordering recorded.")

    def _on_free(self, b: TransitionBuilder) -> None:
        """A sibling instance released its claim on the local vote."""
        if b["vote_sent"] or b["has_chosen"]:
            return  # no effect once this instance has voted or chosen
        b.set("could_choose", True, because="No other update is in progress any more.")
        if b["update_received"]:
            self._vote(
                b, because="Update already received: vote for it now that we may."
            )
            if self.total_votes(b) >= self.vote_threshold:
                self._commit_if_unsent(b)
            self._choose(b)

    def _on_not_free(self, b: TransitionBuilder) -> None:
        """A sibling instance claimed the local vote for another update."""
        if b["vote_sent"] or b["has_chosen"]:
            return  # too late to affect this instance
        if b["could_choose"]:
            b.set(
                "could_choose",
                False,
                because="Another ongoing update has been voted for locally.",
            )

    # ------------------------------------------------------------------
    # shared elaboration steps (the paper's targetOnX() utilities)
    # ------------------------------------------------------------------

    def _vote(self, b: TransitionBuilder, because: str) -> None:
        """Send our vote to all other members (``targetOnVoteSent``)."""
        b.send("vote", because=because)
        b.set("vote_sent", True)

    def _commit_if_unsent(self, b: TransitionBuilder) -> None:
        """Send our commit if not already sent (``targetOnCommitSent``)."""
        if not b["commit_sent"]:
            b.send(
                "commit",
                because=(
                    f"Threshold reached (vote threshold {self.vote_threshold} or "
                    f"external commit threshold {self.commit_threshold}): send commit."
                ),
            )
            b.set("commit_sent", True)

    def _choose(self, b: TransitionBuilder) -> None:
        """Mark this update as locally chosen and notify sibling instances."""
        b.set("has_chosen", True)
        b.send(
            "not_free",
            because="This update is now the locally chosen one; block siblings.",
        )

    # ------------------------------------------------------------------
    # documentation (paper Fig 14 commentary, generated from annotations)
    # ------------------------------------------------------------------

    def describe_state(self, view: StateView) -> list[str]:
        lines: list[str] = []
        update_received = view["update_received"]
        votes_received = view["votes_received"]
        vote_sent = view["vote_sent"]
        commits_received = view["commits_received"]
        commit_sent = view["commit_sent"]
        could_choose = view["could_choose"]
        has_chosen = view["has_chosen"]

        if update_received:
            lines.append("Have received initial update from client.")
        else:
            lines.append("Have not yet received initial update from client.")

        if vote_sent:
            lines.append("Have voted for this update.")
        elif could_choose:
            lines.append("Have not yet voted for this update.")
        else:
            lines.append(
                "Have not voted since another update has already been voted for."
            )

        lines.append(
            f"Have received {_count_phrase(votes_received, 'vote')} "
            f"and {_count_phrase(commits_received, 'commit')}."
        )

        if commit_sent:
            lines.append("Have sent a commit.")
        else:
            lines.append(
                f"Have not sent a commit since neither the vote threshold "
                f"({self.vote_threshold}) nor the external commit threshold "
                f"({self.commit_threshold}) has been reached."
            )

        if could_choose:
            lines.append("May choose this update if it is received.")
        else:
            lines.append(
                "May not choose since another ongoing update has been voted for."
            )

        if has_chosen:
            lines.append("Have chosen this update as the locally selected one.")
        else:
            lines.append(
                "Have not chosen this update since another ongoing update has been chosen."
            )

        if self.is_final(view):
            lines.append("Finished: the external commit threshold has been reached.")
            return lines

        votes_needed = self.vote_threshold - self.total_votes(view)
        if not commit_sent and votes_needed > 0:
            lines.append(
                f"Waiting for {_number_word(votes_needed)} further "
                f"vote{'s' if votes_needed != 1 else ''} (including local vote if any) "
                f"before sending commit."
            )
        commits_needed = self.commit_threshold - commits_received
        lines.append(
            f"Waiting for {_number_word(commits_needed)} further external "
            f"commit{'s' if commits_needed != 1 else ''} to finish."
        )
        return lines


def _count_phrase(count: int, noun: str) -> str:
    """Render a message count the way Fig 14 does ("2 votes", "no commits")."""
    if count == 0:
        return f"no {noun}s"
    if count == 1:
        return f"1 {noun}"
    return f"{count} {noun}s"


def _number_word(n: int) -> str:
    """Small numbers as digits, matching the paper's Fig 14 text."""
    return str(n)


def generate_commit_machine(
    replication_factor: int, *, prune: bool = True, merge: bool = True
) -> StateMachine:
    """Convenience mirror of the paper's Fig 6 usage.

    Equivalent to ``CommitModel(replication_factor).generate_state_machine()``.
    """
    return CommitModel(replication_factor).generate_state_machine(
        prune=prune, merge=merge
    )


def scenario_profile(retry_after: float = 60.0, route_delay: float = 1.0):
    """Scenario annotations making the commit peer set an interacting fleet.

    A topology group plays one peer set, one FSM instance per member for
    the same update (paper §3.1).  The protocol's peer-to-peer messages
    become routing rules — a member's fired ``vote``/``commit`` action
    *is* the ``vote``/``commit`` message its peers receive, and the
    sibling-serialisation actions ``free``/``not_free`` fan out the same
    way — so one external ``update`` + ``free`` kick pair per member
    (``free`` grants the initial local voting permission, since
    ``could_choose`` starts cleared) runs the whole BFT commit round
    machine-to-machine.

    The timer is the liveness mechanism: a routed ``not_free`` can land
    between a member's ``free`` and ``update`` kicks and clear its
    voting permission for good — with few voters the vote threshold is
    then out of reach and the group deadlocks.  An instance parked in
    any non-final state for ``retry_after`` virtual time units receives
    ``free`` again (a sibling retry releasing its claim), restoring
    permission and with it progress; members that already voted take it
    as a no-effect self-loop.
    """
    from repro.serve.scenario import RouteRule, ScenarioProfile, TimerRule

    return ScenarioProfile(
        timers=(TimerRule(delay=retry_after, message="free"),),
        routes=(
            RouteRule("vote", "vote", delay=route_delay),
            RouteRule("commit", "commit", delay=route_delay),
            RouteRule("free", "free", delay=route_delay),
            RouteRule("not_free", "not_free", delay=route_delay),
        ),
        kicks=("update", "free"),
        kicks_per_member=1,
    )
