"""A sessioned connection protocol, authored hierarchically.

The canonical "structure-first" design the flattening literature uses to
motivate hierarchy: a connection lifecycle with a nested retry region
around connection establishment, a nested authentication region inside
the connected super-state, and root-level escape transitions
(``disconnect`` / ``fatal``) inherited by every state of the protocol::

    session
    ├── Disconnected                    (initial)
    ├── Connecting        [retry region; entry ->start_timer, exit ->stop_timer]
    │   ├── SynSent                     (initial)
    │   └── AwaitRetry
    ├── Connected         [entry ->start_keepalive, exit ->stop_keepalive]
    │   ├── Auth          [auth region; entry ->begin_auth]
    │   │   ├── AwaitChallenge          (initial)
    │   │   └── AwaitVerdict
    │   ├── Active        [entry ->session_ready]
    │   │   ├── Idle                    (initial)
    │   │   └── Busy
    │   └── Suspended
    ├── Maintenance                     (deliberately unreachable)
    └── Closed                          (final)

The ``Maintenance`` leaf is targeted by nothing: the eager flattening
engine materialises and then prunes it, the lazy engine never expands it
— the bundled model exercises both paths of the pipeline.
"""

from __future__ import annotations

from repro.core.hsm import HierarchicalModel

#: Message alphabet of the session protocol, in declaration order.
SESSION_MESSAGES = (
    "connect",
    "syn_ack",
    "timeout",
    "refused",
    "resume",
    "challenge",
    "proof_ok",
    "proof_bad",
    "auth_retry",
    "request",
    "done",
    "ping",
    "pause",
    "disconnect",
    "fatal",
)


def build_session_hsm() -> HierarchicalModel:
    """The sessioned connection protocol as a :class:`HierarchicalModel`."""
    model = HierarchicalModel("session", messages=SESSION_MESSAGES)
    root = model.root
    # Escape hatches, inherited by every state of the protocol.
    root.on("disconnect", "Disconnected", actions=("->teardown",))
    root.on("fatal", "Closed", actions=("->log_fatal",))

    root.leaf(
        "Disconnected",
        initial=True,
        annotations=("No connection; all session context torn down.",),
    ).on("connect", "Connecting", actions=("->open_socket",))

    connecting = root.composite(
        "Connecting",
        entry=("->start_timer",),
        exit=("->stop_timer",),
        annotations=("Connection establishment with a retry region.",),
    )
    # Inherited by both establishment leaves: a timeout moves to the
    # backoff leaf, a refusal abandons the attempt entirely.
    connecting.on("timeout", "AwaitRetry", actions=("->backoff",))
    connecting.on("refused", "Disconnected", actions=("->give_up",))
    connecting.leaf("SynSent", initial=True).on(
        "syn_ack", "Connected", actions=("->established",)
    )
    # Retrying re-enters the whole region: Connecting's exit and entry
    # actions (timer stop/start) run again — the external-transition
    # semantics the flattening pipeline must preserve.
    connecting.leaf("AwaitRetry").on("resume", "Connecting", actions=("->retry",))

    connected = root.composite(
        "Connected",
        entry=("->start_keepalive",),
        exit=("->stop_keepalive",),
        annotations=("Established connection: authenticate, then serve.",),
    )
    auth = connected.composite("Auth", initial=True, entry=("->begin_auth",))
    auth.on("auth_retry", "Auth", actions=("->restart_auth",))
    auth.leaf("AwaitChallenge", initial=True).on(
        "challenge", "AwaitVerdict", actions=("->send_proof",)
    )
    verdict = auth.leaf("AwaitVerdict")
    verdict.on("proof_ok", "Active", actions=("->auth_ok",))
    verdict.on("proof_bad", "Disconnected", actions=("->log_auth_failure",))

    active = connected.composite("Active", entry=("->session_ready",))
    active.on("pause", "Suspended", actions=("->save_context",))
    idle = active.leaf("Idle", initial=True)
    idle.on("request", "Busy", actions=("->serve",))
    idle.on("ping", "Idle", actions=("->pong",))
    active.leaf("Busy").on("done", "Idle", actions=("->respond",))

    connected.leaf("Suspended").on("resume", "Active", actions=("->restore_context",))

    # Deliberately unreachable: nothing targets Maintenance, so eager
    # flattening prunes it and lazy flattening never materialises it.
    root.leaf(
        "Maintenance",
        annotations=("Operator-only state, not reachable from the protocol.",),
    ).on("resume", "Disconnected")

    root.leaf(
        "Closed",
        final=True,
        annotations=("Fatal error: the session can never be reused.",),
    )
    model.set_finish("Closed")
    model.validate()
    return model
