"""Threshold-signature share collection as a generated FSM family.

Paper §5.2 lists threshold signature algorithms among the message-counting
algorithms the methodology applies to.  This model captures a collector
assembling a ``k``-of-``n`` threshold signature: it requests shares, counts
share messages from the ``n`` signers, contributes its own share, and
assembles the signature once ``k`` shares are available.

State components (parameters ``n`` = signers, ``k`` = threshold):

* ``request_received`` — the application asked for a signature;
* ``shares_received`` — counter of shares from other signers (0..n-1);
* ``share_sent`` — whether the local share has been contributed;
* ``assembled`` — whether the signature has been assembled (terminal).

Messages: ``request`` (application trigger), ``share`` (a signer's share),
``revoke`` (a signer withdraws; only meaningful before assembly).
"""

from __future__ import annotations

from repro.core.components import BooleanComponent, IntComponent
from repro.core.errors import ModelDefinitionError
from repro.core.model import AbstractModel, StateView, TransitionBuilder

MESSAGES = ("request", "share", "revoke")


class ThresholdSignatureModel(AbstractModel):
    """Collector FSM family for ``k``-of-``n`` threshold signatures."""

    def __init__(self, signers: int, threshold: int):
        if signers < 1:
            raise ModelDefinitionError(f"need at least one signer, got {signers}")
        if not 1 <= threshold <= signers:
            raise ModelDefinitionError(
                f"threshold must be in 1..{signers}, got {threshold}"
            )
        super().__init__(signers=signers, threshold=threshold)
        self._n = signers
        self._k = threshold

    def configure(self, *, signers: int, threshold: int):
        components = [
            BooleanComponent("request_received"),
            IntComponent("shares_received", signers - 1),
            BooleanComponent("share_sent"),
            BooleanComponent("assembled"),
        ]
        return components, MESSAGES

    @property
    def signers(self) -> int:
        """Total number of signers (``n``)."""
        return self._n

    @property
    def threshold(self) -> int:
        """Shares needed to assemble the signature (``k``)."""
        return self._k

    def total_shares(self, view: StateView) -> int:
        """Shares received plus the local share, if contributed."""
        return view["shares_received"] + (1 if view["share_sent"] else 0)

    def machine_name(self) -> str:
        return f"threshold-sig[n={self._n},k={self._k}]"

    def is_final(self, view: StateView) -> bool:
        return view["assembled"]

    def generate_transition(self, message: str, b: TransitionBuilder) -> None:
        if message == "request":
            self._on_request(b)
        elif message == "share":
            self._on_share(b)
        elif message == "revoke":
            self._on_revoke(b)

    def _on_request(self, b: TransitionBuilder) -> None:
        """The application requests a signature: contribute the local share."""
        if not b["request_received"]:
            b.set("request_received", True, because="Signature requested.")
        if not b["share_sent"]:
            b.send("share", because="Contribute the local signature share.")
            b.set("share_sent", True)
            self._assemble_if_ready(b)

    def _on_share(self, b: TransitionBuilder) -> None:
        """A signer's share arrives."""
        b.increment("shares_received", because="Received a signature share.")
        self._assemble_if_ready(b)

    def _on_revoke(self, b: TransitionBuilder) -> None:
        """A signer withdraws a previously supplied share."""
        if b["shares_received"] == 0:
            b.invalid("no shares to revoke")
        b.set(
            "shares_received",
            b["shares_received"] - 1,
            because="A signer revoked its share.",
        )

    def _assemble_if_ready(self, b: TransitionBuilder) -> None:
        if b["request_received"] and self.total_shares(b) >= self._k:
            b.send("assemble", because=f"Threshold of {self._k} shares reached.")
            b.set("assembled", True)
