"""The commit protocol as a 9-state EFSM (paper §5.3).

Mapping the message-counting variables (``votes_received``,
``commits_received``) to EFSM variables coalesces all FSM states within a
phase: "all of the FSM states that differ only in the number of vote
messages below the threshold become a single EFSM state.  The resulting
EFSM contains 9 states" — and its state space is independent of the
replication factor, which enters only through the guard thresholds.

The nine states are the reachable combinations of the five flags
(update_received / vote_sent / commit_sent / could_choose / has_chosen)
plus the terminal state:

====================  =====================================================
``F/F/F/F/F``         start: nothing received, may not choose
``F/F/F/T/F``         free to choose, no update yet
``T/F/F/F/F``         update received while another update is in progress
``T/T/F/T/T``         voted voluntarily, below the vote threshold
``F/T/T/F/F``         vote forced at threshold (not chosen), no update yet
``F/T/T/T/T``         vote at threshold while free to choose, no update yet
``T/T/T/F/F``         voted and committed, not chosen locally
``T/T/T/T/T``         voted and committed, chosen locally
``FINISHED``          external commit threshold reached
====================  =====================================================

Guards and updates are declared as *code strings* over the variable dict
``v`` and parameter dict ``p`` (``f = (r-1)//3``, vote threshold ``2f+1``
on total votes counting the local vote encoded in the state flags, finish
threshold ``f+1`` on commits received).  The strings are compiled for
execution and embedded verbatim by the EFSM source renderer
(:mod:`repro.render.efsm_source`), making the EFSM itself a generation
artefact as the paper's abstract proposes.  The structure is
cross-validated against the phase quotient of generated FSMs in
:mod:`repro.analysis.spectrum`.
"""

from __future__ import annotations

from repro.core.efsm import Efsm, EfsmExecutor, EfsmState, EfsmTransition, EfsmVariable
from repro.models.commit import MESSAGES

#: EFSM state names: update_received/vote_sent/commit_sent/could_choose/has_chosen.
START = "F/F/F/F/F"
FREE_NO_UPDATE = "F/F/F/T/F"
UPDATE_BLOCKED = "T/F/F/F/F"
VOTED_BELOW_THRESHOLD = "T/T/F/T/T"
FORCED_VOTE_NO_UPDATE = "F/T/T/F/F"
CHOSEN_VOTE_NO_UPDATE = "F/T/T/T/T"
COMMITTED_NOT_CHOSEN = "T/T/T/F/F"
COMMITTED_CHOSEN = "T/T/T/T/T"
FINISHED = "FINISHED"

#: All nine states in canonical order.
STATE_NAMES = (
    START,
    FREE_NO_UPDATE,
    UPDATE_BLOCKED,
    VOTED_BELOW_THRESHOLD,
    FORCED_VOTE_NO_UPDATE,
    CHOSEN_VOTE_NO_UPDATE,
    COMMITTED_NOT_CHOSEN,
    COMMITTED_CHOSEN,
    FINISHED,
)

# Threshold fragments used inside guard code strings.
_F = "((p['replication_factor'] - 1) // 3)"
_VT = f"(2 * {_F} + 1)"
_CT = f"({_F} + 1)"
_MAX = "(p['replication_factor'] - 1)"

_INC_VOTES = "v['votes_received'] += 1"
_INC_COMMITS = "v['commits_received'] += 1"


def _votes_reach(local_vote: int) -> str:
    """Guard: total votes after this increment reach the vote threshold."""
    return f"v['votes_received'] + 1 + {local_vote} >= {_VT}"


def _votes_below(local_vote: int) -> str:
    return (
        f"v['votes_received'] + 1 + {local_vote} < {_VT} "
        f"and v['votes_received'] < {_MAX}"
    )


_VOTE_IN_RANGE = f"v['votes_received'] < {_MAX}"
_COMMITS_FINISH = f"v['commits_received'] + 1 >= {_CT}"
_COMMITS_BELOW = f"v['commits_received'] + 1 < {_CT}"


def build_commit_efsm() -> Efsm:
    """Construct the 9-state commit EFSM (generic in the replication factor)."""
    efsm = Efsm(
        "commit-efsm",
        messages=MESSAGES,
        variables=[EfsmVariable("votes_received"), EfsmVariable("commits_received")],
        parameters=["replication_factor"],
    )
    states = {
        name: efsm.add_state(EfsmState(name, final=(name == FINISHED)))
        for name in STATE_NAMES
    }
    efsm.set_start(START)

    def add(source: str, message: str, target: str, *, guard_code=None,
            guard_text="", update_code=None, actions=()) -> None:
        states[source].add(
            EfsmTransition(
                message,
                target,
                guard_code=guard_code,
                guard_text=guard_text,
                update_code=update_code,
                actions=actions,
            )
        )

    # ---------------------------------------------------------------- START
    add(START, "update", UPDATE_BLOCKED)
    add(
        START, "vote", FORCED_VOTE_NO_UPDATE,
        guard_code=_votes_reach(0), guard_text="votes_received + 1 >= 2f+1",
        update_code=_INC_VOTES,
        actions=("->vote", "->commit"),
    )
    add(
        START, "vote", START,
        guard_code=_votes_below(0), guard_text="votes_received + 1 < 2f+1",
        update_code=_INC_VOTES,
    )
    add(
        START, "commit", FINISHED,
        guard_code=_COMMITS_FINISH, guard_text="commits_received + 1 >= f+1",
        update_code=_INC_COMMITS,
        actions=("->vote", "->commit"),
    )
    add(
        START, "commit", START,
        guard_code=_COMMITS_BELOW, guard_text="commits_received + 1 < f+1",
        update_code=_INC_COMMITS,
    )
    add(START, "free", FREE_NO_UPDATE)

    # -------------------------------------------------------- FREE_NO_UPDATE
    add(
        FREE_NO_UPDATE, "update", COMMITTED_CHOSEN,
        guard_code=_votes_reach(0),  # the local vote is sent in this transition
        guard_text="votes_received + 1 >= 2f+1 (counting the local vote)",
        actions=("->vote", "->commit", "->not_free"),
    )
    add(
        FREE_NO_UPDATE, "update", VOTED_BELOW_THRESHOLD,
        guard_text="votes_received + 1 < 2f+1 (counting the local vote)",
        actions=("->vote", "->not_free"),
    )
    add(
        FREE_NO_UPDATE, "vote", CHOSEN_VOTE_NO_UPDATE,
        guard_code=_votes_reach(0), guard_text="votes_received + 1 >= 2f+1",
        update_code=_INC_VOTES,
        actions=("->not_free", "->vote", "->commit"),
    )
    add(
        FREE_NO_UPDATE, "vote", FREE_NO_UPDATE,
        guard_code=_votes_below(0), guard_text="votes_received + 1 < 2f+1",
        update_code=_INC_VOTES,
    )
    add(
        FREE_NO_UPDATE, "commit", FINISHED,
        guard_code=_COMMITS_FINISH, guard_text="commits_received + 1 >= f+1",
        update_code=_INC_COMMITS,
        actions=("->vote", "->commit"),
    )
    add(
        FREE_NO_UPDATE, "commit", FREE_NO_UPDATE,
        guard_code=_COMMITS_BELOW, guard_text="commits_received + 1 < f+1",
        update_code=_INC_COMMITS,
    )
    add(FREE_NO_UPDATE, "not_free", START)

    # -------------------------------------------------------- UPDATE_BLOCKED
    add(
        UPDATE_BLOCKED, "vote", COMMITTED_NOT_CHOSEN,
        guard_code=_votes_reach(0), guard_text="votes_received + 1 >= 2f+1",
        update_code=_INC_VOTES,
        actions=("->vote", "->commit"),
    )
    add(
        UPDATE_BLOCKED, "vote", UPDATE_BLOCKED,
        guard_code=_votes_below(0), guard_text="votes_received + 1 < 2f+1",
        update_code=_INC_VOTES,
    )
    add(
        UPDATE_BLOCKED, "commit", FINISHED,
        guard_code=_COMMITS_FINISH, guard_text="commits_received + 1 >= f+1",
        update_code=_INC_COMMITS,
        actions=("->vote", "->commit"),
    )
    add(
        UPDATE_BLOCKED, "commit", UPDATE_BLOCKED,
        guard_code=_COMMITS_BELOW, guard_text="commits_received + 1 < f+1",
        update_code=_INC_COMMITS,
    )
    add(
        UPDATE_BLOCKED, "free", COMMITTED_CHOSEN,
        guard_code=_votes_reach(0),
        guard_text="votes_received + 1 >= 2f+1 (counting the local vote)",
        actions=("->vote", "->commit", "->not_free"),
    )
    add(
        UPDATE_BLOCKED, "free", VOTED_BELOW_THRESHOLD,
        guard_text="votes_received + 1 < 2f+1 (counting the local vote)",
        actions=("->vote", "->not_free"),
    )

    # ------------------------------------------------- VOTED_BELOW_THRESHOLD
    add(
        VOTED_BELOW_THRESHOLD, "vote", COMMITTED_CHOSEN,
        guard_code=_votes_reach(1), guard_text="votes_received + 2 >= 2f+1",
        update_code=_INC_VOTES,
        actions=("->commit",),
    )
    add(
        VOTED_BELOW_THRESHOLD, "vote", VOTED_BELOW_THRESHOLD,
        guard_code=_votes_below(1), guard_text="votes_received + 2 < 2f+1",
        update_code=_INC_VOTES,
    )
    add(
        VOTED_BELOW_THRESHOLD, "commit", FINISHED,
        guard_code=_COMMITS_FINISH, guard_text="commits_received + 1 >= f+1",
        update_code=_INC_COMMITS,
        actions=("->commit", "->free"),
    )
    add(
        VOTED_BELOW_THRESHOLD, "commit", VOTED_BELOW_THRESHOLD,
        guard_code=_COMMITS_BELOW, guard_text="commits_received + 1 < f+1",
        update_code=_INC_COMMITS,
    )

    # ------------------------------------------- the four voted+committed states
    for source, after_update, finish_actions in (
        (FORCED_VOTE_NO_UPDATE, COMMITTED_NOT_CHOSEN, ()),
        (CHOSEN_VOTE_NO_UPDATE, COMMITTED_CHOSEN, ("->free",)),
        (COMMITTED_NOT_CHOSEN, None, ()),
        (COMMITTED_CHOSEN, None, ("->free",)),
    ):
        if after_update is not None:
            add(source, "update", after_update)
        add(
            source, "vote", source,
            guard_code=_VOTE_IN_RANGE, guard_text="votes_received < r-1",
            update_code=_INC_VOTES,
        )
        add(
            source, "commit", FINISHED,
            guard_code=_COMMITS_FINISH, guard_text="commits_received + 1 >= f+1",
            update_code=_INC_COMMITS,
            actions=finish_actions,
        )
        add(
            source, "commit", source,
            guard_code=_COMMITS_BELOW, guard_text="commits_received + 1 < f+1",
            update_code=_INC_COMMITS,
        )

    efsm.check_integrity()
    return efsm


def commit_efsm_executor(replication_factor: int, sink=None) -> EfsmExecutor:
    """An executor for the commit EFSM at a concrete replication factor."""
    return EfsmExecutor(
        build_commit_efsm(),
        {"replication_factor": replication_factor},
        sink=sink,
    )
