"""The "original algorithm": the non-FSM baseline (paper §3.1–3.2).

Before the FSM formulation existed, the commit protocol was "a single
generic algorithm ... parameterised by the replication factor" — one state,
many variables.  This module implements that algorithm directly, with the
same driving protocol as the generated machines (``receive`` /
``get_state`` / ``is_finished`` / ``sent``), for two purposes:

* **differential testing** — on any message trace, the generic algorithm
  and every generated FSM (interpreted or compiled) must perform the same
  actions and visit the same encoded states;
* **the §4.4 runtime comparison** the paper left unmeasured ("We have not
  yet compared the execution efficiency of a running FSM implementation
  with that of a non-FSM solution") — see ``benchmarks/bench_runtime_exec``.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Optional

from repro.core.errors import ModelDefinitionError
from repro.models.commit import MIN_REPLICATION_FACTOR, MESSAGES, fault_tolerance

#: State name used once the algorithm has completed, matching the merged FSM.
FINISHED_NAME = "FINISHED"


class GenericCommitAlgorithm:
    """Variable-based implementation of the BFT commit protocol."""

    def __init__(
        self,
        replication_factor: int,
        sink: Optional[Callable[[str], None]] = None,
    ):
        if replication_factor < MIN_REPLICATION_FACTOR:
            raise ModelDefinitionError(
                f"replication factor must be >= {MIN_REPLICATION_FACTOR}, "
                f"got {replication_factor}"
            )
        self._r = replication_factor
        self._f = fault_tolerance(replication_factor)
        self._vote_threshold = 2 * self._f + 1
        self._commit_threshold = self._f + 1
        self._sink = sink
        self.sent: list[str] = []

        # The seven variables of paper §3.1.
        self.update_received = False
        self.votes_received = 0
        self.vote_sent = False
        self.commits_received = 0
        self.commit_sent = False
        self.could_choose = False
        self.has_chosen = False
        self._finished = False

    # ------------------------------------------------------------------
    # driving protocol (same as generated machines)
    # ------------------------------------------------------------------

    @property
    def replication_factor(self) -> int:
        """Peer-set size ``r``."""
        return self._r

    def is_finished(self) -> bool:
        """Whether the operation has completed."""
        return self._finished

    def get_state(self) -> str:
        """Encoded state name, comparable with the unmerged FSM's names."""
        if self._finished:
            return FINISHED_NAME
        flags = [
            self.update_received,
            None,
            self.vote_sent,
            None,
            self.commit_sent,
            self.could_choose,
            self.has_chosen,
        ]
        parts = []
        for index, flag in enumerate(flags):
            if index == 1:
                parts.append(str(self.votes_received))
            elif index == 3:
                parts.append(str(self.commits_received))
            else:
                parts.append("T" if flag else "F")
        return "/".join(parts)

    def vector_name(self) -> str:
        """Encoded variable values even when finished (for pruned-FSM diffs)."""
        saved, self._finished = self._finished, False
        try:
            return self.get_state()
        finally:
            self._finished = saved

    def receive(self, message: str) -> bool:
        """Process a message; returns ``True`` if it had any effect."""
        if message not in MESSAGES:
            raise ValueError(f"unknown message {message!r}")
        if self._finished:
            return False
        handler = getattr(self, f"_on_{message}")
        return handler()

    def run(self, messages: list[str]) -> list[str]:
        """Feed a message sequence; returns the actions it performed."""
        before = len(self.sent)
        for message in messages:
            self.receive(message)
        return self.sent[before:]

    # ------------------------------------------------------------------
    # the algorithm (paper Fig 9, normalised as in DESIGN.md §3)
    # ------------------------------------------------------------------

    def _total_votes(self) -> int:
        return self.votes_received + (1 if self.vote_sent else 0)

    def _send(self, action: str) -> None:
        self.sent.append(action)
        if self._sink is not None:
            self._sink(action)

    def _send_vote(self) -> None:
        self._send("vote")
        self.vote_sent = True

    def _send_commit_if_unsent(self) -> None:
        if not self.commit_sent:
            self._send("commit")
            self.commit_sent = True

    def _choose(self) -> None:
        self.has_chosen = True
        self._send("not_free")

    def _on_update(self) -> bool:
        changed = False
        if not self.update_received:
            self.update_received = True
            changed = True
        if self.could_choose and not self.has_chosen and not self.vote_sent:
            self._send_vote()
            if self._total_votes() >= self._vote_threshold:
                self._send_commit_if_unsent()
            self._choose()
            changed = True
        return changed

    def _on_vote(self) -> bool:
        if self.votes_received == self._r - 1:
            return False  # message not applicable: counter at maximum
        self.votes_received += 1
        if self._total_votes() >= self._vote_threshold:
            if not self.vote_sent:
                if self.could_choose:
                    self._choose()
                self._send_vote()
            self._send_commit_if_unsent()
        return True

    def _on_commit(self) -> bool:
        self.commits_received += 1
        if self.commits_received >= self._commit_threshold:
            if not self.vote_sent:
                self._send_vote()
            self._send_commit_if_unsent()
            if self.has_chosen:
                self._send("free")
            self._finished = True
        return True

    def _on_free(self) -> bool:
        if self.vote_sent or self.has_chosen:
            return False
        self.could_choose = True
        if self.update_received:
            self._send_vote()
            if self._total_votes() >= self._vote_threshold:
                self._send_commit_if_unsent()
            self._choose()
        return True

    def _on_not_free(self) -> bool:
        if self.vote_sent or self.has_chosen:
            return False
        if not self.could_choose:
            return False  # already blocked: no observable effect
        self.could_choose = False
        return True
