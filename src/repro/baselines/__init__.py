"""Baseline implementations the generated machines are compared against."""

from repro.baselines.generic_commit import FINISHED_NAME, GenericCommitAlgorithm

__all__ = ["FINISHED_NAME", "GenericCommitAlgorithm"]
