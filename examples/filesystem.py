"""The full Fig 1 stack: a versioned file system on the storage layer.

Exercises every layer of the paper's architecture in one scenario —
file system adapter -> distributed abstract file system -> generic
storage layer (data storage + version history with generated commit FSMs)
-> key-based routing -> simulated network:

* writes a multi-chunk file and reads it back verified;
* appends new versions and reads the historical record (the ASA goal of
  "provision of an historical record of data");
* demonstrates content-addressed deduplication across files;
* keeps reading correctly while a replica node serves corrupted blocks.

Run with::

    python examples/filesystem.py
"""

from __future__ import annotations

from repro.storage import FaultPlan, StorageCluster
from repro.storage.filesystem import DistributedFileSystem


def main() -> None:
    cluster = StorageCluster(
        node_count=16,
        replication_factor=4,
        seed=5,
        fault_plans={"node-07": FaultPlan.corrupt()},  # one lying replica
    )
    endpoint = cluster.add_endpoint("fs-adapter")
    fs = DistributedFileSystem(cluster, endpoint, chunk_size=1024)

    print("== writing a multi-chunk file ==")
    draft = ("All happy families are alike; " * 200).encode()  # ~6 KiB
    version = fs.write_file("/novels/anna.txt", draft)
    print(f"v{version.index}: {version.size} bytes in {version.chunk_count} chunks")

    print("\n== revising it (appends, never destroys) ==")
    final = draft + b"\n-- revised ending --\n"
    version = fs.write_file("/novels/anna.txt", final)
    print(f"v{version.index}: {version.size} bytes in {version.chunk_count} chunks")

    print("\n== the historical record ==")
    for record in fs.list_versions("/novels/anna.txt"):
        print(f"  v{record.index}: {record.size} bytes, manifest {record.manifest_pid}")
    assert fs.read_file("/novels/anna.txt", version=0) == draft
    assert fs.read_file("/novels/anna.txt") == final
    print("  old and new versions both read back verified")

    print("\n== content-addressed deduplication ==")
    copy_version = fs.write_file("/novels/anna-copy.txt", final)
    print(
        "  same bytes, same manifest: "
        f"{copy_version.manifest_pid == version.manifest_pid}"
    )

    print("\n== reading through a corrupting replica ==")
    data = fs.read_file("/novels/anna.txt")
    print(f"  read {len(data)} bytes, intact: {data == final}")
    print(f"  (node-07 serves corrupted blocks; hash verification rejects them)")

    stats = cluster.network.stats
    print(f"\nnetwork totals: {stats.sent} messages sent, {stats.delivered} delivered")


if __name__ == "__main__":
    main()
