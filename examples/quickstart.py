"""Quickstart: generate, inspect, render and deploy a commit machine.

Walks the paper's whole pipeline in one script:

1. execute the abstract model for replication factor 4 (Fig 6);
2. report the generation-step counts (512 -> 48 -> 33, Figs 7/12/13);
3. print the Fig 14 textual description of one state;
4. render the Graphviz diagram and generated Python source;
5. compile the generated source in memory and run the protocol to
   completion on a hand-fed message trace.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.models.commit import CommitModel
from repro.render.dot import DotRenderer
from repro.render.source import PythonSourceRenderer
from repro.render.text import TextRenderer
from repro.runtime.compile import compile_machine


def main() -> None:
    # 1-2: execute the abstract model and show the pipeline counts.
    model = CommitModel(replication_factor=4)
    machine, report = model.generate_with_report()
    print("== generation pipeline (paper Figs 7/12/13, Table 1) ==")
    print(
        f"initial states: {report.initial_states}   "
        f"after pruning: {report.reachable_states}   "
        f"after merging: {report.merged_states}   "
        f"time: {report.total_time:.3f}s"
    )
    print(f"start state: {machine.start_state.name}")
    print(f"finish state: {machine.finish_state.name}")
    print()

    # 3: the Fig 14 artefact for the state the paper shows.
    print("== textual artefact for one state (paper Fig 14) ==")
    state = machine.get_state("T/2/F/0/F/F/F")
    print(TextRenderer(include_header=False).render_state(state))

    # 4: diagram and source artefacts.
    dot = DotRenderer().render(machine)
    print("== diagram artefact (paper Fig 15) ==")
    print("\n".join(dot.splitlines()[:6]) + "\n...\n")

    source = PythonSourceRenderer().render(machine)
    vote_handler = source.index("def receive_vote")
    print("== generated source excerpt (paper Fig 16) ==")
    print("\n".join(source[vote_handler:].splitlines()[:12]))
    print("...\n")

    # 5: deploy — compile the generated source and drive the protocol.
    print("== deploying the generated implementation (paper §4.3) ==")
    compiled = compile_machine(machine)
    instance = compiled.new_instance()
    trace = ["free", "update", "vote", "vote", "commit", "commit"]
    for message in trace:
        instance.receive(message)
        print(
            f"  after {message:<8} state={instance.get_state():<16} "
            f"sent={instance.sent}"
        )
    print(f"finished: {instance.is_finished()}")


if __name__ == "__main__":
    main()
