"""Applying the methodology to a new algorithm (paper §5.1–5.2).

"The source code renderer is now completely generic with respect to the
algorithm being modelled, so it is possible to apply the methodology to new
algorithms without writing any new generative code."

This example defines a brand-new abstract model *in this file* — a quorum
read repair protocol — and gets the whole toolchain for free: generation
with pruning and merging, textual/diagram/source artefacts, and an
executable compiled implementation.  It then does the same for the two
§5.2 applicability models shipped with the library (threshold signatures
and termination detection).

Run with::

    python examples/custom_model.py
"""

from __future__ import annotations

from repro.core import BooleanComponent, IntComponent
from repro.core.model import AbstractModel, StateView, TransitionBuilder
from repro.models.termination import TerminationModel
from repro.models.threshold_sig import ThresholdSignatureModel
from repro.render.text import TextRenderer
from repro.runtime.compile import compile_machine


class ReadRepairModel(AbstractModel):
    """A reader collecting ``q`` matching replies from ``n`` replicas.

    The reader broadcasts a read, counts matching and stale replies, and
    once a quorum of matching replies arrives returns the value — issuing
    a repair write if any stale reply was seen.  A fresh abstract model in
    ~40 lines: everything else (pipeline, renderers, compilation) is the
    generic toolchain.
    """

    def __init__(self, replicas: int, quorum: int):
        super().__init__(replicas=replicas, quorum=quorum)
        self._n = replicas
        self._q = quorum

    def configure(self, *, replicas: int, quorum: int):
        components = [
            BooleanComponent("read_issued"),
            IntComponent("matching_replies", replicas),
            IntComponent("stale_replies", replicas),
            BooleanComponent("returned"),
        ]
        return components, ("read", "reply_match", "reply_stale")

    def machine_name(self) -> str:
        return f"read-repair[n={self._n},q={self._q}]"

    def is_final(self, view: StateView) -> bool:
        return view["returned"]

    def generate_transition(self, message: str, b: TransitionBuilder) -> None:
        if message == "read":
            if not b["read_issued"]:
                b.set("read_issued", True, because="Client read accepted.")
                b.send("read", because="Broadcast the read to all replicas.")
        elif message == "reply_match":
            if not b["read_issued"]:
                b.invalid("reply before a read was issued")
            b.increment("matching_replies", because="A replica agreed.")
            self._maybe_return(b)
        elif message == "reply_stale":
            if not b["read_issued"]:
                b.invalid("reply before a read was issued")
            b.increment("stale_replies", because="A replica returned stale data.")

    def _maybe_return(self, b: TransitionBuilder) -> None:
        if b["matching_replies"] >= self._q:
            if b["stale_replies"] > 0:
                b.send("repair", because="Write back the fresh value to stale replicas.")
            b.send("return", because="Quorum of matching replies: return to client.")
            b.set("returned", True)


def show(model: AbstractModel, sample_trace: list[str]) -> None:
    """Generate, report, render one state and run the compiled machine."""
    machine, report = model.generate_with_report()
    print(f"--- {machine.name} ---")
    print(
        f"  pipeline: {report.initial_states} -> {report.reachable_states} "
        f"-> {report.merged_states} states ({report.total_time * 1000:.1f} ms)"
    )
    compiled = compile_machine(machine)
    instance = compiled.new_instance()
    for message in sample_trace:
        instance.receive(message)
    print(f"  after {sample_trace}: state={instance.get_state()} "
          f"sent={instance.sent} finished={instance.is_finished()}")
    print()


def main() -> None:
    # A brand-new model defined above — no new generative code needed.
    show(
        ReadRepairModel(replicas=5, quorum=3),
        ["read", "reply_stale", "reply_match", "reply_match", "reply_match"],
    )

    # The two §5.2 applicability models shipped with the library.
    show(
        ThresholdSignatureModel(signers=5, threshold=3),
        ["request", "share", "share"],
    )
    show(
        TerminationModel(max_tasks=3),
        ["task", "task", "probe", "done", "done"],
    )

    # Every artefact renderer works on any model, unchanged: print the
    # textual description of the read-repair machine's start state.
    machine = ReadRepairModel(replicas=3, quorum=2).generate_state_machine()
    print(TextRenderer(include_header=False).render_state(machine.start_state))


if __name__ == "__main__":
    main()
