"""When to generate (paper §4.2) — policies and their costs.

The paper identifies a spectrum of generation times: once during
development, every time the algorithm runs, or whenever a new parameter
value is encountered (with caching).  This example exercises
:class:`~repro.runtime.policy.MachineFactory` under all three policies on a
workload that mixes repeated and fresh replication factors, and reports how
many generations each policy paid for.

Run with::

    python examples/generation_policies.py
"""

from __future__ import annotations

import time

from repro.models.commit import CommitModel
from repro.runtime.policy import GenerationPolicy, MachineFactory

#: A workload of deployments: mostly r=4, occasionally other factors.
WORKLOAD = [4, 4, 4, 7, 4, 4, 7, 4, 13, 4, 4, 7, 4, 4, 4]


def run_policy(policy: GenerationPolicy) -> None:
    factory = MachineFactory(
        lambda replication_factor: CommitModel(replication_factor),
        policy=policy,
    )
    started = time.perf_counter()
    finished_count = 0
    for r in WORKLOAD:
        if policy is GenerationPolicy.ONCE and r != WORKLOAD[0]:
            continue  # ONCE supports a single parameter value by design
        instance = factory.new_instance(replication_factor=r)
        # Drive the machine through one complete commit.
        f = (r - 1) // 3
        for message in ["free", "update"] + ["vote"] * (2 * f) + ["commit"] * (f + 1):
            instance.receive(message)
        finished_count += instance.is_finished()
    elapsed = time.perf_counter() - started
    cache_line = ""
    if policy is GenerationPolicy.ON_DEMAND:
        stats = factory.cache.stats
        cache_line = f"  cache: {stats.hits} hits / {stats.misses} misses"
    print(
        f"{policy.value:<10} generations={factory.generations:<3d} "
        f"deployments={finished_count:<3d} time={elapsed * 1000:7.1f} ms{cache_line}"
    )


def main() -> None:
    print(f"workload of {len(WORKLOAD)} deployments, replication factors "
          f"{sorted(set(WORKLOAD))}")
    for policy in (
        GenerationPolicy.ONCE,
        GenerationPolicy.PER_USE,
        GenerationPolicy.ON_DEMAND,
    ):
        run_policy(policy)
    print(
        "\nONCE is the paper's deployment choice (the replication factor "
        "rarely changes);\nON_DEMAND amortises regeneration when it does."
    )


if __name__ == "__main__":
    main()
