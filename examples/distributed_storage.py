"""The motivating workload: the ASA distributed storage system (paper §2).

Simulates the full stack of the paper's Fig 1 — key-based routing, the
data storage service, and the version history service running *generated*
commit-protocol FSMs — under faults:

* stores and retrieves a data block with the ``r - f`` quorum rule;
* appends versions to a file's history through the BFT commit protocol
  while one peer-set member is Byzantine (votes for everything) and one is
  silent;
* retrieves the history with ``f + 1`` agreement, defeating a fabricated
  response;
* shows two clients racing on the same GUID and the timeout/retry scheme
  resolving the contention.

Run with::

    python examples/distributed_storage.py
"""

from __future__ import annotations

from repro.storage import DataBlock, FaultPlan, GUID, StorageCluster


def locate(guid: GUID, node_count: int = 16, replication_factor: int = 4) -> list[str]:
    """Peer set for a GUID on a cluster of this shape (deterministic)."""
    probe = StorageCluster(node_count=node_count, replication_factor=replication_factor, seed=1)
    endpoint = probe.add_endpoint("probe-client")
    return endpoint.locate_peers(guid.key)


def main() -> None:
    replication_factor = 4
    guid = GUID.for_name("annual-report.txt")
    peers = locate(guid, node_count=16, replication_factor=replication_factor)
    print(f"peer set for {guid}: {peers}")

    # One Byzantine (promiscuous voter) and one silent member: that is
    # 2 faulty members, more than f=1 — but the silent node only withholds
    # participation, and the protocol needs 2f+1 = 3 of 4 voters, so the
    # system still makes progress while staying safe against the Byzantine
    # member. (With 2 actively lying members, r=4 would be insufficient.)
    cluster = StorageCluster(
        node_count=16,
        replication_factor=replication_factor,
        seed=1,
        fault_plans={
            peers[0]: FaultPlan.promiscuous(),
        },
    )
    client = cluster.add_endpoint("client-0")

    # --- data storage service (paper §2.1) ---
    print("\n== data storage service ==")
    block_v1 = DataBlock(b"ASA annual report, draft 1")
    store = client.store_block(block_v1)
    cluster.run_until(lambda: store.done)
    print(f"store v1: success={store.success} acks={len(store.acked)}/{len(store.replicas)}")

    retrieve = client.retrieve_block(block_v1.pid)
    cluster.run_until(lambda: retrieve.done)
    print(
        f"retrieve v1: success={retrieve.success} verified=True "
        f"attempts={retrieve.attempts}"
    )

    # --- version history service (paper §2.2) ---
    print("\n== version history service (generated FSMs, 1 Byzantine member) ==")
    block_v2 = DataBlock(b"ASA annual report, final")
    for version, block in enumerate((block_v1, block_v2), start=1):
        append = client.append_version(guid, block.pid)
        cluster.run_until(lambda: append.done, timeout=3000)
        print(
            f"append v{version}: success={append.success} "
            f"attempts={append.attempts} confirmations={len(append.confirmations)}"
        )
    cluster.run(200)

    consistent = cluster.histories_prefix_consistent(guid.hex)
    print(f"correct members' histories prefix-consistent: {consistent}")
    for node_id, history in sorted(cluster.histories(guid.hex).items()):
        print(f"  {node_id}: {[pid[:8] for _, pid in history]}")

    history = client.get_history(guid)
    cluster.run_until(lambda: history.done)
    print(f"agreed history ({len(history.agreed)} versions): "
          f"{[pid[:8] for _, pid in history.agreed]}")

    # --- contention and retry (paper §2.2's timeout/retry scheme) ---
    print("\n== two clients racing on one GUID ==")
    race = StorageCluster(
        node_count=16, replication_factor=replication_factor, seed=42, abandon_timeout=20.0
    )
    alice = race.add_endpoint("alice")
    bob = race.add_endpoint("bob")
    a_op = alice.append_version(guid, DataBlock(b"alice's edit").pid)
    b_op = bob.append_version(guid, DataBlock(b"bob's edit").pid)
    race.run_until(lambda: a_op.done and b_op.done, timeout=10_000)
    race.run(300)
    print(f"alice: success={a_op.success} attempts={a_op.attempts}")
    print(f"bob:   success={b_op.success} attempts={b_op.attempts}")
    print(f"histories prefix-consistent: {race.histories_prefix_consistent(guid.hex)}")
    lengths = {k: len(v) for k, v in race.histories(guid.hex).items()}
    print(f"history lengths per member: {lengths}")


if __name__ == "__main__":
    main()
