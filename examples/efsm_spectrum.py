"""The spectrum of state machines (paper §3.2 and §5.3).

Shows the three formulations of the commit algorithm side by side —

* the generic algorithm: 1 state, 7 variables;
* the EFSM: 9 states, 2 variables, generic in the replication factor;
* the FSM family: ``12 f^2 + 16 f + 5`` states, no variables, one machine
  per replication factor —

then drives all three on the same message trace to demonstrate behavioural
equivalence, and derives the EFSM's phase structure from the generated FSM
(the cross-validation of §5.3's "9 states" claim).

Run with::

    python examples/efsm_spectrum.py
"""

from __future__ import annotations

from repro.analysis.spectrum import (
    commit_spectrum,
    efsm_phase_transitions,
    fsm_vs_efsm_table,
    phase_names,
    phase_quotient,
)
from repro.baselines.generic_commit import GenericCommitAlgorithm
from repro.models.commit import CommitModel
from repro.models.commit_efsm import build_commit_efsm, commit_efsm_executor
from repro.runtime.interp import MachineInterpreter


def main() -> None:
    print("== the spectrum for r = 7 (paper §3.2) ==")
    print(f"{'formulation':<20} {'states':>8} {'variables':>10} {'generic in r':>14}")
    for point in commit_spectrum(replication_factor=7):
        print(
            f"{point.formulation:<20} {point.states:>8} {point.variables:>10} "
            f"{str(point.generic_in_r):>14}"
        )

    print("\n== FSM grows with f, the EFSM stays at 9 states (§5.3) ==")
    print(f"{'r':>3} {'f':>3} {'FSM initial':>12} {'FSM merged':>11} {'EFSM':>5}")
    for row in fsm_vs_efsm_table((4, 7, 13, 25)):
        print(
            f"{row['r']:>3} {row['f']:>3} {row['fsm_initial_states']:>12} "
            f"{row['fsm_merged_states']:>11} {row['efsm_states']:>5}"
        )

    print("\n== behavioural equivalence on one trace (r = 4) ==")
    trace = ["update", "vote", "vote", "free", "commit", "commit"]
    fsm = MachineInterpreter(CommitModel(4).generate_state_machine())
    efsm = commit_efsm_executor(4)
    generic = GenericCommitAlgorithm(4)
    for implementation in (fsm, efsm, generic):
        implementation.run(trace)
    print(f"trace: {trace}")
    print(f"FSM actions:     {fsm.sent}")
    print(f"EFSM actions:    {efsm.sent}")
    print(f"generic actions: {generic.sent}")
    print(
        f"all finished: {fsm.is_finished()} / {efsm.is_finished()} / "
        f"{generic.is_finished()}"
    )

    print("\n== deriving the EFSM from the FSM (phase quotient) ==")
    pruned = CommitModel(4).generate_state_machine(merge=False)
    phases = phase_names(pruned)
    quotient = phase_quotient(pruned)
    hand_built = efsm_phase_transitions(build_commit_efsm())
    print(f"phases found in the generated FSM: {len(phases)} (paper: 9)")
    print(f"quotient transitions == hand-built EFSM transitions: "
          f"{quotient == hand_built}")
    for name in sorted(phases):
        print(f"  {name}")

    print("\n== the EFSM as a generated artefact (paper abstract) ==")
    from repro.runtime.compile import compile_efsm

    compiled = compile_efsm(build_commit_efsm())
    print(f"generated module: {len(compiled.source)} bytes of Python")
    for r in (4, 13, 46):
        instance = compiled.new_instance(replication_factor=r)
        f = (r - 1) // 3
        instance.run = None  # generated classes have receive() only
        for message in (["free", "update"] + ["vote"] * (2 * f)
                        + ["commit"] * (f + 1)):
            instance.receive(message)
        print(f"  r={r:<3d} one compiled class, finished={instance.is_finished()}")


if __name__ == "__main__":
    main()
