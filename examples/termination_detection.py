"""Termination detection: a second message-counting algorithm (paper §5.2).

"A distributed computation may be defined as being terminated when each
process in it has locally terminated and no messages are in transit ...
most distributed termination algorithms are based upon message counting.
... We therefore believe that the techniques described in this paper may
be applied to such algorithms."

This example applies the full methodology to the echo-style termination
detector shipped in :mod:`repro.models.termination`:

1. generate the FSM family for several task bounds;
2. verify the detector's correctness property over every path (the echo
   is sent exactly once, and only when passive);
3. deploy compiled instances as the per-process detectors of a simulated
   8-process computation and detect its termination.

Run with::

    python examples/termination_detection.py
"""

from __future__ import annotations

import random

from repro.analysis.properties import action_exactly_once, finish_always_reachable
from repro.models.termination import TerminationModel
from repro.runtime.compile import compile_machine


def generate_family() -> None:
    print("== the termination-detector FSM family ==")
    print(f"{'max_tasks':>9} {'initial':>8} {'reachable':>10} {'merged':>7}")
    for max_tasks in (1, 2, 4, 8, 16):
        _, report = TerminationModel(max_tasks).generate_with_report()
        print(
            f"{max_tasks:>9} {report.initial_states:>8} "
            f"{report.reachable_states:>10} {report.merged_states:>7}"
        )
    print()


def verify_properties() -> None:
    print("== path properties (every execution) ==")
    machine = TerminationModel(max_tasks=8).generate_state_machine()
    for report in (
        action_exactly_once(machine, "->echo"),
        finish_always_reachable(machine),
    ):
        print(f"  {report}")
    print()


def simulate_computation(processes: int = 8, seed: int = 11) -> None:
    """A toy distributed computation: tasks spawn sub-tasks, then drain."""
    print(f"== deploying {processes} generated detectors ==")
    rng = random.Random(seed)
    compiled = compile_machine(TerminationModel(max_tasks=16).generate_state_machine())
    detectors = [compiled.new_instance() for _ in range(processes)]
    pending = [0] * processes

    # Seed each process with initial work.
    for process in range(processes):
        for _ in range(rng.randint(1, 3)):
            detectors[process].receive("task")
            pending[process] += 1

    # Run the computation: completing a task may spawn work elsewhere.
    total_completed = 0
    while any(pending):
        process = rng.choice([p for p in range(processes) if pending[p]])
        if total_completed < 40 and rng.random() < 0.4:
            target = rng.randrange(processes)
            detectors[target].receive("task")
            pending[target] += 1
        detectors[process].receive("done")
        pending[process] -= 1
        total_completed += 1

    # The detector probes every process; all must echo.
    echoes = 0
    for detector in detectors:
        detector.receive("probe")
        echoes += detector.is_finished()
    print(f"  tasks completed: {total_completed}")
    print(f"  echoes received: {echoes}/{processes}")
    print(f"  termination detected: {echoes == processes}")

    # Negative control: a busy process defers its echo until passive.
    busy = compiled.new_instance()
    busy.receive("task")
    busy.receive("probe")
    deferred = not busy.is_finished()
    busy.receive("done")
    print(f"  busy process defers echo, fires when passive: "
          f"{deferred and busy.is_finished()}")


def main() -> None:
    generate_family()
    verify_properties()
    simulate_computation()


if __name__ == "__main__":
    main()
