"""Model-checking the deployed peer set of generated FSMs.

The paper's core pitch is that a generated FSM family "formalises the
interactions between the components of the distributed system, allowing
increased confidence in correctness" (§1).  This example takes that
seriously: it exhaustively explores every message-delivery interleaving of
a full r=4 peer set of generated commit machines and *proves*, within the
model:

1. a clean peer set commits a single update in **every** interleaving;
2. with f=1 member silent (Byzantine by omission) it still always commits;
3. with f+1=2 silent members it deadlocks — the `r > 3f` bound is tight;
4. in the even contention split (two updates, two first-voters each),
   **every** interleaving deadlocks — so §2.2's timeout/retry scheme is
   necessary, not merely advisable;
5. in the uneven 3/1 split, the updates serialise: the majority update
   commits, finishing frees each member's vote, and the minority update is
   voted through next — and **no interleaving anywhere produces a partial
   commit** (the safety property).

It also verifies per-machine path properties (each member votes exactly
once, commits exactly once, can always still finish).

Run with::

    python examples/model_checking.py
"""

from __future__ import annotations

from repro.analysis.peerset_check import (
    check_contending_updates,
    check_single_update,
)
from repro.analysis.properties import commit_protocol_properties
from repro.models.commit import CommitModel


def show(label: str, result) -> None:
    print(f"{label}:")
    print(
        f"  explored {result.states_explored} system states, "
        f"{result.quiescent_states} quiescent outcomes"
    )
    print(
        f"  finished={result.all_finished_quiescent} "
        f"deadlocked={result.deadlocked_quiescent} "
        f"partial={result.partial_outcomes} "
        f"truncated={result.truncated}"
    )
    if result.outcome_counts:
        for outcome, count in sorted(result.outcome_counts.items()):
            print(f"  outcome {outcome}: {count} quiescent state(s)")
    print(f"  => safe={result.safe}  always-terminates={result.always_terminates}")
    print()


def main() -> None:
    print("== per-machine path properties (every path, r=4 and r=7) ==")
    for r in (4, 7):
        machine = CommitModel(r).generate_state_machine()
        for report in commit_protocol_properties(machine):
            print(f"  r={r}: {report}")
    print()

    print("== exhaustive peer-set exploration (r=4, one update) ==")
    show("clean peer set", check_single_update(4, silent_members=0))
    show("one silent member (f=1)", check_single_update(4, silent_members=1))
    show("two silent members (> f)", check_single_update(4, silent_members=2))

    print("== contention (two updates) ==")
    show(
        "even 2/2 split (the §2.2 deadlock)",
        check_contending_updates(4, first_half=2, max_states=500_000),
    )
    show(
        "uneven 3/1 split (updates serialise)",
        check_contending_updates(4, first_half=3, max_states=500_000),
    )


if __name__ == "__main__":
    main()
