#!/usr/bin/env python
"""Gateway smoke: boot ``repro-fsm serve``, drive it, diff the snapshot.

The CI end-to-end for the serve front door.  Starts the gateway as a
real subprocess (``--port 0`` + ``--port-file`` for discovery), spawns a
population over HTTP, drives a recorded workload through ``POST
/deliver`` one request per event, scrapes ``/metrics``, downloads the
final ``/snapshot``, and shuts the server down.  The same workload is
then replayed on an in-process fleet; the two snapshots must be
identical instance-for-instance — the served fleet, behind two process
boundaries and a JSON wire, lands on exactly the traces the library
produces directly.

Exit codes: 0 on success, 1 on any mismatch or HTTP failure.

Usage::

    PYTHONPATH=src python scripts/gateway_smoke.py [--workers 2] [--events 100]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.serve import WorkloadSpec, generate_workload, make_fleet  # noqa: E402
from repro.serve.gateway import snapshot_to_json  # noqa: E402


def request(base: str, method: str, path: str, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(req, timeout=10) as resp:
        body = resp.read().decode()
    return json.loads(body) if body.startswith(("{", "[")) else body


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--instances", type=int, default=50)
    parser.add_argument("--events", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    port_file = tempfile.NamedTemporaryFile(
        prefix="gateway-smoke-", suffix=".port", delete=False
    )
    port_file.close()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--workers", str(args.workers),
            "--mode", "encoded",
            "--port", "0",
            "--port-file", port_file.name,
            "--allow-remote-shutdown",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        deadline = time.monotonic() + 30
        port = None
        while time.monotonic() < deadline:
            if server.poll() is not None:
                print(server.stdout.read(), file=sys.stderr)
                print("FAIL: server exited before binding", file=sys.stderr)
                return 1
            text = pathlib.Path(port_file.name).read_text().strip()
            if text:
                port = int(text)
                break
            time.sleep(0.05)
        if port is None:
            print("FAIL: no port written within 30s", file=sys.stderr)
            return 1
        base = f"http://127.0.0.1:{port}"

        health = request(base, "GET", "/healthz")
        assert health["status"] == "ok", health

        spawned = request(
            base, "POST", "/spawn", {"count": args.instances}
        )["spawned"]
        assert len(spawned) == args.instances

        # The workload generator names keys exactly like /spawn does, so
        # the recorded schedule drives the served population directly.
        replica = make_fleet("commit", mode="encoded", shards=4)
        keys = replica.spawn_many(args.instances)
        assert keys == spawned, "key naming diverged between spawn paths"
        events = generate_workload(
            replica.machine,
            WorkloadSpec(
                instances=args.instances, events=args.events, seed=args.seed
            ),
        )

        delivered = 0
        for key, message in events:
            out = request(
                base, "POST", "/deliver", {"key": key, "message": message}
            )
            assert "fired" in out, out
            delivered += 1
        print(f"drove {delivered} /deliver requests")

        metrics = request(base, "GET", "/metrics")
        for series in ("gateway_requests_total", "fleet_events_dispatched_total"):
            if series not in metrics:
                print(f"FAIL: /metrics missing {series}", file=sys.stderr)
                return 1
        dispatched = [
            line for line in metrics.splitlines()
            if line.startswith("fleet_events_dispatched_total")
        ][0]
        print(f"scraped /metrics: {dispatched}")

        served_snapshot = request(base, "GET", "/snapshot")

        replica.run(events)
        expected = snapshot_to_json(replica.snapshot())
        replica.close()

        def by_key(snapshot):
            return {inst["key"]: inst for inst in snapshot["instances"]}

        served, local = by_key(served_snapshot), by_key(expected)
        mismatched = [
            key for key in local
            if served.get(key) != local[key]
        ]
        extra = sorted(set(served) - set(local))
        if mismatched or extra:
            print(
                f"FAIL: snapshot mismatch — {len(mismatched)} diverging, "
                f"{len(extra)} unexpected instance(s): "
                f"{(mismatched + extra)[:5]}",
                file=sys.stderr,
            )
            return 1
        print(
            f"snapshot parity: {len(local)} instances identical to "
            "in-process replay"
        )

        request(base, "POST", "/shutdown")
        code = server.wait(timeout=15)
        if code != 0:
            print(f"FAIL: server exited {code}", file=sys.stderr)
            return 1
        print("gateway smoke: ok")
        return 0
    finally:
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=5)
            except subprocess.TimeoutExpired:
                server.kill()
        os.unlink(port_file.name)


if __name__ == "__main__":
    sys.exit(main())
