#!/usr/bin/env python
"""Chaos smoke: SIGKILL a served fleet worker mid-traffic, verify healing.

The CI end-to-end for the supervision plane.  Boots ``repro-fsm serve
--journal`` as a real subprocess, spawns a population over HTTP and
drives a recorded workload through ``POST /deliver``.  Partway through,
one worker process (pid taken from ``/healthz``) is SIGKILLed while
requests keep flowing: deliveries that land on the dying partition must
come back as ``503`` with a ``Retry-After`` header (not hard failures),
and retrying them after the advertised delay must succeed.  Once the
workload is drained the script asserts the supervisor's fingerprints —
``/healthz`` all-live, ``fleet_worker_restarts_total`` and
``fleet_events_replayed_total`` on ``/metrics`` — and downloads the
final ``/snapshot``, which must match an in-process replay of the same
workload instance-for-instance: a murdered, healed, journal-replayed
fleet lands on exactly the traces the library produces directly.

Exit codes: 0 on success, 1 on any mismatch or HTTP failure.

Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py [--workers 2] [--events 400]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.serve import WorkloadSpec, generate_workload, make_fleet  # noqa: E402
from repro.serve.gateway import snapshot_to_json  # noqa: E402

RETRY_LIMIT = 200


def request(base: str, method: str, path: str, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(req, timeout=10) as resp:
        body = resp.read().decode()
    return json.loads(body) if body.startswith(("{", "[")) else body


def deliver_with_retry(base: str, key: str, message: str) -> int:
    """POST one /deliver, retrying 503s per Retry-After; returns 503 count."""
    outages = 0
    for _ in range(RETRY_LIMIT):
        try:
            out = request(
                base, "POST", "/deliver", {"key": key, "message": message}
            )
        except urllib.error.HTTPError as exc:
            if exc.code != 503:
                raise
            exc.read()
            retry_after = exc.headers.get("Retry-After")
            assert retry_after is not None, "503 without Retry-After header"
            outages += 1
            time.sleep(min(float(retry_after), 0.2))
            continue
        assert "fired" in out, out
        return outages
    raise AssertionError(
        f"/deliver to {key!r} still 503 after {RETRY_LIMIT} retries"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--instances", type=int, default=50)
    parser.add_argument("--events", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    port_file = tempfile.NamedTemporaryFile(
        prefix="chaos-smoke-", suffix=".port", delete=False
    )
    port_file.close()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--workers", str(args.workers),
            "--mode", "encoded",
            "--journal",
            "--port", "0",
            "--port-file", port_file.name,
            "--allow-remote-shutdown",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        deadline = time.monotonic() + 30
        port = None
        while time.monotonic() < deadline:
            if server.poll() is not None:
                print(server.stdout.read(), file=sys.stderr)
                print("FAIL: server exited before binding", file=sys.stderr)
                return 1
            text = pathlib.Path(port_file.name).read_text().strip()
            if text:
                port = int(text)
                break
            time.sleep(0.05)
        if port is None:
            print("FAIL: no port written within 30s", file=sys.stderr)
            return 1
        base = f"http://127.0.0.1:{port}"

        health = request(base, "GET", "/healthz")
        assert health["status"] == "ok", health
        pids = health["pids"]
        assert len(pids) == args.workers, health

        spawned = request(
            base, "POST", "/spawn", {"count": args.instances}
        )["spawned"]
        assert len(spawned) == args.instances

        replica = make_fleet("commit", mode="encoded", shards=4)
        keys = replica.spawn_many(args.instances)
        assert keys == spawned, "key naming diverged between spawn paths"
        events = generate_workload(
            replica.machine,
            WorkloadSpec(
                instances=args.instances, events=args.events, seed=args.seed
            ),
        )

        # Drive ~40% of the workload healthy, murder one worker, then keep
        # the traffic flowing through the outage window.
        cut = max(1, (len(events) * 2) // 5)
        outages = 0
        for key, message in events[:cut]:
            outages += deliver_with_retry(base, key, message)
        assert outages == 0, f"{outages} outage(s) before the kill"

        victim = pids[0]
        os.kill(victim, signal.SIGKILL)
        print(f"SIGKILLed worker pid {victim} after {cut} deliveries")

        for key, message in events[cut:]:
            outages += deliver_with_retry(base, key, message)
        print(
            f"drove {len(events)} /deliver requests through the outage "
            f"({outages} gracefully degraded to 503 + Retry-After)"
        )
        if outages == 0:
            print(
                "FAIL: no request ever saw the recovering partition — "
                "the kill did not exercise degradation",
                file=sys.stderr,
            )
            return 1

        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            health = request(base, "GET", "/healthz")
            if health["status"] == "ok":
                break
            time.sleep(0.05)
        assert health["status"] == "ok", f"fleet never healed: {health}"
        assert victim not in health["pids"], "dead pid still reported live"
        print(f"healed: worker states {health['workers']}")

        metrics = request(base, "GET", "/metrics")
        fingerprints = {}
        for series in (
            "fleet_worker_restarts_total", "fleet_events_replayed_total"
        ):
            lines = [
                line for line in metrics.splitlines()
                if line.startswith(series + " ")
            ]
            if not lines:
                print(f"FAIL: /metrics missing {series}", file=sys.stderr)
                return 1
            fingerprints[series] = float(lines[0].split()[1])
        if fingerprints["fleet_worker_restarts_total"] < 1:
            print("FAIL: supervisor reports no restart", file=sys.stderr)
            return 1
        print(
            "scraped /metrics: restarts="
            f"{fingerprints['fleet_worker_restarts_total']:.0f} "
            f"replayed={fingerprints['fleet_events_replayed_total']:.0f}"
        )

        served_snapshot = request(base, "GET", "/snapshot")

        replica.run(events)
        expected = snapshot_to_json(replica.snapshot())
        replica.close()

        def by_key(snapshot):
            return {inst["key"]: inst for inst in snapshot["instances"]}

        served, local = by_key(served_snapshot), by_key(expected)
        mismatched = [
            key for key in local
            if served.get(key) != local[key]
        ]
        extra = sorted(set(served) - set(local))
        if mismatched or extra:
            print(
                f"FAIL: snapshot mismatch — {len(mismatched)} diverging, "
                f"{len(extra)} unexpected instance(s): "
                f"{(mismatched + extra)[:5]}",
                file=sys.stderr,
            )
            return 1
        print(
            f"snapshot parity: {len(local)} instances identical to "
            "in-process replay despite the mid-burst SIGKILL"
        )

        request(base, "POST", "/shutdown")
        code = server.wait(timeout=15)
        if code != 0:
            print(f"FAIL: server exited {code}", file=sys.stderr)
            return 1
        print("chaos smoke: ok")
        return 0
    finally:
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=5)
            except subprocess.TimeoutExpired:
                server.kill()
        os.unlink(port_file.name)


if __name__ == "__main__":
    sys.exit(main())
