"""Compare a fresh fleet-serving benchmark artifact against the committed baseline.

CI runs ``bench_serve.py --fast --json BENCH_serve.json`` on every push;
this script fails (exit 1) when any sweep configuration's throughput
drops more than ``--threshold`` (default 30%) below the committed
baseline at ``benchmarks/baselines/BENCH_serve.json``.  It is wired into
CI as a *non-blocking* step: hosted runners vary too much for a hard
gate, but a consistent large drop is worth a red mark in the log.

Usage::

    python scripts/check_bench_regression.py BENCH_serve.json \
        [--baseline benchmarks/baselines/BENCH_serve.json] \
        [--threshold 0.30] [--metric batched_eps] [--metric naive_eps]

Rows are matched on their configuration fields (everything except the
measured floats); configurations present in only one file are reported
but do not fail the check — sweeps are allowed to evolve.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: Measured fields: never part of a row's configuration key.
MEASURED = frozenset({"naive_eps", "batched_eps", "speedup"})

DEFAULT_BASELINE = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "baselines"
    / "BENCH_serve.json"
)


def row_key(row: dict) -> tuple:
    """A row's configuration identity: every non-measured field."""
    return tuple(sorted((k, v) for k, v in row.items() if k not in MEASURED))


def load_rows(path: pathlib.Path) -> dict[tuple, dict]:
    """Sweep rows of one artifact, keyed by configuration."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    rows = data["rows"] if isinstance(data, dict) else data
    return {row_key(row): row for row in rows}


def check(
    fresh_path: pathlib.Path,
    baseline_path: pathlib.Path,
    threshold: float,
    metrics: list[str],
) -> int:
    """Print the comparison; return the process exit code."""
    if not baseline_path.exists():
        print(f"no committed baseline at {baseline_path}; nothing to compare")
        return 2
    fresh = load_rows(fresh_path)
    baseline = load_rows(baseline_path)

    regressions = []
    compared = 0
    for key, base_row in baseline.items():
        fresh_row = fresh.get(key)
        config = ", ".join(f"{k}={v}" for k, v in key)
        if fresh_row is None:
            print(f"  [skip] baseline-only configuration: {config}")
            continue
        for metric in metrics:
            if metric not in base_row or metric not in fresh_row:
                continue
            compared += 1
            base_value = base_row[metric]
            fresh_value = fresh_row[metric]
            ratio = fresh_value / base_value if base_value else float("inf")
            verdict = "ok"
            if ratio < 1.0 - threshold:
                verdict = "REGRESSION"
                regressions.append((config, metric, base_value, fresh_value))
            print(
                f"  [{verdict:>10}] {config} {metric}: "
                f"baseline {base_value:,.0f} -> fresh {fresh_value:,.0f} "
                f"({ratio:.2f}x)"
            )
    for key in fresh.keys() - baseline.keys():
        config = ", ".join(f"{k}={v}" for k, v in key)
        print(f"  [skip] fresh-only configuration: {config}")

    if not compared:
        print("no overlapping configurations between fresh and baseline artifacts")
        return 2
    if regressions:
        print(
            f"\n{len(regressions)} metric(s) regressed more than "
            f"{threshold:.0%} below baseline:"
        )
        for config, metric, base_value, fresh_value in regressions:
            print(f"  {config}: {metric} {base_value:,.0f} -> {fresh_value:,.0f}")
        return 1
    print(f"\nall {compared} compared metric(s) within {threshold:.0%} of baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on >threshold throughput regression vs committed baseline"
    )
    parser.add_argument(
        "fresh", type=pathlib.Path, help="freshly produced JSON artifact"
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline artifact (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional drop before failing (default: 0.30)",
    )
    parser.add_argument(
        "--metric",
        action="append",
        dest="metrics",
        help="measured field(s) to compare (default: batched_eps, naive_eps)",
    )
    args = parser.parse_args(argv)
    metrics = args.metrics or ["batched_eps", "naive_eps"]
    print(
        f"comparing {args.fresh} against {args.baseline} "
        f"(threshold {args.threshold:.0%}, metrics {', '.join(metrics)})"
    )
    return check(args.fresh, args.baseline, args.threshold, metrics)


if __name__ == "__main__":
    sys.exit(main())
