"""Compare a fresh benchmark artifact against its committed baseline.

CI runs the ``--fast --json`` sweeps of ``bench_serve.py``,
``bench_flatten.py``, ``bench_opt.py``, ``bench_scenario.py``,
``bench_load.py`` and ``bench_recovery.py`` on every push; this script
fails (exit 1) when any sweep configuration's throughput drops more than
``--threshold`` (default 30%) below the committed baseline of the same
name under ``benchmarks/baselines/``.  It is wired into CI as a
*non-blocking* step: hosted runners vary too much for a hard gate, but a
consistent large drop is worth a red mark in the log.

Usage::

    python scripts/check_bench_regression.py BENCH_serve.json
    python scripts/check_bench_regression.py BENCH_flatten.json
    python scripts/check_bench_regression.py BENCH_opt.json \
        [--baseline benchmarks/baselines/BENCH_opt.json] \
        [--threshold 0.30] [--metric opt_eps]

Artifacts may be a bare row list, a ``{"rows": [...]}`` object
(``BENCH_serve``), or an object holding several named row lists
(``BENCH_flatten``'s ``flatten``/``serve``, ``BENCH_opt``'s
``passes``/``serve``, ``BENCH_scenario``'s ``rows``/``active``,
``BENCH_load``'s ``rows``/``closed``,
``BENCH_recovery``'s ``rows``/``mttr``); named
sections become part of each row's configuration key.  The default
baseline is the committed artifact with the same file name.  Rows are matched on their configuration fields
(everything except the measured floats); configurations present in only
one file are reported but do not fail the check — sweeps are allowed to
evolve.  Throughput metrics regress when they *drop* past the
threshold; latency percentiles (``LOWER_IS_BETTER``) regress when they
*rise* by more than two histogram bucket steps above the jitter floor.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: Measured fields: never part of a row's configuration key.  Timing
#: fields are listed so they stay out of the key; only the throughput
#: (events/sec) fields are compared by default — for timings, "bigger"
#: is worse, which the ratio logic deliberately does not model.
MEASURED = frozenset(
    {
        "naive_eps",
        "batched_eps",
        "encoded_eps",
        "grouped_eps",
        "encoded_off_eps",
        "vector_eps",
        "vector_speedup",
        "raw_eps",
        "opt_eps",
        "journal_on_eps",
        "journal_off_eps",
        "journal_ratio",
        "mttr_s",
        "events_replayed",
        "restarts",
        "scenario_eps",
        "active_eps",
        "offered_eps",
        "achieved_eps",
        "capacity_eps",
        "utilization",
        "speedup",
        "encoded_speedup",
        "ratio",
        "scenario_ratio",
        "deliveries",
        "flatten_ms",
        "pass_ms",
        "p50_s",
        "p95_s",
        "p99_s",
        "mean_latency_s",
        "wall_seconds",
    }
)

#: Measured fields where *smaller* is better (latency percentiles).
#: These come out of log-scaled factor-2 histograms, so any value is
#: quantized to a power-of-two bucket edge and a one-bucket move already
#: reads as 2x: a latency only regresses when it rises by more than two
#: bucket steps (> 4x) *and* sits above the scheduler-jitter floor.
#: Above saturation (utilization > 1) the queue never drains, so the
#: percentiles scale with offered-minus-capacity — pure capacity-probe
#: jitter — and are not compared at all.
LOWER_IS_BETTER = frozenset({"p50_s", "p95_s", "p99_s", "mean_latency_s", "mttr_s"})
LATENCY_RATIO = 4.0
LATENCY_FLOOR_S = 1e-4
SATURATED_UTILIZATION = 1.0

#: Metrics compared when --metric is not given.
DEFAULT_METRICS = (
    "batched_eps",
    "naive_eps",
    "encoded_eps",
    "grouped_eps",
    "encoded_off_eps",
    "vector_eps",
    "raw_eps",
    "opt_eps",
    "journal_on_eps",
    "journal_off_eps",
    "scenario_eps",
    "active_eps",
    "achieved_eps",
    "p99_s",
    "mttr_s",
)

BASELINE_DIR = (
    pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
)


def row_key(row: dict) -> tuple:
    """A row's configuration identity: every non-measured field."""
    return tuple(sorted((k, v) for k, v in row.items() if k not in MEASURED))


def load_rows(path: pathlib.Path) -> dict[tuple, dict]:
    """Sweep rows of one artifact, keyed by configuration.

    Handles a bare list, a ``{"rows": [...]}`` object, and objects with
    several named row lists (each list's name is folded into the key as
    a ``_section`` field; non-list values such as ``acceptance`` are
    ignored).
    """
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, list):
        sections = {"rows": data}
    else:
        sections = {
            name: value for name, value in data.items() if isinstance(value, list)
        }
    keyed: dict[tuple, dict] = {}
    for name, rows in sections.items():
        for row in rows:
            tagged = dict(row)
            if name != "rows":
                tagged["_section"] = name
            keyed[row_key(tagged)] = tagged
    return keyed


def check(
    fresh_path: pathlib.Path,
    baseline_path: pathlib.Path,
    threshold: float,
    metrics: list[str],
) -> int:
    """Print the comparison; return the process exit code."""
    if not baseline_path.exists():
        print(f"no committed baseline at {baseline_path}; nothing to compare")
        return 2
    fresh = load_rows(fresh_path)
    baseline = load_rows(baseline_path)

    regressions = []
    compared = 0
    for key, base_row in baseline.items():
        fresh_row = fresh.get(key)
        config = ", ".join(f"{k}={v}" for k, v in key)
        if fresh_row is None:
            print(f"  [skip] baseline-only configuration: {config}")
            continue
        saturated = (
            base_row.get("utilization", 0.0) > SATURATED_UTILIZATION
            or fresh_row.get("utilization", 0.0) > SATURATED_UTILIZATION
        )
        for metric in metrics:
            if metric not in base_row or metric not in fresh_row:
                continue
            if metric in LOWER_IS_BETTER and saturated:
                print(f"  [skip] saturated configuration ({metric}): {config}")
                continue
            compared += 1
            base_value = base_row[metric]
            fresh_value = fresh_row[metric]
            if base_value:
                ratio = fresh_value / base_value
            else:
                ratio = float("inf") if fresh_value else 1.0
            verdict = "ok"
            if metric in LOWER_IS_BETTER:
                regressed = fresh_value > LATENCY_FLOOR_S and ratio > LATENCY_RATIO
            else:
                regressed = ratio < 1.0 - threshold
            if regressed:
                verdict = "REGRESSION"
                regressions.append((config, metric, base_value, fresh_value))
            print(
                f"  [{verdict:>10}] {config} {metric}: "
                f"baseline {base_value:,.6g} -> fresh {fresh_value:,.6g} "
                f"({ratio:.2f}x)"
            )
    for key in fresh.keys() - baseline.keys():
        config = ", ".join(f"{k}={v}" for k, v in key)
        print(f"  [skip] fresh-only configuration: {config}")

    if not compared:
        print("no overlapping configurations between fresh and baseline artifacts")
        return 2
    if regressions:
        print(
            f"\n{len(regressions)} metric(s) regressed more than "
            f"{threshold:.0%} below baseline:"
        )
        for config, metric, base_value, fresh_value in regressions:
            print(f"  {config}: {metric} {base_value:,.6g} -> {fresh_value:,.6g}")
        return 1
    print(f"\nall {compared} compared metric(s) within {threshold:.0%} of baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on >threshold throughput regression vs committed baseline"
    )
    parser.add_argument(
        "fresh", type=pathlib.Path, help="freshly produced JSON artifact"
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=None,
        help="committed baseline artifact (default: the file of the same "
        f"name under {BASELINE_DIR})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional drop before failing (default: 0.30)",
    )
    parser.add_argument(
        "--metric",
        action="append",
        dest="metrics",
        help="measured field(s) to compare "
        f"(default: {', '.join(DEFAULT_METRICS)}; skipped where absent)",
    )
    args = parser.parse_args(argv)
    if args.baseline is None:
        args.baseline = BASELINE_DIR / args.fresh.name
    metrics = args.metrics or list(DEFAULT_METRICS)
    print(
        f"comparing {args.fresh} against {args.baseline} "
        f"(threshold {args.threshold:.0%}, metrics {', '.join(metrics)})"
    )
    return check(args.fresh, args.baseline, args.threshold, metrics)


if __name__ == "__main__":
    sys.exit(main())
