"""Regenerate EXPERIMENTS.md: paper-vs-measured for every table and figure.

Runs every reproduced experiment end to end and writes the results table
the repository documents.  Usage::

    python scripts/run_experiments.py [output-path] [--engine {eager,lazy}]

``--engine lazy`` regenerates the Table 1 sweep with the frontier-based
engine (:mod:`repro.core.lazy`) instead of the paper's eager pipeline;
state counts are identical, only the generation times change.

Runtime is a few minutes (dominated by Table 1's r=46 generation and the
model-checking sweeps).
"""

from __future__ import annotations

import argparse
import math
import statistics
import time

from repro.analysis.peerset_check import check_contending_updates, check_single_update
from repro.analysis.properties import commit_protocol_properties
from repro.analysis.spectrum import efsm_phase_transitions, phase_quotient
from repro.analysis.stats import PAPER_TABLE1, machine_stats, table1
from repro.baselines.generic_commit import GenericCommitAlgorithm
from repro.models.commit import CommitModel
from repro.models.commit_efsm import build_commit_efsm, commit_efsm_executor
from repro.render.dot import DotRenderer
from repro.render.source import JavaSourceRenderer, PythonSourceRenderer
from repro.render.text import TextRenderer
from repro.render.xml import XmlRenderer
from repro.runtime.compile import compile_machine
from repro.runtime.interp import MachineInterpreter
from repro.runtime.policy import GenerationPolicy, MachineFactory
from repro.storage import DataBlock, FaultPlan, GUID, StorageCluster
from repro.storage.p2p.keys import KEY_SPACE
from repro.storage.p2p.ring import ChordRing
from repro.storage.p2p.routing import Router

#: Fig 14's description block, for verbatim comparison.
FIG14_LINES = [
    "Have received initial update from client.",
    "Have not voted since another update has already been voted for.",
    "Have received 2 votes and no commits.",
    "Have not sent a commit since neither the vote threshold (3) nor the "
    "external commit threshold (2) has been reached.",
    "May not choose since another ongoing update has been voted for.",
    "Have not chosen this update since another ongoing update has been chosen.",
    "Waiting for 1 further vote (including local vote if any) before sending commit.",
    "Waiting for 2 further external commits to finish.",
]


def section_table1(out: list[str], engine: str = "eager") -> None:
    out.append(f"## Table 1 — state machine generation ({engine} engine)\n")
    out.append(
        "State counts are machine-independent and must match exactly; times "
        "are hardware/language-bound (paper: Java on a 2007 MacBook Pro; "
        "here: pure Python), so their *shape* is compared.\n"
    )
    out.append("| f | r | initial states | final states | time (s) paper | time (s) measured | counts match |")
    out.append("|---|---|----------------|--------------|----------------|-------------------|--------------|")
    rows = table1(engine=engine)
    paper = {row["r"]: row for row in PAPER_TABLE1}
    for row in rows:
        reference = paper[row.r]
        out.append(
            f"| {row.f} | {row.r} | {row.initial_states} | {row.final_states} "
            f"| {reference['generation_time_s']} | {row.generation_time_s:.3f} "
            f"| {'yes' if row.matches_paper() else '**NO**'} |"
        )
    ratio_measured = rows[-1].generation_time_s / rows[0].generation_time_s
    out.append(
        f"\nShape: measured time grows {ratio_measured:.0f}x from r=4 to r=46 "
        f"(paper: {19.1 / 0.10:.0f}x); generation remains sub-minute at the "
        "largest point, supporting the paper's conclusion that generation "
        "time is not a limiting factor.\n"
    )


def section_pipeline(out: list[str]) -> None:
    out.append("## Figs 7/11/12/13 — pipeline data structures (r=4)\n")
    machine, report = CommitModel(4).generate_with_report()
    unmerged = CommitModel(4).generate_state_machine(merge=False)
    full = CommitModel(4).generate_state_machine(prune=False, merge=False)
    out.append("| step | paper | measured |")
    out.append("|------|-------|----------|")
    out.append(f"| 1: possible states | 512 | {report.initial_states} |")
    out.append(
        f"| 2: transitions attached | (Fig 11) | {full.transition_count()} transitions |"
    )
    out.append(f"| 3: after pruning | 48 | {report.reachable_states} |")
    out.append(f"| 4: after merging | 33 | {report.merged_states} |")
    terminals = sum(1 for s in unmerged.states if s.final)
    out.append(
        f"\nThe 48 pruned states comprise 32 live states and {terminals} "
        "concrete terminal states that step 4 merges into the single "
        "FINISHED state.\n"
    )


def section_fig14(out: list[str]) -> None:
    out.append("## Fig 14 — generated textual state description\n")
    machine = CommitModel(4).generate_state_machine()
    rendered = TextRenderer(include_header=False).render_state(
        machine.get_state("T/2/F/0/F/F/F")
    )
    verbatim = all(line in rendered for line in FIG14_LINES)
    transitions = machine.get_state("T/2/F/0/F/F/F")
    targets = {
        t.message: t.target_name for t in transitions.transitions
    }
    expected_targets = {
        "vote": "T/3/T/0/T/F/F",
        "commit": "T/2/F/1/F/F/F",
        "free": "T/2/T/0/T/T/T",
    }
    out.append(f"- all 8 description lines reproduced verbatim: **{verbatim}**")
    out.append(
        f"- transitions and targets match the figure exactly: "
        f"**{targets == expected_targets}** ({targets})"
    )
    out.append("")


def section_artefacts(out: list[str]) -> None:
    out.append("## Figs 15/16 — diagram and source artefacts (r=4)\n")
    machine = CommitModel(4).generate_state_machine()
    xml = XmlRenderer().render(machine)
    dot = DotRenderer().render(machine)
    python_source = PythonSourceRenderer().render(machine)
    java_source = JavaSourceRenderer().render(machine)
    compiled = compile_machine(machine)
    instance = compiled.new_instance()
    for message in ["free", "update", "vote", "vote", "commit", "commit"]:
        instance.receive(message)
    out.append(
        f"- XML diagram document: {len(xml)} bytes, 33 states, round-trips isomorphically"
    )
    out.append(f"- DOT diagram: {len(dot)} bytes; phase transitions drawn bold (Fig 8)")
    out.append(
        f"- generated Python implementation: {len(python_source)} bytes; "
        f"compiles and completes a commit run (finished={instance.is_finished()})"
    )
    fig16_shape = (
        "void receiveVote()" in java_source
        and "case (F-0-F-0-F-F-F) :" in java_source
    )
    out.append(
        f"- generated Java (Fig 16 shape: receiveVote switch, dash-encoded "
        f"states): **{fig16_shape}**"
    )
    out.append("")


def section_structure(out: list[str]) -> None:
    out.append("## §3.1 — \"33 states with 3-4 transitions from each\"\n")
    stats = machine_stats(CommitModel(4).generate_state_machine())
    out.append(
        f"- measured: {stats.states} states; transitions-per-state histogram "
        f"{stats.transitions_per_state} (the finish state has 0; states "
        "adjacent to termination have 1-2)."
    )
    out.append("")


def section_efsm(out: list[str]) -> None:
    out.append("## §5.3 — the 9-state EFSM\n")
    efsm = build_commit_efsm()
    out.append(f"- hand-built commit EFSM: **{len(efsm)} states** (paper: 9)")
    matches = []
    for r in (4, 7, 13):
        pruned = CommitModel(r).generate_state_machine(merge=False)
        matches.append(phase_quotient(pruned) == efsm_phase_transitions(efsm))
    out.append(
        f"- phase quotient of the generated FSM equals the EFSM's transition "
        f"structure for r=4/7/13: **{all(matches)}**"
    )
    out.append("\n| r | f | FSM initial | FSM merged | EFSM |")
    out.append("|---|---|-------------|------------|------|")
    for r in (4, 5, 7, 10, 13, 16):
        machine = CommitModel(r).generate_state_machine()
        out.append(
            f"| {r} | {(r - 1) // 3} | {32 * r * r} | {len(machine)} | 9 |"
        )
    out.append(
        "\nMerged FSM size follows the closed form `12f^2 + 16f + 5 + "
        "(r - 3f - 1)(4f + 4)` (discovered during calibration; the paper's "
        "five rows are the `r = 3f + 1` points where the slack term vanishes).\n"
    )


def section_runtime(out: list[str]) -> None:
    out.append("## §4.4 — execution efficiency (the comparison the paper skipped)\n")
    trace = ["free", "update", "vote", "vote", "vote", "commit", "commit"]
    machine = CommitModel(4).generate_state_machine()
    compiled = compile_machine(machine)

    def measure(factory, runs=2000):
        start = time.perf_counter()
        for _ in range(runs):
            instance = factory()
            for message in trace:
                instance.receive(message)
        return (time.perf_counter() - start) / runs * 1e6

    rows = [
        ("compiled generated FSM", measure(compiled.new_instance)),
        ("interpreted FSM", measure(lambda: MachineInterpreter(machine))),
        ("generic algorithm", measure(lambda: GenericCommitAlgorithm(4))),
        ("EFSM executor", measure(lambda: commit_efsm_executor(4))),
    ]
    out.append("| implementation | per protocol run (µs) |")
    out.append("|----------------|----------------------|")
    for name, micros in rows:
        out.append(f"| {name} | {micros:.1f} |")
    spread = max(m for _, m in rows[:3]) / min(m for _, m in rows[:3])
    out.append(
        f"\nThe paper expected \"no significant difference\"; measured spread "
        f"across compiled/interpreted/generic is {spread:.1f}x — same order "
        "of magnitude, dominated by instance setup.\n"
    )


def section_policies(out: list[str]) -> None:
    out.append("## §4.2 — when to generate\n")
    workload = [4, 4, 4, 7, 4, 4, 7, 4, 4, 4]
    out.append("| policy | generations for 10 deployments | cache hit rate |")
    out.append("|--------|-------------------------------|----------------|")
    policies = (
        GenerationPolicy.ONCE,
        GenerationPolicy.PER_USE,
        GenerationPolicy.ON_DEMAND,
    )
    for policy in policies:
        factory = MachineFactory(
            lambda replication_factor: CommitModel(replication_factor), policy=policy
        )
        jobs = [4] * len(workload) if policy is GenerationPolicy.ONCE else workload
        for r in jobs:
            factory.compiled(replication_factor=r)
        hit_rate = (
            f"{factory.cache.stats.hit_rate:.0%}"
            if policy is GenerationPolicy.ON_DEMAND
            else "—"
        )
        out.append(f"| {policy.value} | {factory.generations} | {hit_rate} |")
    out.append("")


def section_system(out: list[str]) -> None:
    out.append("## §2 — the deployed system under faults\n")
    guid = GUID.for_name("experiments-guid")

    cluster = StorageCluster(node_count=12, replication_factor=4, seed=7)
    endpoint = cluster.add_endpoint("client")
    block = DataBlock(b"experiment-payload")
    store = endpoint.store_block(block)
    cluster.run_until(lambda: store.done)
    retrieve = endpoint.retrieve_block(block.pid)
    cluster.run_until(lambda: retrieve.done)
    append = endpoint.append_version(guid, block.pid)
    cluster.run_until(lambda: append.done, timeout=3000)
    cluster.run(100)
    out.append(
        f"- store: success={store.success} with {len(store.acked)}/4 acks "
        f"(threshold r-f=3); retrieve verified={retrieve.success}; "
        f"append committed with {len(append.confirmations)} confirmations "
        f"(threshold f+1=2)"
    )

    probe = StorageCluster(node_count=12, replication_factor=4, seed=3)
    peers = probe.add_endpoint("p").locate_peers(guid.key)
    byz = StorageCluster(
        node_count=12, replication_factor=4, seed=3,
        fault_plans={peers[0]: FaultPlan.promiscuous()},
    )
    endpoint = byz.add_endpoint("client")
    append = endpoint.append_version(guid, block.pid)
    byz.run_until(lambda: append.done, timeout=3000)
    byz.run(150)
    out.append(
        f"- with 1 Byzantine (promiscuous) peer-set member: append "
        f"success={append.success}, correct members' histories "
        f"prefix-consistent={byz.histories_prefix_consistent(guid.hex)}"
    )

    attempts = []
    consistent = 0
    seeds = range(10)
    for seed in seeds:
        race = StorageCluster(
            node_count=12, replication_factor=4, seed=seed, abandon_timeout=20.0
        )
        a = race.add_endpoint("alice")
        b = race.add_endpoint("bob")
        op_a = a.append_version(guid, DataBlock(b"a").pid)
        op_b = b.append_version(guid, DataBlock(b"b").pid)
        race.run_until(lambda: op_a.done and op_b.done, timeout=10_000)
        race.run(300)
        attempts.append(op_a.attempts + op_b.attempts)
        consistent += race.histories_prefix_consistent(guid.hex)
    out.append(
        f"- contention (2 clients, 10 seeds): all commits succeeded; "
        f"attempts per seed {attempts} "
        f"(>2 means the timeout/retry scheme fired); "
        f"{consistent}/10 seeds ended prefix-consistent"
    )
    out.append("")


def section_routing(out: list[str]) -> None:
    out.append("## Chord routing — logarithmic hop scaling (paper §2, [6])\n")
    out.append("| nodes | avg hops | log2(n) |")
    out.append("|-------|----------|---------|")
    for count in (16, 64, 256):
        ring = ChordRing()
        for index in range(count):
            ring.join(f"node-{index:04d}")
        router = Router(ring)
        hops = [
            router.lookup("node-0000", (i * KEY_SPACE) // 200 + i).hop_count
            for i in range(200)
        ]
        out.append(
            f"| {count} | {statistics.mean(hops):.2f} | {math.log2(count):.2f} |"
        )
    out.append("")


def section_modelcheck(out: list[str]) -> None:
    out.append("## Model checking the deployed family (beyond the paper)\n")
    out.append(
        "Exhaustive exploration of message-delivery interleavings across a "
        "peer set of generated FSMs (the paper's §1 correctness claim, made "
        "mechanical):\n"
    )
    rows = []
    clean = check_single_update(4, silent_members=0)
    rows.append(("1 update, clean peer set", clean))
    silent1 = check_single_update(4, silent_members=1)
    rows.append(("1 update, f=1 silent member", silent1))
    silent2 = check_single_update(4, silent_members=2)
    rows.append(("1 update, f+1=2 silent members", silent2))
    split22 = check_contending_updates(4, first_half=2)
    rows.append(("2 updates, 2/2 split (§2.2 deadlock)", split22))
    split31 = check_contending_updates(4, first_half=3, max_states=400_000)
    rows.append(("2 updates, 3/1 split (bounded)", split31))
    out.append("| scenario | system states | outcome |")
    out.append("|----------|---------------|---------|")
    for label, result in rows:
        if result.deadlock_possible and result.all_finished_quiescent == 0:
            outcome = "every interleaving deadlocks"
        elif result.always_terminates:
            outcome = "every interleaving commits"
        else:
            outcome = f"outcomes {dict(result.outcome_counts)}"
        suffix = " (truncated)" if result.truncated else ""
        out.append(f"| {label} | {result.states_explored}{suffix} | {outcome} |")
    assert all(result.safe for _, result in rows)
    out.append(
        "\nNo explored interleaving in any scenario produced a partial "
        "commit (divergent histories): the safety property holds "
        "everywhere; liveness fails exactly when more than f members are "
        "silent or votes split evenly — which is why §2.2 prescribes "
        "timeout/retry.\n"
    )

    machine = CommitModel(4).generate_state_machine()
    reports = commit_protocol_properties(machine)
    out.append("Per-machine path properties (all paths, r=4): "
               + "; ".join(str(report) for report in reports) + ".\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    parser.add_argument(
        "--engine",
        choices=("eager", "lazy"),
        default="eager",
        help="generation engine for the Table 1 sweep (default: eager; "
        "'lazy' uses frontier-based on-the-fly reachable-set construction)",
    )
    args = parser.parse_args()
    target = args.output
    out: list[str] = []
    out.append("# EXPERIMENTS — paper vs. measured\n")
    out.append(
        "Reproduction of Kirby, Dearle & Norcross, *Design, Implementation "
        "and Deployment of State Machines Using a Generative Approach* "
        "(DSN 2007).  Regenerate this file with "
        "`python scripts/run_experiments.py`.\n"
    )
    started = time.time()

    def section_table1_selected(lines: list[str]) -> None:
        section_table1(lines, engine=args.engine)

    for section in (
        section_table1_selected,
        section_pipeline,
        section_fig14,
        section_artefacts,
        section_structure,
        section_efsm,
        section_runtime,
        section_policies,
        section_system,
        section_routing,
        section_modelcheck,
    ):
        section(out)
        print(f"  done: {section.__name__} ({time.time() - started:.0f}s elapsed)")
    out.append(
        f"---\n\nGenerated in {time.time() - started:.0f}s by "
        "`scripts/run_experiments.py`.\n"
    )
    with open(target, "w", encoding="utf-8") as handle:
        handle.write("\n".join(out))
    print(f"wrote {target}")


if __name__ == "__main__":
    main()
