"""Tests for scripts/check_bench_regression.py."""

import importlib.util
import json
import pathlib

_SCRIPT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "scripts"
    / "check_bench_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
checker = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(checker)


def write_artifact(path, rows):
    path.write_text(json.dumps({"rows": rows, "acceptance": None}))
    return path


ROW = {
    "scenario": "uniform",
    "instances": 500,
    "events": 10_000,
    "shards": 4,
    "naive_eps": 1_000_000.0,
    "batched_eps": 5_000_000.0,
    "speedup": 5.0,
}


class TestRowMatching:
    def test_key_ignores_measured_fields(self):
        faster = dict(ROW, batched_eps=9_000_000.0, speedup=9.0)
        assert checker.row_key(ROW) == checker.row_key(faster)

    def test_key_distinguishes_configurations(self):
        other = dict(ROW, scenario="burst")
        assert checker.row_key(ROW) != checker.row_key(other)


class TestCheck:
    def test_within_threshold_passes(self, tmp_path, capsys):
        baseline = write_artifact(tmp_path / "base.json", [ROW])
        fresh = write_artifact(
            tmp_path / "fresh.json", [dict(ROW, batched_eps=4_000_000.0)]
        )
        assert checker.check(fresh, baseline, 0.30, ["batched_eps"]) == 0
        assert "within 30%" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        baseline = write_artifact(tmp_path / "base.json", [ROW])
        fresh = write_artifact(
            tmp_path / "fresh.json", [dict(ROW, batched_eps=3_000_000.0)]
        )
        assert checker.check(fresh, baseline, 0.30, ["batched_eps"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_improvement_passes(self, tmp_path):
        baseline = write_artifact(tmp_path / "base.json", [ROW])
        fresh = write_artifact(
            tmp_path / "fresh.json", [dict(ROW, batched_eps=9_000_000.0)]
        )
        assert checker.check(fresh, baseline, 0.30, ["batched_eps"]) == 0

    def test_unmatched_configurations_are_skipped(self, tmp_path, capsys):
        baseline = write_artifact(tmp_path / "base.json", [ROW])
        fresh = write_artifact(
            tmp_path / "fresh.json",
            [dict(ROW), dict(ROW, scenario="burst", batched_eps=1.0)],
        )
        assert checker.check(fresh, baseline, 0.30, ["batched_eps"]) == 0
        assert "fresh-only configuration" in capsys.readouterr().out

    def test_missing_baseline_is_inconclusive(self, tmp_path):
        fresh = write_artifact(tmp_path / "fresh.json", [ROW])
        assert checker.check(fresh, tmp_path / "missing.json", 0.30, ["x"]) == 2

    def test_no_overlap_is_inconclusive(self, tmp_path):
        baseline = write_artifact(tmp_path / "base.json", [ROW])
        fresh = write_artifact(
            tmp_path / "fresh.json", [dict(ROW, scenario="hotkey")]
        )
        assert checker.check(fresh, baseline, 0.30, ["batched_eps"]) == 2


class TestMain:
    def test_main_against_committed_baseline_shape(self, tmp_path):
        fresh = write_artifact(tmp_path / "fresh.json", [ROW])
        baseline = write_artifact(tmp_path / "base.json", [ROW])
        assert (
            checker.main([str(fresh), "--baseline", str(baseline)]) == 0
        )

    def test_committed_baseline_exists_and_parses(self):
        assert checker.DEFAULT_BASELINE.exists()
        rows = checker.load_rows(checker.DEFAULT_BASELINE)
        assert rows
        for key, row in rows.items():
            assert "batched_eps" in row
            assert "naive_eps" in row

    def test_threshold_flag(self, tmp_path):
        baseline = write_artifact(tmp_path / "base.json", [ROW])
        fresh = write_artifact(
            tmp_path / "fresh.json", [dict(ROW, batched_eps=4_000_000.0)]
        )
        assert (
            checker.main(
                [
                    str(fresh),
                    "--baseline",
                    str(baseline),
                    "--threshold",
                    "0.10",
                    "--metric",
                    "batched_eps",
                ]
            )
            == 1
        )
