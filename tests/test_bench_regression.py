"""Tests for scripts/check_bench_regression.py."""

import importlib.util
import json
import pathlib

_SCRIPT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "scripts"
    / "check_bench_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
checker = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(checker)


def write_artifact(path, rows):
    path.write_text(json.dumps({"rows": rows, "acceptance": None}))
    return path


ROW = {
    "scenario": "uniform",
    "instances": 500,
    "events": 10_000,
    "shards": 4,
    "naive_eps": 1_000_000.0,
    "batched_eps": 5_000_000.0,
    "speedup": 5.0,
}


class TestRowMatching:
    def test_key_ignores_measured_fields(self):
        faster = dict(ROW, batched_eps=9_000_000.0, speedup=9.0)
        assert checker.row_key(ROW) == checker.row_key(faster)

    def test_key_distinguishes_configurations(self):
        other = dict(ROW, scenario="burst")
        assert checker.row_key(ROW) != checker.row_key(other)


class TestMultiSectionArtifacts:
    """BENCH_flatten / BENCH_opt hold several named row lists."""

    def artifact(self, path, opt_eps=2_000_000.0):
        path.write_text(
            json.dumps(
                {
                    "passes": [
                        {
                            "machine": "commit-hsm[r=4]",
                            "pass": "merge",
                            "states_before": 36,
                            "states_after": 35,
                            "pass_ms": 0.3,
                        }
                    ],
                    "serve": [
                        {
                            "model": "commit_hsm[r=4]",
                            "instances": 500,
                            "raw_eps": 2_000_000.0,
                            "opt_eps": opt_eps,
                            "ratio": opt_eps / 2_000_000.0,
                        }
                    ],
                    "acceptance": None,
                }
            )
        )
        return path

    def test_sections_become_key_fields(self, tmp_path):
        rows = checker.load_rows(self.artifact(tmp_path / "a.json"))
        assert len(rows) == 2
        assert {row["_section"] for row in rows.values()} == {"passes", "serve"}

    def test_same_config_in_different_sections_does_not_collide(self, tmp_path):
        rows = checker.load_rows(self.artifact(tmp_path / "a.json"))
        keys = list(rows)
        assert keys[0] != keys[1]

    def test_opt_eps_regression_detected(self, tmp_path, capsys):
        baseline = self.artifact(tmp_path / "base.json")
        fresh = self.artifact(tmp_path / "fresh.json", opt_eps=1_000_000.0)
        assert checker.check(fresh, baseline, 0.30, ["opt_eps"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_opt_eps_within_threshold_passes(self, tmp_path):
        baseline = self.artifact(tmp_path / "base.json")
        fresh = self.artifact(tmp_path / "fresh.json", opt_eps=1_900_000.0)
        assert checker.check(fresh, baseline, 0.30, ["opt_eps", "raw_eps"]) == 0

    def test_bare_list_artifact_still_loads(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps([ROW]))
        rows = checker.load_rows(path)
        assert len(rows) == 1
        assert "_section" not in next(iter(rows.values()))


class TestCheck:
    def test_within_threshold_passes(self, tmp_path, capsys):
        baseline = write_artifact(tmp_path / "base.json", [ROW])
        fresh = write_artifact(
            tmp_path / "fresh.json", [dict(ROW, batched_eps=4_000_000.0)]
        )
        assert checker.check(fresh, baseline, 0.30, ["batched_eps"]) == 0
        assert "within 30%" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        baseline = write_artifact(tmp_path / "base.json", [ROW])
        fresh = write_artifact(
            tmp_path / "fresh.json", [dict(ROW, batched_eps=3_000_000.0)]
        )
        assert checker.check(fresh, baseline, 0.30, ["batched_eps"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_improvement_passes(self, tmp_path):
        baseline = write_artifact(tmp_path / "base.json", [ROW])
        fresh = write_artifact(
            tmp_path / "fresh.json", [dict(ROW, batched_eps=9_000_000.0)]
        )
        assert checker.check(fresh, baseline, 0.30, ["batched_eps"]) == 0

    def test_unmatched_configurations_are_skipped(self, tmp_path, capsys):
        baseline = write_artifact(tmp_path / "base.json", [ROW])
        fresh = write_artifact(
            tmp_path / "fresh.json",
            [dict(ROW), dict(ROW, scenario="burst", batched_eps=1.0)],
        )
        assert checker.check(fresh, baseline, 0.30, ["batched_eps"]) == 0
        assert "fresh-only configuration" in capsys.readouterr().out

    def test_missing_baseline_is_inconclusive(self, tmp_path):
        fresh = write_artifact(tmp_path / "fresh.json", [ROW])
        assert checker.check(fresh, tmp_path / "missing.json", 0.30, ["x"]) == 2

    def test_no_overlap_is_inconclusive(self, tmp_path):
        baseline = write_artifact(tmp_path / "base.json", [ROW])
        fresh = write_artifact(
            tmp_path / "fresh.json", [dict(ROW, scenario="hotkey")]
        )
        assert checker.check(fresh, baseline, 0.30, ["batched_eps"]) == 2


class TestMain:
    def test_main_against_committed_baseline_shape(self, tmp_path):
        fresh = write_artifact(tmp_path / "fresh.json", [ROW])
        baseline = write_artifact(tmp_path / "base.json", [ROW])
        assert (
            checker.main([str(fresh), "--baseline", str(baseline)]) == 0
        )

    def test_committed_serve_baseline_exists_and_parses(self):
        baseline = checker.BASELINE_DIR / "BENCH_serve.json"
        assert baseline.exists()
        rows = checker.load_rows(baseline)
        assert rows
        for key, row in rows.items():
            assert "batched_eps" in row
            assert "naive_eps" in row

    def test_committed_flatten_baseline_exists_and_parses(self):
        baseline = checker.BASELINE_DIR / "BENCH_flatten.json"
        assert baseline.exists()
        rows = checker.load_rows(baseline)
        sections = {row.get("_section") for row in rows.values()}
        assert sections == {"flatten", "serve"}
        assert any("batched_eps" in row for row in rows.values())

    def test_committed_opt_baseline_exists_and_parses(self):
        baseline = checker.BASELINE_DIR / "BENCH_opt.json"
        assert baseline.exists()
        rows = checker.load_rows(baseline)
        sections = {row.get("_section") for row in rows.values()}
        assert sections == {"passes", "serve"}
        assert any("opt_eps" in row for row in rows.values())

    def test_default_baseline_derived_from_fresh_name(self, tmp_path, capsys):
        fresh = write_artifact(tmp_path / "BENCH_serve.json", [ROW])
        # No --baseline: resolves to benchmarks/baselines/BENCH_serve.json.
        assert checker.main([str(fresh)]) in (0, 1)
        out = capsys.readouterr().out
        assert "baselines" in out and "BENCH_serve.json" in out

    def test_threshold_flag(self, tmp_path):
        baseline = write_artifact(tmp_path / "base.json", [ROW])
        fresh = write_artifact(
            tmp_path / "fresh.json", [dict(ROW, batched_eps=4_000_000.0)]
        )
        assert (
            checker.main(
                [
                    str(fresh),
                    "--baseline",
                    str(baseline),
                    "--threshold",
                    "0.10",
                    "--metric",
                    "batched_eps",
                ]
            )
            == 1
        )
