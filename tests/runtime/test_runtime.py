"""Tests for the deployment runtime: actions, compile, interp."""

import pytest

from repro.core.errors import DeploymentError
from repro.runtime.actions import CallbackActions, RecordingActions
from repro.runtime.compile import ACTION_BASE_NAME, compile_machine, load_machine_class
from repro.runtime.interp import MachineInterpreter
from tests.conftest import commit_machine, compiled_commit


class TestRecordingActions:
    def test_records_in_order(self):
        base = RecordingActions()
        base.send_vote()
        base.send_commit()
        assert base.sent == ["vote", "commit"]

    def test_sink_forwarding(self):
        seen = []
        base = RecordingActions(sink=seen.append)
        base.send_not_free()
        assert seen == ["not_free"]

    def test_non_action_attribute_raises(self):
        with pytest.raises(AttributeError):
            RecordingActions().bogus_method

    def test_clear_sent(self):
        base = RecordingActions()
        base.send_vote()
        base.clear_sent()
        assert base.sent == []


class TestCallbackActions:
    def test_forwards_each_action(self):
        seen = []
        base = CallbackActions(seen.append)
        base.send_vote()
        base.send_free()
        assert seen == ["vote", "free"]

    def test_non_action_attribute_raises(self):
        with pytest.raises(AttributeError):
            CallbackActions(print).whatever


class TestCompileMachine:
    def test_returns_all_artefacts(self):
        compiled = compiled_commit(4)
        assert compiled.source
        assert compiled.module is not None
        assert compiled.cls.__name__ == "CommitR4Machine"

    def test_action_base_bound_in_module(self):
        compiled = compiled_commit(4)
        assert compiled.module.__dict__[ACTION_BASE_NAME] is RecordingActions

    def test_custom_action_base(self):
        seen = []
        compiled = compile_machine(commit_machine(4), action_base=CallbackActions)
        instance = compiled.new_instance(seen.append)
        instance.receive("free")
        instance.receive("update")
        assert seen == ["vote", "not_free"]

    def test_load_machine_class_shorthand(self):
        cls = load_machine_class(commit_machine(4))
        assert cls().get_state() == "F/0/F/0/F/F/F"

    def test_modules_get_unique_names(self):
        a = compile_machine(commit_machine(4))
        b = compile_machine(commit_machine(4))
        assert a.module.__name__ != b.module.__name__

    def test_instances_are_independent(self):
        compiled = compiled_commit(4)
        one = compiled.new_instance()
        two = compiled.new_instance()
        one.receive("free")
        assert two.get_state() == "F/0/F/0/F/F/F"


class TestMachineInterpreter:
    def test_start_state(self):
        interp = MachineInterpreter(commit_machine(4))
        assert interp.get_state() == "F/0/F/0/F/F/F"
        assert not interp.is_finished()

    def test_unknown_message_rejected(self):
        interp = MachineInterpreter(commit_machine(4))
        with pytest.raises(DeploymentError):
            interp.receive("bogus")

    def test_inapplicable_message_ignored(self):
        interp = MachineInterpreter(commit_machine(4))
        assert interp.receive("not_free") is False

    def test_run_returns_new_actions(self):
        interp = MachineInterpreter(commit_machine(4))
        first = interp.run(["free", "update"])
        assert first == ["vote", "not_free"]
        second = interp.run(["vote", "vote"])
        assert second == ["commit"]

    def test_set_state(self):
        interp = MachineInterpreter(commit_machine(4))
        interp.set_state("T/2/F/0/F/F/F")
        assert interp.get_state() == "T/2/F/0/F/F/F"

    def test_reset(self):
        interp = MachineInterpreter(commit_machine(4))
        interp.run(["free", "update"])
        interp.reset()
        assert interp.get_state() == "F/0/F/0/F/F/F"
        assert interp.sent == []

    def test_sink(self):
        seen = []
        interp = MachineInterpreter(commit_machine(4), sink=seen.append)
        interp.run(["free", "update"])
        assert seen == ["vote", "not_free"]

    @pytest.mark.parametrize("r", [4, 7])
    def test_interpreter_matches_compiled(self, r):
        """Interpreted and compiled execution are interchangeable."""
        import random

        rng = random.Random(99)
        machine = commit_machine(r)
        compiled = compiled_commit(r)
        for _ in range(50):
            interp = MachineInterpreter(machine)
            instance = compiled.new_instance()
            for _ in range(30):
                message = rng.choice(machine.messages)
                assert interp.receive(message) == instance.receive(message)
                assert interp.get_state() == instance.get_state()
                assert interp.sent == instance.sent


class TestCompiledReset:
    def test_reset_matches_interpreter_protocol(self):
        """Both backends reset to the start state with a cleared log."""
        machine = commit_machine(4)
        interp = MachineInterpreter(machine)
        instance = compiled_commit(4).new_instance()
        for runner in (interp, instance):
            for message in ["free", "update", "vote"]:
                runner.receive(message)
            runner.reset()
        assert instance.get_state() == interp.get_state() == "F/0/F/0/F/F/F"
        assert instance.sent == interp.sent == []

    def test_reset_allows_reuse_without_reconstruction(self):
        instance = compiled_commit(4).new_instance()
        fresh = compiled_commit(4).new_instance()
        script = ["free", "update", "vote", "vote", "commit", "commit"]
        for message in script:
            instance.receive(message)
        assert instance.is_finished()
        instance.reset()
        assert not instance.is_finished()
        for message in script:
            instance.receive(message)
            fresh.receive(message)
        assert instance.is_finished()
        assert instance.sent == fresh.sent

    def test_standalone_module_reset(self, tmp_path):
        """Generated standalone modules (no action base) also reset."""
        from repro.render.source import PythonSourceRenderer

        source = PythonSourceRenderer(action_base=None).render(commit_machine(4))
        namespace: dict = {}
        exec(compile(source, "<standalone>", "exec"), namespace)
        cls = next(
            value
            for name, value in namespace.items()
            if isinstance(value, type) and name.endswith("Machine")
        )
        instance = cls()
        instance.receive("free")
        assert instance.get_state() != namespace["START_STATE"]
        instance.reset()
        assert instance.get_state() == namespace["START_STATE"]
