"""Tests for exporting generated source to disk (paper §4.3)."""

import pytest

from repro.core.errors import DeploymentError
from repro.runtime.export import (
    export_machine_module,
    import_machine_module,
    is_stale,
    machine_fingerprint,
    read_fingerprint,
)
from tests.conftest import commit_machine


class TestExportImport:
    def test_roundtrip(self, tmp_path):
        machine = commit_machine(4)
        path = export_machine_module(machine, tmp_path / "commit_r4.py")
        cls = import_machine_module(path, "CommitR4Machine")
        instance = cls()
        for message in ["free", "update", "vote", "vote", "commit", "commit"]:
            instance.receive(message)
        assert instance.is_finished()

    def test_exported_module_is_standalone(self, tmp_path):
        path = export_machine_module(commit_machine(4), tmp_path / "m.py")
        text = path.read_text()
        assert "import repro" not in text
        assert "ActionsBase" not in text

    def test_custom_class_name(self, tmp_path):
        path = export_machine_module(
            commit_machine(4), tmp_path / "m.py", class_name="Custom"
        )
        cls = import_machine_module(path, "Custom")
        assert cls().get_state() == "F/0/F/0/F/F/F"

    def test_import_missing_file(self, tmp_path):
        with pytest.raises(DeploymentError):
            import_machine_module(tmp_path / "nope.py", "X")

    def test_import_wrong_class(self, tmp_path):
        path = export_machine_module(commit_machine(4), tmp_path / "m.py")
        with pytest.raises(DeploymentError):
            import_machine_module(path, "WrongName")

    def test_overridden_actions(self, tmp_path):
        path = export_machine_module(commit_machine(4), tmp_path / "m.py")
        cls = import_machine_module(path, "CommitR4Machine")
        seen = []

        class Wired(cls):
            def send_vote(self):
                seen.append("vote")

            def send_not_free(self):
                seen.append("not_free")

        instance = Wired()
        instance.receive("free")
        instance.receive("update")
        assert seen == ["vote", "not_free"]


class TestFingerprints:
    def test_fingerprint_stable(self):
        assert machine_fingerprint(commit_machine(4)) == machine_fingerprint(
            commit_machine(4)
        )

    def test_fingerprint_differs_across_machines(self):
        assert machine_fingerprint(commit_machine(4)) != machine_fingerprint(
            commit_machine(7)
        )

    def test_read_fingerprint(self, tmp_path):
        machine = commit_machine(4)
        path = export_machine_module(machine, tmp_path / "m.py")
        assert read_fingerprint(path) == machine_fingerprint(machine)

    def test_read_fingerprint_missing_header(self, tmp_path):
        path = tmp_path / "plain.py"
        path.write_text("x = 1\n")
        with pytest.raises(DeploymentError):
            read_fingerprint(path)

    def test_staleness_detection(self, tmp_path):
        """The copy-into-codebase hazard: artefact vs model drift."""
        path = export_machine_module(commit_machine(4), tmp_path / "m.py")
        assert not is_stale(commit_machine(4), path)
        assert is_stale(commit_machine(7), path)

    def test_missing_artefact_is_stale(self, tmp_path):
        assert is_stale(commit_machine(4), tmp_path / "missing.py")
