"""Tests for generation caching and policies (paper §4.2)."""

import pytest

from repro.core.errors import DeploymentError
from repro.models.commit import CommitModel
from repro.runtime.cache import GeneratedCodeCache
from repro.runtime.policy import GenerationPolicy, MachineFactory


class TestGeneratedCodeCache:
    def test_miss_then_hit(self):
        cache = GeneratedCodeCache()
        calls = []
        cache.get_or_generate("k", lambda: calls.append(1) or "v")
        value = cache.get_or_generate("k", lambda: calls.append(2) or "other")
        assert value == "v"
        assert calls == [1]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_hit_rate(self):
        cache = GeneratedCodeCache()
        assert cache.stats.hit_rate == 0.0
        cache.get_or_generate("k", lambda: "v")
        cache.get_or_generate("k", lambda: "v")
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = GeneratedCodeCache(max_entries=2)
        cache.get_or_generate("a", lambda: 1)
        cache.get_or_generate("b", lambda: 2)
        cache.get_or_generate("a", lambda: 0)  # touch a: b becomes LRU
        cache.get_or_generate("c", lambda: 3)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_invalidate(self):
        cache = GeneratedCodeCache()
        cache.get_or_generate("k", lambda: "v")
        assert cache.invalidate("k")
        assert not cache.invalidate("k")
        assert "k" not in cache

    def test_clear_resets_stats(self):
        cache = GeneratedCodeCache()
        cache.get_or_generate("k", lambda: "v")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 0
        assert cache.stats.lookups == 0

    def test_unbounded_cache_never_evicts(self):
        cache = GeneratedCodeCache(max_entries=None)
        for i in range(100):
            cache.get_or_generate(i, lambda i=i: i)
        assert len(cache) == 100
        assert cache.stats.evictions == 0

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            GeneratedCodeCache(max_entries=0)


def factory(policy: GenerationPolicy) -> MachineFactory:
    return MachineFactory(
        lambda replication_factor: CommitModel(replication_factor), policy=policy
    )


class TestPolicies:
    def test_once_generates_single_time(self):
        f = factory(GenerationPolicy.ONCE)
        a = f.compiled(replication_factor=4)
        b = f.compiled(replication_factor=4)
        assert a is b
        assert f.generations == 1

    def test_once_rejects_other_parameters(self):
        f = factory(GenerationPolicy.ONCE)
        f.compiled(replication_factor=4)
        with pytest.raises(DeploymentError):
            f.compiled(replication_factor=7)

    def test_per_use_regenerates_every_time(self):
        f = factory(GenerationPolicy.PER_USE)
        a = f.compiled(replication_factor=4)
        b = f.compiled(replication_factor=4)
        assert a is not b
        assert f.generations == 2

    def test_on_demand_generates_per_parameter(self):
        f = factory(GenerationPolicy.ON_DEMAND)
        a = f.compiled(replication_factor=4)
        b = f.compiled(replication_factor=4)
        c = f.compiled(replication_factor=7)
        assert a is b
        assert c is not a
        assert f.generations == 2
        assert f.cache.stats.hits == 1

    def test_new_instance_drives_protocol(self):
        f = factory(GenerationPolicy.ON_DEMAND)
        instance = f.new_instance(replication_factor=4)
        for message in ["free", "update", "vote", "vote", "commit", "commit"]:
            instance.receive(message)
        assert instance.is_finished()

    def test_generated_machines_differ_per_parameter(self):
        f = factory(GenerationPolicy.ON_DEMAND)
        r4 = f.compiled(replication_factor=4)
        r7 = f.compiled(replication_factor=7)
        assert len(r4.machine) == 33
        assert len(r7.machine) == 85


class TestCanonicalParameterKey:
    def test_scalars_pass_through(self):
        from repro.runtime.cache import canonical_parameter_key

        for value in ("x", 3, 2.5, True, None, b"raw"):
            assert canonical_parameter_key(value) == value

    def test_dict_order_independent(self):
        from repro.runtime.cache import canonical_parameter_key

        assert canonical_parameter_key({"a": 1, "b": 2}) == canonical_parameter_key(
            {"b": 2, "a": 1}
        )

    def test_nested_structures_freeze(self):
        from repro.runtime.cache import canonical_parameter_key

        key = canonical_parameter_key({"w": {"deep": [1, {2, 3}]}})
        hash(key)  # must be hashable all the way down

    def test_container_kinds_do_not_collide(self):
        from repro.runtime.cache import canonical_parameter_key

        assert canonical_parameter_key([1, 2]) != canonical_parameter_key({1, 2})
        assert canonical_parameter_key([1, 2]) == canonical_parameter_key((1, 2))

    def test_set_order_independent(self):
        from repro.runtime.cache import canonical_parameter_key

        assert canonical_parameter_key({"x", "y", "z"}) == canonical_parameter_key(
            {"z", "x", "y"}
        )

    def test_unhashable_objects_degrade_to_repr(self):
        from repro.runtime.cache import canonical_parameter_key

        class Blob:
            __hash__ = None

            def __repr__(self):
                return "Blob(42)"

        key = canonical_parameter_key({"blob": Blob()})
        hash(key)
        assert key == canonical_parameter_key({"blob": Blob()})
