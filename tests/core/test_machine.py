"""Unit tests for the StateMachine container."""

import pytest

from repro.core.errors import MachineStructureError
from repro.core.machine import StateMachine
from repro.core.state import State, Transition


def small_machine() -> StateMachine:
    machine = StateMachine(["go", "stop"], name="toy")
    a = machine.add_state(State("A"))
    b = machine.add_state(State("B"))
    machine.add_state(State("C", final=True))
    a.record_transition(Transition("go", "B", ["->ping"]))
    b.record_transition(Transition("go", "C"))
    b.record_transition(Transition("stop", "A"))
    machine.set_start("A")
    machine.set_finish("C")
    return machine


class TestConstruction:
    def test_requires_messages(self):
        with pytest.raises(MachineStructureError):
            StateMachine([])

    def test_rejects_duplicate_messages(self):
        with pytest.raises(MachineStructureError):
            StateMachine(["go", "go"])

    def test_duplicate_state_names_rejected(self):
        machine = StateMachine(["go"])
        machine.add_state(State("A"))
        with pytest.raises(MachineStructureError):
            machine.add_state(State("A"))

    def test_len_and_contains(self):
        machine = small_machine()
        assert len(machine) == 3
        assert "A" in machine
        assert "Z" not in machine

    def test_get_unknown_state(self):
        with pytest.raises(MachineStructureError):
            small_machine().get_state("Z")


class TestStartFinish:
    def test_start_state(self):
        assert small_machine().start_state.name == "A"

    def test_unset_start_raises(self):
        machine = StateMachine(["go"])
        machine.add_state(State("A"))
        with pytest.raises(MachineStructureError):
            _ = machine.start_state

    def test_set_start_unknown_rejected(self):
        with pytest.raises(MachineStructureError):
            small_machine().set_start("Z")

    def test_finish_state(self):
        assert small_machine().finish_state.name == "C"

    def test_finish_can_be_cleared(self):
        machine = small_machine()
        machine.set_finish(None)
        assert machine.finish_state is None

    def test_final_states(self):
        assert [s.name for s in small_machine().final_states()] == ["C"]


class TestStructure:
    def test_transition_count(self):
        assert small_machine().transition_count() == 3

    def test_phase_transition_count(self):
        assert small_machine().phase_transition_count() == 1

    def test_transitions_iterates_all(self):
        pairs = list(small_machine().transitions())
        assert len(pairs) == 3
        assert all(isinstance(t, Transition) for _, t in pairs)

    def test_reachable_names(self):
        machine = small_machine()
        machine.add_state(State("ORPHAN"))
        assert machine.reachable_names() == {"A", "B", "C"}

    def test_remove_states(self):
        machine = small_machine()
        machine.add_state(State("ORPHAN"))
        machine.remove_states(["ORPHAN"])
        assert "ORPHAN" not in machine

    def test_remove_start_state_rejected(self):
        machine = small_machine()
        with pytest.raises(MachineStructureError):
            machine.remove_states(["A"])

    def test_remove_finish_state_clears_designation(self):
        machine = small_machine()
        machine.get_state("B").replace_transitions(
            [Transition("stop", "A")]
        )
        machine.remove_states(["C"])
        assert machine.finish_state is None

    def test_integrity_detects_dangling_target(self):
        machine = small_machine()
        machine.get_state("A").replace_transitions([Transition("go", "MISSING")])
        with pytest.raises(MachineStructureError):
            machine.check_integrity()

    def test_integrity_detects_undeclared_message(self):
        machine = small_machine()
        machine.get_state("A").replace_transitions([Transition("jump", "B")])
        with pytest.raises(MachineStructureError):
            machine.check_integrity()

    def test_integrity_passes_for_clean_machine(self):
        small_machine().check_integrity()

    def test_parameters_are_copied(self):
        machine = StateMachine(["go"], parameters={"r": 4})
        params = machine.parameters
        params["r"] = 99
        assert machine.parameters == {"r": 4}
