"""Tests for the four-step generation pipeline (paper §3.4, Figs 7-13)."""

from repro.core.components import BooleanComponent, IntComponent
from repro.core.model import AbstractModel, StateView, TransitionBuilder
from repro.core.pipeline import generate
from tests.conftest import commit_machine, commit_report


class TwoCounterModel(AbstractModel):
    """Toy model with an unreachable region and mergeable states."""

    def configure(self, **kw):
        return (
            [IntComponent("a", 2), BooleanComponent("seen")],
            ("bump", "mark"),
        )

    def is_final(self, view: StateView) -> bool:
        return view["a"] == 2

    def generate_transition(self, message: str, b: TransitionBuilder) -> None:
        if message == "bump":
            b.increment("a")
        elif message == "mark":
            if b["seen"]:
                b.invalid("already marked")
            b.set("seen", True)


class TestPipelineSteps:
    def test_step1_enumerates_full_product(self):
        _, report = generate(TwoCounterModel(), prune=False, merge=False)
        assert report.initial_states == 6

    def test_step2_transitions_recorded(self):
        machine, _ = generate(TwoCounterModel(), prune=False, merge=False)
        state = machine.get_state("0/F")
        assert state.get_transition("bump").target_name == "1/F"
        assert state.get_transition("mark").target_name == "0/T"

    def test_final_states_have_no_transitions(self):
        machine, _ = generate(TwoCounterModel(), prune=False, merge=False)
        for state in machine.states:
            if state.final:
                assert state.transitions == ()

    def test_step3_prunes_unreachable(self):
        machine, report = generate(TwoCounterModel(), merge=False)
        assert report.reachable_states == len(machine) == 6
        # With no pruning the count is the same here (all reachable);
        # the commit model below exercises real pruning.

    def test_step4_merges_finals(self):
        machine, report = generate(TwoCounterModel())
        finals = machine.final_states()
        assert len(finals) == 1
        assert machine.finish_state is finals[0]

    def test_annotations_attached_after_pruning(self):
        machine, _ = generate(TwoCounterModel())
        assert machine.start_state.annotations  # default component description

    def test_report_str(self):
        _, report = generate(TwoCounterModel())
        text = str(report)
        assert "initial" in text and "merged" in text

    def test_timings_cover_all_steps(self):
        _, report = generate(TwoCounterModel())
        assert set(report.timings) == {"enumerate", "transitions", "prune", "merge"}


class TestCommitPipelineCounts:
    """The paper's published counts for the commit model (Figs 7/12/13)."""

    def test_initial_512(self):
        assert commit_report(4).initial_states == 512

    def test_pruned_48(self):
        assert commit_report(4).reachable_states == 48

    def test_merged_33(self):
        assert commit_report(4).merged_states == 33

    def test_prune_only_machine_has_48_states(self):
        assert len(commit_machine(4, merge=False)) == 48

    def test_merged_machine_has_33_states(self):
        assert len(commit_machine(4)) == 33

    def test_table1_row_shape(self):
        row = commit_report(4).table1_row()
        assert row["initial_states"] == 512
        assert row["final_states"] == 33
        assert row["generation_time_s"] >= 0

    def test_unpruned_commit_machine_keeps_512(self):
        from repro.models.commit import CommitModel

        machine = CommitModel(4).generate_state_machine(prune=False, merge=False)
        assert len(machine) == 512

    def test_every_merged_state_reachable(self):
        machine = commit_machine(4)
        assert machine.reachable_names() == set(machine.state_names())
