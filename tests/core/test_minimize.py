"""Tests for equivalence merging (paper §3.4 step 4, Fig 13)."""

from repro.analysis.diff import machines_isomorphic
from repro.core.machine import StateMachine
from repro.core.minimize import (
    FINISH_NAME,
    equivalence_classes,
    merge_equivalent,
    one_shot_merge,
)
from repro.core.state import State, Transition
from tests.conftest import commit_machine


def chain_machine() -> StateMachine:
    """A -> B -> D, A -> C -> D with B and C equivalent only transitively."""
    machine = StateMachine(["m"], name="chain")
    machine.add_state(State("A"))
    machine.add_state(State("B"))
    machine.add_state(State("C"))
    machine.add_state(State("D", final=True))
    machine.add_state(State("E", final=True))
    machine.get_state("A").record_transition(Transition("m", "B"))
    machine.get_state("B").record_transition(Transition("m", "D"))
    machine.get_state("C").record_transition(Transition("m", "E"))
    machine.set_start("A")
    return machine


class TestEquivalenceClasses:
    def test_finals_grouped_together(self):
        classes = equivalence_classes(chain_machine())
        final_groups = [g for g in classes if g[0].final]
        assert len(final_groups) == 1
        assert {s.name for s in final_groups[0]} == {"D", "E"}

    def test_transitively_equivalent_states_merge(self):
        # B and C both step to (equivalent) finals with no actions.
        classes = equivalence_classes(chain_machine())
        groups = {frozenset(s.name for s in g) for g in classes}
        assert frozenset({"B", "C"}) in groups

    def test_distinct_actions_prevent_merging(self):
        machine = chain_machine()
        machine.get_state("C").replace_transitions([Transition("m", "E", ["->x"])])
        classes = equivalence_classes(machine)
        groups = {frozenset(s.name for s in g) for g in classes}
        assert frozenset({"B", "C"}) not in groups


class TestMergeEquivalent:
    def test_merged_machine_size(self):
        merged = merge_equivalent(chain_machine())
        # {A}, {B,C}, {D,E} -> 3 states.
        assert len(merged) == 3

    def test_finish_designated(self):
        merged = merge_equivalent(chain_machine())
        assert merged.finish_state is not None
        assert merged.finish_state.name == FINISH_NAME

    def test_merged_names_recorded(self):
        merged = merge_equivalent(chain_machine())
        finish = merged.finish_state
        assert set(finish.merged_names) == {"D", "E"}

    def test_single_member_class_keeps_name(self):
        merged = merge_equivalent(chain_machine())
        assert "A" in merged

    def test_transitions_retargeted(self):
        merged = merge_equivalent(chain_machine())
        transition = merged.get_state("A").get_transition("m")
        assert transition.target_name in merged.state_names()

    def test_idempotent(self):
        merged = merge_equivalent(chain_machine())
        again = merge_equivalent(merged)
        assert machines_isomorphic(merged, again)


class TestOneShotMerge:
    def test_single_pass_merges_identical_successors_only(self):
        machine = chain_machine()
        # D and E are both final with no transitions: identical signature.
        once = one_shot_merge(machine)
        assert len(once) == 4  # A, B, C, FINISHED — B/C not merged yet

    def test_iterating_one_shot_reaches_fixpoint(self):
        machine = chain_machine()
        current = machine
        previous_size = len(current) + 1
        while len(current) < previous_size:
            previous_size = len(current)
            current = one_shot_merge(current)
        assert machines_isomorphic(current, merge_equivalent(machine))

    def test_commit_machine_one_shot_fixpoint_matches_moore(self):
        pruned = commit_machine(4, merge=False)
        current = pruned
        previous_size = len(current) + 1
        while len(current) < previous_size:
            previous_size = len(current)
            current = one_shot_merge(current)
        assert len(current) == 33
        assert machines_isomorphic(current, commit_machine(4))


class TestCommitMerging:
    def test_terminal_states_collapse_to_finish(self):
        pruned = commit_machine(4, merge=False)
        merged = commit_machine(4)
        terminals = [s for s in pruned.states if s.final]
        assert len(terminals) == 16  # 48 - 32 live states
        assert len(merged.final_states()) == 1

    def test_merged_machine_is_minimal(self):
        merged = commit_machine(4)
        classes = equivalence_classes(merged)
        assert all(len(group) == 1 for group in classes)
