"""Differential acceptance suite for the flattening pipeline.

For every bundled hierarchical model, direct hierarchical simulation must
be trace-identical to the flattened machine executed through

* both execution backends (interpreter, compiled generated class),
* both flatten engines (eager, lazy),
* and the fleet dispatch-mode spectrum (naive per-event, sharded batched,
  slot-encoded and grouped-by-column),

which is exactly the ISSUE's acceptance criterion.
"""

import random

import pytest

from repro.core.pipeline import ENGINES
from repro.models import HIERARCHICAL_MODELS, build_hierarchical_model
from repro.runtime.compile import compile_machine
from repro.runtime.interp import MachineInterpreter
from repro.serve import (
    HAS_NUMPY,
    FleetEngine,
    WorkloadSpec,
    diff_against_hierarchical,
    generate_workload,
)

#: (fleet dispatch mode, execution backend) configurations under test.
#: The encoded/grouped entries exercise the slot-indexed (slot, column)
#: dispatch plane on flattened hierarchies (backend is naive-only);
#: vector exercises the numpy gather/scatter kernel where available.
FLEET_CONFIGS = (
    ("naive", "interp"),
    ("naive", "compiled"),
    ("batched", "interp"),
    ("encoded", "interp"),
    ("grouped", "interp"),
) + ((("vector", "interp"),) if HAS_NUMPY else ())


def build(name):
    return build_hierarchical_model(name, replication_factor=4)


def random_schedule(machine, length, seed):
    """A pseudo-random single-instance message schedule over the alphabet."""
    rng = random.Random(seed)
    messages = machine.messages
    return [messages[rng.randrange(len(messages))] for _ in range(length)]


@pytest.mark.parametrize("model_name", HIERARCHICAL_MODELS)
@pytest.mark.parametrize("engine", ENGINES)
def test_interpreter_matches_direct_simulation(model_name, engine):
    model = build(model_name)
    machine = model.flatten(engine)
    simulator = model.simulator()
    interpreter = MachineInterpreter(machine)
    for step, message in enumerate(random_schedule(machine, 3000, seed=11)):
        fired_sim = simulator.receive(message)
        fired_interp = interpreter.receive(message)
        assert fired_sim == fired_interp, (step, message)
        assert simulator.get_state() == interpreter.get_state(), (step, message)
    assert simulator.sent == interpreter.sent


@pytest.mark.parametrize("model_name", HIERARCHICAL_MODELS)
@pytest.mark.parametrize("engine", ENGINES)
def test_compiled_class_matches_direct_simulation(model_name, engine):
    model = build(model_name)
    machine = model.flatten(engine)
    simulator = model.simulator()
    instance = compile_machine(machine).new_instance()
    for step, message in enumerate(random_schedule(machine, 3000, seed=23)):
        fired_sim = simulator.receive(message)
        fired_compiled = instance.receive(message)
        assert fired_sim == fired_compiled, (step, message)
        assert simulator.get_state() == instance.get_state(), (step, message)
    assert simulator.sent == instance.sent


@pytest.mark.parametrize("model_name", HIERARCHICAL_MODELS)
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("mode,backend", FLEET_CONFIGS)
def test_fleet_matches_direct_simulation(model_name, engine, mode, backend):
    model = build(model_name)
    machine = model.flatten(engine)
    fleet = FleetEngine(
        machine, shards=4, backend=backend, mode=mode, auto_recycle=True
    )
    keys = fleet.spawn_many(100)
    events = generate_workload(
        machine,
        WorkloadSpec(scenario="uniform", instances=100, events=4000, seed=7),
    )
    fleet.run(events)
    assert diff_against_hierarchical(fleet, model, keys, events) == []


@pytest.mark.parametrize("model_name", HIERARCHICAL_MODELS)
@pytest.mark.parametrize("scenario", ("hotkey", "burst"))
def test_fleet_matches_direct_simulation_skewed_arrivals(model_name, scenario):
    model = build(model_name)
    machine = model.flatten("lazy")
    fleet = FleetEngine(machine, shards=4, mode="batched", auto_recycle=True)
    keys = fleet.spawn_many(100)
    events = generate_workload(
        machine,
        WorkloadSpec(scenario=scenario, instances=100, events=4000, seed=13),
    )
    fleet.run(events)
    assert diff_against_hierarchical(fleet, model, keys, events) == []


@pytest.mark.parametrize("model_name", HIERARCHICAL_MODELS)
def test_fleet_snapshot_restore_roundtrip_on_flattened_machine(model_name):
    """Flattened machines ride the fleet's snapshot/restore unchanged."""
    model = build(model_name)
    machine = model.flatten()
    fleet = FleetEngine(machine, shards=4, mode="batched", auto_recycle=True)
    keys = fleet.spawn_many(50)
    events = generate_workload(
        machine, WorkloadSpec(instances=50, events=1000, seed=3)
    )
    fleet.run(events)
    snapshot = fleet.snapshot()
    replacement = FleetEngine(machine, shards=8, mode="batched", auto_recycle=True)
    replacement.restore(snapshot)
    assert {k: replacement.trace(k) for k in keys} == {
        k: fleet.trace(k) for k in keys
    }


@pytest.mark.parametrize("model_name", HIERARCHICAL_MODELS)
def test_dispatch_table_covers_flattened_machine(model_name):
    """The flat dispatch-table export works for flattened hierarchies."""
    machine = build(model_name).flatten()
    table = machine.dispatch_table()
    assert set(table.state_names) == set(machine.state_names())
    assert table.state_names[table.start_index] == machine.start_state.name
    for state in machine.states:
        for transition in state.transitions:
            entry = table.lookup(state.name, transition.message)
            assert table.state_names[entry[0]] == transition.target_name
